//! Sampling a [`ScenarioSpec`] into a dataset bundle with ground truth.

use crate::error::Result;
use crate::spec::{ScenarioSpec, TruthEntry, TruthGroup, BASE_OUTCOME};
use faircap_causal::scm::{bernoulli, normal};
use faircap_causal::Scm;
use faircap_core::PrescriptionSession;
use faircap_data::Dataset;
use faircap_table::{Column, DataFrame, FnvHasher, Mask, Value};

/// Index of level string `v{l}` (our own generator's vocabulary, so a
/// malformed level simply maps to 0 — it cannot occur in sampled data).
fn level_index(level: &str) -> usize {
    level
        .strip_prefix('v')
        .and_then(|t| t.parse().ok())
        .unwrap_or(0)
}

/// Build the structural causal model a spec describes. Exposed so tests
/// and docs can inspect the model (e.g. its [`Scm::dag`]) without
/// sampling.
pub fn build_scm(spec: &ScenarioSpec) -> Result<Scm> {
    spec.validate()?;
    let mut scm = Scm::new();
    let stable_names = spec.stable_attrs();
    let flexible_names = spec.flexible_attrs();

    for (j, sname) in stable_names.iter().enumerate() {
        let levels: Vec<(String, f64)> = (0..spec.cardinality)
            .map(|l| (spec.level(l), spec.level_weight(j, l)))
            .collect();
        let refs: Vec<(&str, f64)> = levels.iter().map(|(l, w)| (l.as_str(), *w)).collect();
        scm = scm.categorical(sname, &refs)?;
    }

    let parent_refs: Vec<&str> = stable_names.iter().map(String::as_str).collect();
    for (i, fname) in flexible_names.iter().enumerate() {
        let base = spec.treatment_base_logit(i);
        let shifts: Vec<Vec<f64>> = (0..spec.stable)
            .map(|j| {
                (0..spec.cardinality)
                    .map(|l| spec.confounding_shift(i, j, l))
                    .collect()
            })
            .collect();
        let parents_owned = stable_names.clone();
        scm = scm.node(
            fname,
            &parent_refs,
            Box::new(move |row, rng| {
                let mut logit = base;
                for (j, sname) in parents_owned.iter().enumerate() {
                    let l = level_index(row.str(sname));
                    logit += shifts[j].get(l).copied().unwrap_or(0.0);
                }
                let p = 1.0 / (1.0 + (-logit).exp());
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.to_owned())
            }),
        )?;
    }

    let mut outcome_parents: Vec<&str> = parent_refs.clone();
    outcome_parents.extend(flexible_names.iter().map(String::as_str));
    let direct: Vec<Vec<f64>> = (0..spec.stable)
        .map(|j| {
            (0..spec.cardinality)
                .map(|l| spec.stable_outcome_shift(j, l))
                .collect()
        })
        .collect();
    let effects: Vec<(f64, f64)> = (0..spec.flexible)
        .map(|i| (spec.effect(i, false), spec.effect(i, true)))
        .collect();
    let stables = stable_names.clone();
    let flexibles = flexible_names.clone();
    let protected_level = spec.level(0);
    let noise = spec.noise;
    scm = scm.node(
        ScenarioSpec::OUTCOME,
        &outcome_parents,
        Box::new(move |row, rng| {
            let mut y = BASE_OUTCOME;
            let mut protected = false;
            for (j, sname) in stables.iter().enumerate() {
                let level = row.str(sname);
                if j == 0 {
                    protected = level == protected_level;
                }
                y += direct[j].get(level_index(level)).copied().unwrap_or(0.0);
            }
            for (i, fname) in flexibles.iter().enumerate() {
                if row.str(fname) == "yes" {
                    let (non_protected, prot) = effects[i];
                    y += if protected { prot } else { non_protected };
                }
            }
            Value::Float(y + normal(rng, 0.0, noise))
        }),
    )?;
    Ok(scm)
}

/// A sampled scenario: the dataset bundle (frame, ground-truth DAG, roles,
/// protected pattern) plus the planted ground-truth CATE table.
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// The spec that produced this scenario.
    pub spec: ScenarioSpec,
    /// The dataset bundle, directly consumable by the engine.
    pub dataset: Dataset,
    /// One planted CATE per (flexible attribute, subpopulation).
    pub truth: Vec<TruthEntry>,
}

/// Sample a scenario: build the SCM, draw `spec.rows` rows with
/// `spec.seed`, and bundle the frame with its ground-truth DAG, the
/// stable/flexible attribute split, the protected pattern, and the planted
/// CATE table.
pub fn generate(spec: &ScenarioSpec) -> Result<GeneratedScenario> {
    let scm = build_scm(spec)?;
    let df = scm.sample(spec.rows, spec.seed)?;
    let dataset = Dataset {
        name: spec.name.clone(),
        df,
        dag: scm.dag(),
        outcome: ScenarioSpec::OUTCOME.to_owned(),
        immutable: spec.stable_attrs(),
        mutable: spec.flexible_attrs(),
        protected: spec.protected_pattern(),
    };
    Ok(GeneratedScenario {
        spec: spec.clone(),
        dataset,
        truth: spec.ground_truth(),
    })
}

impl GeneratedScenario {
    /// Build a ready-to-solve [`PrescriptionSession`] over this scenario.
    pub fn session(&self) -> Result<PrescriptionSession> {
        Ok(faircap_core::FairCap::builder()
            .data(self.dataset.df.clone())
            .dag(self.dataset.dag.clone())
            .outcome(&self.dataset.outcome)
            .immutable(self.dataset.immutable.iter().cloned())
            .mutable(self.dataset.mutable.iter().cloned())
            .protected(self.dataset.protected.clone())
            .build()?)
    }

    /// The planted CATE for a treatment/group pair, if the treatment is
    /// one of this scenario's flexible attributes.
    pub fn truth_for(&self, treatment: &str, group: TruthGroup) -> Option<f64> {
        self.truth
            .iter()
            .find(|t| t.treatment == treatment && t.group == group)
            .map(|t| t.cate)
    }

    /// Row mask of a [`TruthGroup`].
    pub fn group_mask(&self, group: TruthGroup) -> Mask {
        let n = self.dataset.df.n_rows();
        match group {
            TruthGroup::All => Mask::ones(n),
            TruthGroup::Protected => self.dataset.protected_mask(),
            TruthGroup::NonProtected => Mask::ones(n).andnot(&self.dataset.protected_mask()),
        }
    }

    /// Platform-stable FNV-1a fingerprint of the sampled frame (column
    /// names, dtypes, and every cell; floats fed as IEEE-754 bits). Equal
    /// fingerprints ⇔ bit-identical data — the reproducibility contract
    /// `docs/scenarios.md` documents is tested against this.
    pub fn fingerprint(&self) -> u64 {
        frame_fingerprint(&self.dataset.df)
    }
}

/// FNV-1a digest of an entire frame; see
/// [`GeneratedScenario::fingerprint`].
pub fn frame_fingerprint(df: &DataFrame) -> u64 {
    let mut h = FnvHasher::new();
    h.write_u64_stable(df.n_rows() as u64);
    for name in df.names() {
        h.write_str_stable(name);
        match df.column(name).expect("name comes from the frame") {
            Column::Int(v) => {
                h.write_str_stable("int");
                for &x in v {
                    h.write_i64_stable(x);
                }
            }
            Column::Float(v) => {
                h.write_str_stable("float");
                for &x in v {
                    h.write_u64_stable(x.to_bits());
                }
            }
            Column::Bool(v) => {
                h.write_str_stable("bool");
                for &x in v {
                    h.write_u8_stable(u8::from(x));
                }
            }
            Column::Cat(c) => {
                h.write_str_stable("cat");
                for &code in c.codes() {
                    h.write_str_stable(c.value_of(code));
                }
            }
        }
    }
    h.finish64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            rows: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = small_spec();
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(a.dataset.df, b.dataset.df);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = generate(&ScenarioSpec {
            seed: 8,
            ..small_spec()
        })
        .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    /// The pinned end-to-end fingerprint: spec defaults at 2 000 rows,
    /// seed 7. This is the cross-platform bit-reproducibility contract —
    /// it transitively pins the rand shim stream, the SCM sampling order,
    /// and every structural coefficient. If it fails, the generated-data
    /// format changed: bump `FORMAT` in `store.rs` and regenerate any
    /// published datasets.
    #[test]
    fn generated_frame_fingerprint_is_pinned() {
        let sc = generate(&small_spec()).unwrap();
        assert_eq!(
            sc.fingerprint(),
            0x493f_f01e_722d_ed2e,
            "got {:#018x}",
            sc.fingerprint()
        );
    }

    #[test]
    fn dag_is_the_declared_two_layer_structure() {
        let sc = generate(&small_spec()).unwrap();
        let g = &sc.dataset.dag;
        let o = g.node("outcome").unwrap();
        for s in &sc.dataset.immutable {
            let sn = g.node(s).unwrap();
            assert!(g.has_edge(sn, o));
            for f in &sc.dataset.mutable {
                assert!(g.has_edge(sn, g.node(f).unwrap()), "{s} -> {f}");
            }
        }
        for f in &sc.dataset.mutable {
            assert!(g.has_edge(g.node(f).unwrap(), o));
        }
    }

    #[test]
    fn group_masks_partition_the_frame() {
        let sc = generate(&small_spec()).unwrap();
        let p = sc.group_mask(TruthGroup::Protected);
        let np = sc.group_mask(TruthGroup::NonProtected);
        assert_eq!(p.count() + np.count(), sc.dataset.df.n_rows());
        assert_eq!(p.intersect_count(&np), 0);
        // Protected fraction ≈ its exact population value.
        let expected = sc.spec.protected_fraction();
        assert!(
            (p.fraction() - expected).abs() < 0.03,
            "{} vs {expected}",
            p.fraction()
        );
    }

    #[test]
    fn treatment_rates_are_interior() {
        // Propensities must stay far from 0/1 so every estimator has both
        // arms in every stratum at benchmark sizes.
        let sc = generate(&small_spec()).unwrap();
        for f in &sc.dataset.mutable {
            let treated = faircap_table::Pattern::of_eq(&[(f, Value::from("yes"))])
                .coverage(&sc.dataset.df)
                .unwrap()
                .fraction();
            assert!((0.2..=0.8).contains(&treated), "{f}: {treated}");
        }
    }

    #[test]
    fn session_builds_and_solves() {
        let sc = generate(&small_spec()).unwrap();
        let session = sc.session().unwrap();
        let report = session
            .solve(&faircap_core::SolveRequest::default())
            .unwrap();
        assert!(report.size() > 0, "planted positive effects yield rules");
    }

    #[test]
    fn invalid_spec_is_rejected_before_sampling() {
        let err = generate(&ScenarioSpec {
            cardinality: 1,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("cardinality"), "{err}");
    }
}
