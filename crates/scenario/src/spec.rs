//! Scenario specifications: the generator's knobs and the closed-form
//! ground truth they imply.
//!
//! A [`ScenarioSpec`] fully determines a synthetic population. Every
//! structural coefficient is derived from the spec *alone* (via the
//! platform-stable FNV-1a hasher — never from the sampling RNG), so the
//! planted ground-truth CATEs are closed-form functions of the spec and do
//! not depend on the seed: two datasets drawn with different seeds estimate
//! the *same* planted effects.
//!
//! # The structural model
//!
//! * **Stable attributes** `s0..s{stable-1}` — exogenous categoricals with
//!   `cardinality` levels `v0..v{K-1}` and deterministic non-uniform level
//!   weights. These play the paper's *immutable* role; the protected group
//!   is `s0 = v0`.
//! * **Flexible attributes** `f0..f{flexible-1}` — binary `no`/`yes`
//!   treatments whose propensity is logistic in the stable parents. The
//!   per-level propensity shift **shares a coefficient** with that level's
//!   direct outcome effect, scaled by `confounding`: rows predisposed to
//!   treatment are also predisposed to high outcomes, so an unadjusted
//!   estimate is *guaranteed* biased while backdoor adjustment on the
//!   stables recovers the truth.
//! * **Outcome** — linear: a base, the stable levels' direct effects, one
//!   planted additive effect per applied treatment, and Gaussian noise.
//!   The planted effect is attenuated for protected rows by
//!   `heterogeneity`, giving the protected/non-protected CATE gap the
//!   fairness machinery exists to detect.

use crate::error::{Result, ScenarioError};
use faircap_table::{FnvHasher, Pattern, Value};

/// Outcome intercept.
pub const BASE_OUTCOME: f64 = 100.0;

/// Scale of the stable levels' direct outcome effects (units of outcome).
pub const DIRECT_SCALE: f64 = 20.0;

/// Scale of the planted treatment effects (units of outcome).
pub const EFFECT_BASE: f64 = 10.0;

/// Relative weight of the idiosyncratic (non-outcome-correlated) part of
/// the propensity shift.
const CONF_IDIO: f64 = 0.35;

/// Span of the per-treatment base propensity logit, keeping marginal
/// treatment rates near 1/2 so both arms stay large.
const PROPENSITY_SPAN: f64 = 0.25;

/// A deterministic hash-derived coefficient in `[-1, 1)`, stable across
/// platforms and toolchains (FNV-1a over little-endian feeds).
fn unit(tag: &str, a: u64, b: u64) -> f64 {
    let mut h = FnvHasher::new();
    h.write_str_stable(tag);
    h.write_u64_stable(a);
    h.write_u64_stable(b);
    ((h.finish64() >> 11) as f64) * (2.0 / (1u64 << 53) as f64) - 1.0
}

/// Like [`unit`] but in `[0, 1)`.
fn unit01(tag: &str, a: u64, b: u64) -> f64 {
    (unit(tag, a, b) + 1.0) / 2.0
}

/// The full configuration of a synthetic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario (and dataset/session) name.
    pub name: String,
    /// Number of rows to sample (the paper-scale knob: 10⁵–10⁷).
    pub rows: usize,
    /// RNG seed; the sampled frame is bit-reproducible per `(spec, seed)`.
    pub seed: u64,
    /// Number of stable (immutable) attributes, ≥ 1.
    pub stable: usize,
    /// Number of flexible (mutable, binary) treatment attributes, ≥ 1.
    pub flexible: usize,
    /// Levels per stable attribute, ≥ 2.
    pub cardinality: usize,
    /// Confounding strength in `[0, 1]`: 0 randomizes treatment, 1 ties
    /// propensity maximally to the stables' direct outcome effects.
    pub confounding: f64,
    /// Treatment-effect heterogeneity in `[0, 1]`: how strongly the
    /// planted effect is attenuated for the protected group (0 = equal
    /// effects, 1 = up to the full attenuation factor).
    pub heterogeneity: f64,
    /// Outcome noise standard deviation, ≥ 0.
    pub noise: f64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "synthetic".to_owned(),
            rows: 100_000,
            seed: 7,
            stable: 3,
            flexible: 3,
            cardinality: 3,
            confounding: 0.6,
            heterogeneity: 0.5,
            noise: 10.0,
        }
    }
}

impl ScenarioSpec {
    /// The outcome attribute name.
    pub const OUTCOME: &'static str = "outcome";

    /// Reject out-of-range knobs with a message naming the offender.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(ScenarioError::Spec(msg));
        if self.name.is_empty() {
            return bad("`name` must be non-empty".into());
        }
        if self.rows == 0 {
            return bad("`rows` must be ≥ 1".into());
        }
        if self.stable == 0 {
            return bad("`stable` must be ≥ 1 (the protected attribute lives there)".into());
        }
        if self.flexible == 0 {
            return bad("`flexible` must be ≥ 1 (no treatments, nothing to prescribe)".into());
        }
        if self.cardinality < 2 {
            return bad(format!(
                "`cardinality` must be ≥ 2, got {}",
                self.cardinality
            ));
        }
        if !(0.0..=1.0).contains(&self.confounding) {
            return bad(format!(
                "`confounding` must be in [0, 1], got {}",
                self.confounding
            ));
        }
        if !(0.0..=1.0).contains(&self.heterogeneity) {
            return bad(format!(
                "`heterogeneity` must be in [0, 1], got {}",
                self.heterogeneity
            ));
        }
        if !(self.noise >= 0.0 && self.noise.is_finite()) {
            return bad(format!("`noise` must be a finite ≥ 0, got {}", self.noise));
        }
        Ok(())
    }

    /// Name of stable attribute `j` (`s0`, `s1`, …).
    pub fn stable_attr(&self, j: usize) -> String {
        format!("s{j}")
    }

    /// Name of flexible attribute `i` (`f0`, `f1`, …).
    pub fn flexible_attr(&self, i: usize) -> String {
        format!("f{i}")
    }

    /// Name of categorical level `l` (`v0`, `v1`, …).
    pub fn level(&self, l: usize) -> String {
        format!("v{l}")
    }

    /// All stable attribute names in order.
    pub fn stable_attrs(&self) -> Vec<String> {
        (0..self.stable).map(|j| self.stable_attr(j)).collect()
    }

    /// All flexible attribute names in order.
    pub fn flexible_attrs(&self) -> Vec<String> {
        (0..self.flexible).map(|i| self.flexible_attr(i)).collect()
    }

    /// The protected-group pattern: `s0 = v0`.
    pub fn protected_pattern(&self) -> Pattern {
        Pattern::of_eq(&[("s0", Value::from("v0"))])
    }

    /// Sampling weight of level `l` of stable attribute `j` — deliberately
    /// non-uniform (`1 + 0.5·((j+l) mod K)`) so subgroup sizes differ.
    pub fn level_weight(&self, j: usize, l: usize) -> f64 {
        1.0 + 0.5 * ((j + l) % self.cardinality) as f64
    }

    /// Exact population fraction of the protected group (`s0 = v0`).
    pub fn protected_fraction(&self) -> f64 {
        let total: f64 = (0..self.cardinality).map(|l| self.level_weight(0, l)).sum();
        self.level_weight(0, 0) / total
    }

    /// The shared coefficient in `[-1, 1)` coupling level `(j, l)`'s direct
    /// outcome effect to its treatment-propensity shift.
    fn shared_coefficient(&self, j: usize, l: usize) -> f64 {
        unit("stable", j as u64, l as u64)
    }

    /// Direct outcome effect of stable attribute `j` taking level `l`.
    pub fn stable_outcome_shift(&self, j: usize, l: usize) -> f64 {
        DIRECT_SCALE * self.shared_coefficient(j, l)
    }

    /// Propensity-logit shift of treatment `i` when stable attribute `j`
    /// takes level `l`. Shares [`Self::stable_outcome_shift`]'s coefficient
    /// (scaled by `confounding`) plus a small idiosyncratic term, so
    /// treatment assignment is confounded with the outcome *by
    /// construction* whenever `confounding > 0`.
    pub fn confounding_shift(&self, i: usize, j: usize, l: usize) -> f64 {
        self.confounding
            * (self.shared_coefficient(j, l)
                + CONF_IDIO * unit("conf", ((i as u64) << 32) | j as u64, l as u64))
    }

    /// Base propensity logit of treatment `i`.
    pub fn treatment_base_logit(&self, i: usize) -> f64 {
        PROPENSITY_SPAN * unit("treat-base", i as u64, 0)
    }

    /// The planted CATE of treatment `i` for a row: attenuated for the
    /// protected group by `heterogeneity` times a per-treatment factor.
    pub fn effect(&self, i: usize, protected: bool) -> f64 {
        let base = EFFECT_BASE * (1.0 + 0.5 * (i % 5) as f64);
        if protected {
            let attenuation = 0.4 + 0.6 * unit01("het", i as u64, 0);
            base * (1.0 - self.heterogeneity * attenuation)
        } else {
            base
        }
    }

    /// The planted CATE of treatment `i` for a [`TruthGroup`]. For
    /// [`TruthGroup::All`] this is the population-weighted mixture (the
    /// ATE), since protected status is exogenous.
    pub fn true_cate(&self, i: usize, group: TruthGroup) -> f64 {
        match group {
            TruthGroup::Protected => self.effect(i, true),
            TruthGroup::NonProtected => self.effect(i, false),
            TruthGroup::All => {
                let p = self.protected_fraction();
                p * self.effect(i, true) + (1.0 - p) * self.effect(i, false)
            }
        }
    }

    /// The full ground-truth table: one entry per flexible attribute per
    /// group, emitted alongside every generated dataset.
    pub fn ground_truth(&self) -> Vec<TruthEntry> {
        let mut out = Vec::with_capacity(self.flexible * TruthGroup::ALL.len());
        for i in 0..self.flexible {
            for group in TruthGroup::ALL {
                out.push(TruthEntry {
                    treatment: self.flexible_attr(i),
                    group,
                    cate: self.true_cate(i, group),
                });
            }
        }
        out
    }
}

/// The subpopulation a ground-truth CATE refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthGroup {
    /// Protected rows (`s0 = v0`).
    Protected,
    /// The complement.
    NonProtected,
    /// The whole population.
    All,
}

impl TruthGroup {
    /// All three groups.
    pub const ALL: [TruthGroup; 3] = [
        TruthGroup::Protected,
        TruthGroup::NonProtected,
        TruthGroup::All,
    ];

    /// Stable wire name (`protected` / `non_protected` / `all`).
    pub fn name(&self) -> &'static str {
        match self {
            TruthGroup::Protected => "protected",
            TruthGroup::NonProtected => "non_protected",
            TruthGroup::All => "all",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<TruthGroup> {
        TruthGroup::ALL.into_iter().find(|g| g.name() == s)
    }
}

/// One planted ground-truth effect: treatment attribute, subpopulation,
/// and the exact CATE of flipping that treatment from `no` to `yes`.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthEntry {
    /// The flexible attribute.
    pub treatment: String,
    /// The subpopulation.
    pub group: TruthGroup,
    /// The exact planted conditional average treatment effect.
    pub cate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        ScenarioSpec::default().validate().unwrap();
    }

    #[test]
    fn bad_knobs_name_the_offender() {
        let cases: Vec<(ScenarioSpec, &str)> = vec![
            (
                ScenarioSpec {
                    rows: 0,
                    ..Default::default()
                },
                "rows",
            ),
            (
                ScenarioSpec {
                    stable: 0,
                    ..Default::default()
                },
                "stable",
            ),
            (
                ScenarioSpec {
                    flexible: 0,
                    ..Default::default()
                },
                "flexible",
            ),
            (
                ScenarioSpec {
                    cardinality: 1,
                    ..Default::default()
                },
                "cardinality",
            ),
            (
                ScenarioSpec {
                    confounding: 1.5,
                    ..Default::default()
                },
                "confounding",
            ),
            (
                ScenarioSpec {
                    heterogeneity: -0.1,
                    ..Default::default()
                },
                "heterogeneity",
            ),
            (
                ScenarioSpec {
                    noise: f64::NAN,
                    ..Default::default()
                },
                "noise",
            ),
        ];
        for (spec, needle) in cases {
            let err = spec.validate().unwrap_err().to_string();
            assert!(err.contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn coefficients_are_seed_independent_and_bounded() {
        let a = ScenarioSpec::default();
        let b = ScenarioSpec {
            seed: 99,
            rows: 17,
            ..Default::default()
        };
        for j in 0..a.stable {
            for l in 0..a.cardinality {
                assert_eq!(a.stable_outcome_shift(j, l), b.stable_outcome_shift(j, l));
                assert!(a.stable_outcome_shift(j, l).abs() <= DIRECT_SCALE);
                for i in 0..a.flexible {
                    assert_eq!(a.confounding_shift(i, j, l), b.confounding_shift(i, j, l));
                }
            }
        }
        assert_eq!(a.ground_truth(), b.ground_truth());
    }

    #[test]
    fn confounding_zero_randomizes_treatment() {
        let spec = ScenarioSpec {
            confounding: 0.0,
            ..Default::default()
        };
        for i in 0..spec.flexible {
            for j in 0..spec.stable {
                for l in 0..spec.cardinality {
                    assert_eq!(spec.confounding_shift(i, j, l), 0.0);
                }
            }
        }
    }

    #[test]
    fn heterogeneity_attenuates_protected_effect() {
        let spec = ScenarioSpec::default();
        for i in 0..spec.flexible {
            assert!(
                spec.true_cate(i, TruthGroup::Protected)
                    < spec.true_cate(i, TruthGroup::NonProtected),
                "treatment {i}"
            );
            let all = spec.true_cate(i, TruthGroup::All);
            assert!(
                all > spec.true_cate(i, TruthGroup::Protected)
                    && all < spec.true_cate(i, TruthGroup::NonProtected)
            );
        }
        let flat = ScenarioSpec {
            heterogeneity: 0.0,
            ..Default::default()
        };
        assert_eq!(
            flat.true_cate(0, TruthGroup::Protected),
            flat.true_cate(0, TruthGroup::NonProtected)
        );
    }

    #[test]
    fn protected_fraction_matches_weights() {
        let spec = ScenarioSpec::default();
        // K = 3: weights 1.0, 1.5, 2.0 → v0 fraction = 1/4.5.
        assert!((spec.protected_fraction() - 1.0 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn truth_group_names_round_trip() {
        for g in TruthGroup::ALL {
            assert_eq!(TruthGroup::parse(g.name()), Some(g));
        }
        assert_eq!(TruthGroup::parse("bogus"), None);
    }

    #[test]
    fn ground_truth_covers_every_treatment_and_group() {
        let spec = ScenarioSpec::default();
        let truth = spec.ground_truth();
        assert_eq!(truth.len(), spec.flexible * 3);
        assert!(truth
            .iter()
            .any(|t| t.treatment == "f2" && t.group == TruthGroup::All));
    }
}
