//! Grading estimators against a scenario's planted ground truth.
//!
//! Two graders, mirroring the two claims the recovery tests make:
//!
//! * [`check_recovery`] — adjusted estimators (stratified / IPW / AIPW /
//!   matching by default) must land within a CI-stable tolerance of the
//!   planted CATE in every (treatment × group) cell;
//! * [`naive_bias`] — the *unadjusted* difference-in-means on the same data
//!   must be provably biased (large error, many standard errors from the
//!   truth), demonstrating that the scenario's confounding has teeth.

use crate::error::Result;
use crate::generate::GeneratedScenario;
use crate::spec::TruthGroup;
use faircap_causal::{estimate_cate, Estimator as _, EstimatorKind, Recovery};
use faircap_table::{Pattern, Value};

/// What to grade and how tight.
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Estimators under test.
    pub estimators: Vec<EstimatorKind>,
    /// Absolute error slack (outcome units).
    pub abs_tol: f64,
    /// Additional slack in units of each estimate's standard error.
    pub z_tol: f64,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            // The estimators whose estimand is the group ATE even under
            // heterogeneous effects. `matching` rides its KD-tree index at
            // scenario sizes, so it now fits the default pair budget; OLS
            // `linear` variance-weights strata and stays opt-in.
            estimators: vec![
                EstimatorKind::Stratified,
                EstimatorKind::Ipw,
                EstimatorKind::Aipw,
                EstimatorKind::Matching,
            ],
            abs_tol: 1.0,
            z_tol: 4.0,
        }
    }
}

/// One graded (estimator × treatment × group) cell.
#[derive(Debug, Clone)]
pub struct RecoveryCheck {
    /// The estimator under test.
    pub estimator: EstimatorKind,
    /// The flexible attribute treated.
    pub treatment: String,
    /// The subpopulation.
    pub group: TruthGroup,
    /// Estimate-vs-truth comparison.
    pub recovery: Recovery,
    /// Whether the cell passed `recovery.within(abs_tol, z_tol)`.
    pub pass: bool,
}

impl std::fmt::Display for RecoveryCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} on {} [{}]: {}",
            if self.pass { "PASS" } else { "FAIL" },
            self.estimator.name(),
            self.treatment,
            self.group.name(),
            self.recovery
        )
    }
}

/// The backdoor adjustment set for a group: all stable attributes, minus
/// `s0` when the group is defined by it (a within-group constant is not a
/// confounder, and a constant covariate would degenerate some designs).
fn adjustment_for(sc: &GeneratedScenario, group: TruthGroup) -> Vec<String> {
    match group {
        TruthGroup::All => sc.dataset.immutable.clone(),
        TruthGroup::Protected | TruthGroup::NonProtected => sc
            .dataset
            .immutable
            .iter()
            .filter(|a| a.as_str() != "s0")
            .cloned()
            .collect(),
    }
}

/// Grade every (estimator × treatment × group) cell of a scenario.
/// A failed cell is a `pass: false` row, not an error; estimation errors
/// (e.g. an exhausted matching budget) do propagate.
pub fn check_recovery(
    sc: &GeneratedScenario,
    options: &RecoveryOptions,
) -> Result<Vec<RecoveryCheck>> {
    let df = &sc.dataset.df;
    let mut out = Vec::new();
    for treatment in &sc.dataset.mutable {
        let treated = Pattern::of_eq(&[(treatment, Value::from("yes"))]).coverage(df)?;
        for group in TruthGroup::ALL {
            let mask = sc.group_mask(group);
            let adjustment = adjustment_for(sc, group);
            let truth = sc
                .truth_for(treatment, group)
                .expect("truth table covers every flexible attribute");
            for &estimator in &options.estimators {
                let est = estimate_cate(
                    estimator,
                    df,
                    &mask,
                    &treated,
                    &sc.dataset.outcome,
                    &adjustment,
                )?;
                let recovery = Recovery::of(&est, truth);
                out.push(RecoveryCheck {
                    estimator,
                    treatment: treatment.clone(),
                    group,
                    pass: recovery.within(options.abs_tol, options.z_tol),
                    recovery,
                });
            }
        }
    }
    Ok(out)
}

/// The unadjusted (difference-in-means) estimate of one treatment over the
/// whole population, compared against the planted ATE. On any scenario
/// with `confounding > 0` this must fail [`Recovery::biased`]'s test —
/// asserted by the recovery integration test, and the reason `--check`
/// reports it separately.
pub fn naive_bias(sc: &GeneratedScenario, treatment: &str) -> Result<Recovery> {
    let df = &sc.dataset.df;
    let treated = Pattern::of_eq(&[(treatment, Value::from("yes"))]).coverage(df)?;
    let est = estimate_cate(
        EstimatorKind::Linear,
        df,
        &sc.group_mask(TruthGroup::All),
        &treated,
        &sc.dataset.outcome,
        &[],
    )?;
    let truth = sc
        .truth_for(treatment, TruthGroup::All)
        .expect("truth table covers every flexible attribute");
    Ok(Recovery::of(&est, truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::spec::ScenarioSpec;

    #[test]
    fn adjustment_drops_s0_only_for_restricted_groups() {
        let sc = generate(&ScenarioSpec {
            rows: 200,
            ..Default::default()
        })
        .unwrap();
        assert!(adjustment_for(&sc, TruthGroup::All).contains(&"s0".to_owned()));
        let within = adjustment_for(&sc, TruthGroup::Protected);
        assert!(!within.contains(&"s0".to_owned()));
        assert_eq!(within.len(), sc.dataset.immutable.len() - 1);
    }

    #[test]
    fn check_covers_every_cell() {
        let sc = generate(&ScenarioSpec {
            rows: 4_000,
            ..Default::default()
        })
        .unwrap();
        let checks = check_recovery(&sc, &RecoveryOptions::default()).unwrap();
        // flexible × 3 groups × 4 estimators.
        assert_eq!(checks.len(), sc.spec.flexible * 3 * 4);
        for c in &checks {
            assert!(c.recovery.std_err > 0.0, "{c}");
        }
    }

    #[test]
    fn display_names_the_cell() {
        let sc = generate(&ScenarioSpec {
            rows: 2_000,
            ..Default::default()
        })
        .unwrap();
        let checks = check_recovery(
            &sc,
            &RecoveryOptions {
                estimators: vec![EstimatorKind::Stratified],
                ..Default::default()
            },
        )
        .unwrap();
        let line = checks[0].to_string();
        assert!(line.contains("stratified") && line.contains("f0"), "{line}");
    }
}
