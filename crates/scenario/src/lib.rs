//! # faircap-scenario
//!
//! SCM-driven synthetic data and workload generation with
//! ground-truth-at-scale benchmarking — the scale harness the real
//! datasets (10³ rows) cannot provide:
//!
//! * [`spec`] — [`ScenarioSpec`]: a configurable structural causal model
//!   (stable/flexible attribute split, cardinality, confounding strength,
//!   treatment-effect heterogeneity, noise) whose every coefficient is
//!   hash-derived from the spec, so the planted ground-truth CATEs are
//!   closed-form and seed-independent.
//! * [`mod@generate`] — sample 10⁵–10⁷-row datasets ([`GeneratedScenario`]);
//!   bit-reproducible per `(spec, seed)` across platforms (the rand shim's
//!   stream is pinned; see `shims/rand`), with a pinned frame
//!   [`frame_fingerprint`] guarding the contract.
//! * [`store`] — persist/load a scenario directory (`scenario.csv`,
//!   `scenario.dag`, `scenario.json` with the truth table) whose CSV+DAG
//!   half feeds `faircap solve`/`faircap serve` directly.
//! * [`verify`] — grade estimators against the planted truth
//!   ([`check_recovery`]) and prove the unadjusted estimate is biased
//!   ([`naive_bias`]) — the ground-truth recovery gate behind
//!   `faircap gen --check`.
//! * [`mod@replay`] — closed/open-loop workload replayer over constraint
//!   sweeps, estimator mixes, and warm/cold ratios, against an in-process
//!   session or a running `faircap serve`; emits [`ReplayReport`]
//!   (`BENCH_scale.json` rows with throughput, latency percentiles,
//!   429/503/504 counts, cache counters, and the data's rows+seed).
//!
//! The CLI front ends are `faircap gen` and `faircap replay`; the format
//! and semantics are documented in `docs/scenarios.md`.

#![warn(missing_docs)]

pub mod error;
pub mod generate;
pub mod replay;
pub mod spec;
pub mod store;
pub mod verify;

pub use error::{Result, ScenarioError};
pub use generate::{build_scm, frame_fingerprint, generate, GeneratedScenario};
pub use replay::{
    default_epsilon, replay, Arrival, ReplayOptions, ReplayReport, ReplayTarget, RequestVariant,
    WorkloadMix,
};
pub use spec::{ScenarioSpec, TruthEntry, TruthGroup};
pub use store::{load, metadata_from_json, metadata_json, save, FORMAT};
pub use verify::{check_recovery, naive_bias, RecoveryCheck, RecoveryOptions};
