//! Closed/open-loop workload replayer.
//!
//! Replays a mix of solve requests against either an in-process
//! [`PrescriptionSession`] or a running `faircap serve` instance (via
//! [`ServeClient`]), and aggregates a [`ReplayReport`]: throughput, latency
//! percentiles, per-status admission counts (429/503/504), and estimate-
//! cache counters — the row appended to `BENCH_scale.json`.
//!
//! # Request mixes
//!
//! A [`WorkloadMix`] is a list of solve-request bodies (JSON field sets,
//! exactly the `POST /v1/solve` wire schema) assigned to requests
//! round-robin. [`WorkloadMix::preset`] builds the standard mixes:
//! `steady` (one default request), `sweep` (fairness/coverage constraint
//! sweep), `estimators` (rotating estimator kinds), and `mixed` (both).
//!
//! # Warm/cold ratio
//!
//! A `cold_fraction` of requests (evenly interleaved) get a unique
//! `apriori_threshold` perturbation (relative size ≤ 10⁻⁶ per request, far
//! below any support boundary at benchmark scales). A fresh threshold is a
//! fresh grouping-cache key, so the engine re-mines grouping patterns and
//! re-runs selection — the cold path — while warm requests replay a
//! previously seen body and ride the caches. Individual CATE estimates may
//! still be cache-served on cold requests; rotate estimators in the mix to
//! force cold estimation too.
//!
//! # Arrival processes
//!
//! [`Arrival::Closed`] keeps `clients` requests in flight back-to-back
//! (throughput-bound); [`Arrival::Open`] paces request *starts* at a fixed
//! rate from a shared schedule regardless of completions (latency under
//! offered load — the serving layer's admission control is what sheds
//! excess when the schedule outruns it).

use crate::error::Result;
use crate::spec::ScenarioSpec;
use faircap_core::{solve_request_from_json, Json, PrescriptionSession};
use faircap_serve::ServeClient;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One request shape in a mix: a label and the `POST /v1/solve` body
/// fields (everything except `session`, which the replayer adds when
/// targeting a server).
#[derive(Debug, Clone)]
pub struct RequestVariant {
    /// Display label (`sp-group`, `aipw`, …).
    pub label: String,
    /// JSON body fields in wire-schema form.
    pub fields: Vec<(String, Json)>,
}

/// A named list of request variants, assigned to requests round-robin.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// Mix name (recorded in the report).
    pub name: String,
    /// The variants; must be non-empty.
    pub variants: Vec<RequestVariant>,
}

fn variant(label: &str, fields: Vec<(&str, Json)>) -> RequestVariant {
    RequestVariant {
        label: label.to_owned(),
        fields: fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    }
}

fn fairness(kind: &str, scope: &str, threshold: (&str, f64)) -> Json {
    Json::Obj(vec![
        ("kind".to_owned(), Json::Str(kind.to_owned())),
        ("scope".to_owned(), Json::Str(scope.to_owned())),
        (threshold.0.to_owned(), Json::Num(threshold.1)),
    ])
}

impl WorkloadMix {
    /// Names [`WorkloadMix::preset`] accepts.
    pub const PRESETS: [&'static str; 4] = ["steady", "sweep", "estimators", "mixed"];

    /// Build a standard mix. `epsilon` is the statistical-parity threshold
    /// used by the constraint-sweep variants (utility units — scale it to
    /// the dataset; [`default_epsilon`] gives a scenario-scaled value).
    pub fn preset(name: &str, epsilon: f64) -> Option<WorkloadMix> {
        let sweep = || {
            vec![
                variant("unconstrained", vec![]),
                variant(
                    "sp-group",
                    vec![("fairness", fairness("sp", "group", ("epsilon", epsilon)))],
                ),
                variant(
                    "sp-group-tight",
                    vec![(
                        "fairness",
                        fairness("sp", "group", ("epsilon", epsilon / 10.0)),
                    )],
                ),
                variant(
                    "sp-individual",
                    vec![(
                        "fairness",
                        fairness("sp", "individual", ("epsilon", epsilon)),
                    )],
                ),
                variant(
                    "coverage-group",
                    vec![(
                        "coverage",
                        Json::Obj(vec![
                            ("kind".to_owned(), Json::Str("group".to_owned())),
                            ("theta".to_owned(), Json::Num(0.3)),
                            ("theta_protected".to_owned(), Json::Num(0.3)),
                        ]),
                    )],
                ),
            ]
        };
        let estimators = || {
            ["linear", "stratified", "ipw", "aipw"]
                .iter()
                .map(|e| variant(e, vec![("estimator", Json::Str((*e).to_owned()))]))
                .collect::<Vec<_>>()
        };
        let variants = match name {
            "steady" => vec![variant("default", vec![])],
            "sweep" => sweep(),
            "estimators" => estimators(),
            "mixed" => {
                let mut v = sweep();
                v.extend(estimators());
                v
            }
            _ => return None,
        };
        Some(WorkloadMix {
            name: name.to_owned(),
            variants,
        })
    }
}

/// A statistical-parity epsilon scaled to a scenario: roughly the planted
/// protected/non-protected utility gap of one fully-covering rule, so the
/// `sp-group` variant is realistically loose and `sp-group-tight` bites.
pub fn default_epsilon(spec: &ScenarioSpec) -> f64 {
    let gap = (spec.true_cate(0, crate::TruthGroup::NonProtected)
        - spec.true_cate(0, crate::TruthGroup::Protected))
    .abs()
    .max(1.0);
    gap * spec.rows as f64
}

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// `clients` workers issue requests back-to-back until the total runs
    /// out.
    Closed {
        /// Concurrent workers.
        clients: usize,
    },
    /// Request starts follow a shared fixed-rate schedule; `clients`
    /// workers drain it (a start is late if all workers are busy — the
    /// classic open-loop backlog).
    Open {
        /// Concurrent workers draining the schedule.
        clients: usize,
        /// Scheduled request starts per second.
        rate_hz: f64,
    },
}

impl Arrival {
    fn clients(&self) -> usize {
        match *self {
            Arrival::Closed { clients } | Arrival::Open { clients, .. } => clients.max(1),
        }
    }
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// The request mix.
    pub mix: WorkloadMix,
    /// Arrival process.
    pub arrival: Arrival,
    /// Total requests to issue.
    pub total: usize,
    /// Fraction of requests (evenly interleaved) forced down the cold
    /// (re-mining) path; in `[0, 1]`.
    pub cold_fraction: f64,
}

/// What the replayer fires at.
pub enum ReplayTarget<'a> {
    /// Direct in-process solves (no HTTP, no admission control).
    Session(&'a PrescriptionSession),
    /// A running `faircap serve` instance.
    Http {
        /// Client bound to the server address.
        client: ServeClient,
        /// Session name to route to (the body's `session` field).
        session: String,
    },
}

/// The aggregated result of one replay run — one `BENCH_scale.json` row.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario row count (satellite of every benchmark entry).
    pub rows: usize,
    /// Scenario data seed.
    pub seed: u64,
    /// Mix name.
    pub mix: String,
    /// `closed` or `open`.
    pub mode: String,
    /// Worker count.
    pub clients: usize,
    /// Offered rate for open-loop runs.
    pub rate_hz: Option<f64>,
    /// Requests issued.
    pub total: usize,
    /// Requests forced down the cold path.
    pub cold_requests: usize,
    /// Wall-clock seconds of the whole replay.
    pub wall_s: f64,
    /// Completed requests per wall-clock second (any status).
    pub throughput_rps: f64,
    /// Mean latency of successful solves, milliseconds.
    pub mean_ms: f64,
    /// p50 latency of successful solves.
    pub p50_ms: f64,
    /// p90 latency of successful solves.
    pub p90_ms: f64,
    /// p99 latency of successful solves.
    pub p99_ms: f64,
    /// Max latency of successful solves.
    pub max_ms: f64,
    /// 2xx responses.
    pub ok: usize,
    /// Admission-control queue-full rejections.
    pub rejected_429: usize,
    /// Shutdown/unavailable rejections.
    pub rejected_503: usize,
    /// Solve timeouts.
    pub timeout_504: usize,
    /// Invalid-request rejections (400/422).
    pub invalid: usize,
    /// Everything else (5xx, transport errors).
    pub failed_other: usize,
    /// Estimate-cache hits over the run (session delta, or the server's
    /// per-session counter delta).
    pub cache_hits: u64,
    /// Estimate-cache misses over the run.
    pub cache_misses: u64,
    /// Estimate-cache entries at the end of the run.
    pub cache_entries: u64,
    /// Estimate-cache evictions over the run.
    pub cache_evictions: u64,
}

impl ReplayReport {
    /// Render as one `BENCH_scale.json` entry.
    pub fn to_json(&self) -> Json {
        let num = |x: f64| Json::Num(x);
        Json::Obj(vec![
            ("benchmark".to_owned(), Json::Str("scale_replay".to_owned())),
            ("scenario".to_owned(), Json::Str(self.scenario.clone())),
            ("rows".to_owned(), num(self.rows as f64)),
            ("seed".to_owned(), num(self.seed as f64)),
            ("mix".to_owned(), Json::Str(self.mix.clone())),
            ("mode".to_owned(), Json::Str(self.mode.clone())),
            ("clients".to_owned(), num(self.clients as f64)),
            (
                "rate_hz".to_owned(),
                self.rate_hz.map(Json::Num).unwrap_or(Json::Null),
            ),
            ("total".to_owned(), num(self.total as f64)),
            ("cold_requests".to_owned(), num(self.cold_requests as f64)),
            ("wall_s".to_owned(), num(self.wall_s)),
            ("throughput_rps".to_owned(), num(self.throughput_rps)),
            ("mean_ms".to_owned(), num(self.mean_ms)),
            // Schema note: since the observability PR, percentiles are
            // log-bucketed-histogram quantiles (shared with the serve
            // layer), not exact sorted-sample ranks; this marker lets
            // consumers tell the two row generations apart.
            (
                "quantile_method".to_owned(),
                Json::Str(faircap_obs::QUANTILE_METHOD.to_owned()),
            ),
            ("p50_ms".to_owned(), num(self.p50_ms)),
            ("p90_ms".to_owned(), num(self.p90_ms)),
            ("p99_ms".to_owned(), num(self.p99_ms)),
            ("max_ms".to_owned(), num(self.max_ms)),
            ("ok".to_owned(), num(self.ok as f64)),
            ("rejected_429".to_owned(), num(self.rejected_429 as f64)),
            ("rejected_503".to_owned(), num(self.rejected_503 as f64)),
            ("timeout_504".to_owned(), num(self.timeout_504 as f64)),
            ("invalid".to_owned(), num(self.invalid as f64)),
            ("failed_other".to_owned(), num(self.failed_other as f64)),
            ("cache_hits".to_owned(), num(self.cache_hits as f64)),
            ("cache_misses".to_owned(), num(self.cache_misses as f64)),
            ("cache_entries".to_owned(), num(self.cache_entries as f64)),
            (
                "cache_evictions".to_owned(),
                num(self.cache_evictions as f64),
            ),
        ])
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}/{}] {} req in {:.2}s = {:.1} req/s; p50 {:.1}ms p99 {:.1}ms; \
             ok {} / 429 {} / 503 {} / 504 {} / invalid {} / other {}; \
             cache {}h/{}m",
            self.scenario,
            self.mix,
            self.mode,
            self.total,
            self.wall_s,
            self.throughput_rps,
            self.p50_ms,
            self.p99_ms,
            self.ok,
            self.rejected_429,
            self.rejected_503,
            self.timeout_504,
            self.invalid,
            self.failed_other,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

/// Whether request `idx` is a cold request under an evenly-interleaved
/// `fraction` (the classic Bresenham spread: cold iff the running target
/// count increments at `idx`).
fn is_cold(idx: usize, fraction: f64) -> bool {
    let fraction = fraction.clamp(0.0, 1.0);
    (((idx + 1) as f64) * fraction).floor() > ((idx as f64) * fraction).floor()
}

/// Build request body `idx`: round-robin variant, cold-path perturbation,
/// and (for HTTP targets) the `session` routing field.
fn build_body(mix: &WorkloadMix, idx: usize, cold_fraction: f64, session: Option<&str>) -> String {
    let variant = &mix.variants[idx % mix.variants.len()];
    let mut fields = variant.fields.clone();
    if is_cold(idx, cold_fraction) {
        // A unique threshold is a unique grouping-cache key: the engine
        // re-mines. The perturbation is ≤ 1e-6 relative, far below any
        // support-count boundary at benchmark row counts.
        let base = fields
            .iter()
            .find(|(k, _)| k == "apriori_threshold")
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.1);
        let jittered = base * (1.0 + (idx + 1) as f64 * 1e-12);
        fields.retain(|(k, _)| k != "apriori_threshold");
        fields.push(("apriori_threshold".to_owned(), Json::Num(jittered)));
    }
    if let Some(name) = session {
        fields.insert(0, ("session".to_owned(), Json::Str(name.to_owned())));
    }
    Json::Obj(fields).render()
}

/// Issue one request and classify the outcome as an HTTP-style status
/// (0 = transport failure).
fn fire(target: &ReplayTarget<'_>, body: &str) -> u16 {
    match target {
        ReplayTarget::Session(session) => {
            let request = Json::parse(body)
                .map_err(faircap_core::Error::InvalidRequest)
                .and_then(|json| solve_request_from_json(&json));
            match request {
                Ok(req) => match session.solve(&req) {
                    Ok(_) => 200,
                    Err(faircap_core::Error::InvalidRequest(_)) => 422,
                    Err(_) => 500,
                },
                Err(_) => 422,
            }
        }
        ReplayTarget::Http { client, .. } => match client.post_json("/v1/solve", body) {
            Ok(response) => response.status,
            Err(_) => 0,
        },
    }
}

/// Estimate-cache counters read before/after a run.
#[derive(Debug, Clone, Copy, Default)]
struct CacheSnapshot {
    hits: u64,
    misses: u64,
    entries: u64,
    evictions: u64,
}

fn cache_snapshot(target: &ReplayTarget<'_>) -> CacheSnapshot {
    match target {
        ReplayTarget::Session(session) => {
            let s = session.cache_stats();
            CacheSnapshot {
                hits: s.hits,
                misses: s.misses,
                entries: s.entries as u64,
                evictions: s.evictions,
            }
        }
        ReplayTarget::Http { client, session } => {
            let counter = |doc: &Json, field: &str| {
                doc.get_path(&format!("sessions.{session}.estimate_cache.{field}"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64
            };
            match client.get("/v1/metrics") {
                Ok(r) if r.status == 200 => match Json::parse(&r.body) {
                    Ok(doc) => CacheSnapshot {
                        hits: counter(&doc, "hits"),
                        misses: counter(&doc, "misses"),
                        entries: counter(&doc, "entries"),
                        evictions: counter(&doc, "evictions"),
                    },
                    Err(_) => CacheSnapshot::default(),
                },
                _ => CacheSnapshot::default(),
            }
        }
    }
}

/// Run a replay and aggregate the report. `scenario` stamps the report
/// with the data's provenance (name, rows, seed) so every benchmark entry
/// records what was measured.
pub fn replay(
    target: &ReplayTarget<'_>,
    options: &ReplayOptions,
    scenario: &ScenarioSpec,
) -> Result<ReplayReport> {
    assert!(
        !options.mix.variants.is_empty(),
        "a workload mix needs at least one variant"
    );
    let session_name = match target {
        ReplayTarget::Session(_) => None,
        ReplayTarget::Http { session, .. } => Some(session.as_str()),
    };
    let clients = options.arrival.clients();
    let before = cache_snapshot(target);
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let samples: Vec<(u16, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(u16, f64)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= options.total {
                            break;
                        }
                        if let Arrival::Open { rate_hz, .. } = options.arrival {
                            let due = Duration::from_secs_f64(idx as f64 / rate_hz.max(1e-9));
                            let elapsed = started.elapsed();
                            if due > elapsed {
                                std::thread::sleep(due - elapsed);
                            }
                        }
                        let body =
                            build_body(&options.mix, idx, options.cold_fraction, session_name);
                        let t0 = Instant::now();
                        let status = fire(target, &body);
                        local.push((status, t0.elapsed().as_secs_f64() * 1e3));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("replay worker panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    let after = cache_snapshot(target);

    let ok_latencies: Vec<f64> = samples
        .iter()
        .filter(|(status, _)| (200..300).contains(status))
        .map(|&(_, ms)| ms)
        .collect();
    // Percentiles go through the shared log-bucketed histogram
    // (`faircap_obs::summarize_ms`) so BENCH_scale rows use the same
    // quantile semantics as the serve layer's `/v1/metrics`.
    let latency = faircap_obs::summarize_ms(&ok_latencies);
    let count_status = |p: fn(u16) -> bool| samples.iter().filter(|(s, _)| p(*s)).count();
    let (mode, rate_hz) = match options.arrival {
        Arrival::Closed { .. } => ("closed".to_owned(), None),
        Arrival::Open { rate_hz, .. } => ("open".to_owned(), Some(rate_hz)),
    };
    Ok(ReplayReport {
        scenario: scenario.name.clone(),
        rows: scenario.rows,
        seed: scenario.seed,
        mix: options.mix.name.clone(),
        mode,
        clients,
        rate_hz,
        total: options.total,
        cold_requests: (0..options.total)
            .filter(|&i| is_cold(i, options.cold_fraction))
            .count(),
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            samples.len() as f64 / wall_s
        } else {
            0.0
        },
        mean_ms: latency.map(|l| l.mean_ms).unwrap_or(0.0),
        p50_ms: latency.map(|l| l.p50_ms).unwrap_or(0.0),
        p90_ms: latency.map(|l| l.p90_ms).unwrap_or(0.0),
        p99_ms: latency.map(|l| l.p99_ms).unwrap_or(0.0),
        max_ms: latency.map(|l| l.max_ms).unwrap_or(0.0),
        ok: ok_latencies.len(),
        rejected_429: count_status(|s| s == 429),
        rejected_503: count_status(|s| s == 503),
        timeout_504: count_status(|s| s == 504),
        invalid: count_status(|s| s == 400 || s == 422),
        failed_other: count_status(|s| s == 0 || (500..600).contains(&s) && s != 503 && s != 504),
        cache_hits: after.hits.saturating_sub(before.hits),
        cache_misses: after.misses.saturating_sub(before.misses),
        cache_entries: after.entries,
        cache_evictions: after.evictions.saturating_sub(before.evictions),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn presets_are_well_formed() {
        for name in WorkloadMix::PRESETS {
            let mix = WorkloadMix::preset(name, 1000.0).unwrap();
            assert!(!mix.variants.is_empty(), "{name}");
            for v in &mix.variants {
                // Every variant must be a valid wire-schema body.
                let body = Json::Obj(v.fields.clone()).render();
                solve_request_from_json(&Json::parse(&body).unwrap())
                    .unwrap_or_else(|e| panic!("{name}/{}: {e}", v.label));
            }
        }
        assert!(WorkloadMix::preset("bogus", 1.0).is_none());
        assert!(
            WorkloadMix::preset("mixed", 1.0).unwrap().variants.len()
                > WorkloadMix::preset("sweep", 1.0).unwrap().variants.len()
        );
    }

    #[test]
    fn cold_interleave_hits_the_exact_count() {
        for (total, fraction) in [(10, 0.3), (100, 0.25), (7, 1.0), (9, 0.0)] {
            let cold = (0..total).filter(|&i| is_cold(i, fraction)).count();
            assert_eq!(cold, (total as f64 * fraction).round() as usize);
        }
        // Evenly spread, not front-loaded: no two adjacent colds at 0.5.
        let colds: Vec<bool> = (0..10).map(|i| is_cold(i, 0.5)).collect();
        assert!(!colds.windows(2).any(|w| w[0] && w[1]), "{colds:?}");
    }

    #[test]
    fn cold_bodies_are_unique_and_warm_bodies_repeat() {
        let mix = WorkloadMix::preset("steady", 1.0).unwrap();
        let warm_a = build_body(&mix, 0, 0.0, None);
        let warm_b = build_body(&mix, 1, 0.0, None);
        assert_eq!(warm_a, warm_b);
        let cold_a = build_body(&mix, 0, 1.0, None);
        let cold_b = build_body(&mix, 1, 1.0, None);
        assert_ne!(cold_a, cold_b);
        assert!(cold_a.contains("apriori_threshold"), "{cold_a}");
        // HTTP targets get the routing field first.
        let routed = build_body(&mix, 0, 0.0, Some("syn"));
        assert!(routed.starts_with(r#"{"session":"syn""#), "{routed}");
    }

    #[test]
    fn percentiles_of_known_samples() {
        // Shared histogram semantics: within the log-bucket error bound
        // above the exact nearest-rank value.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = faircap_obs::summarize_ms(&xs).unwrap();
        for (got, exact) in [(s.p50_ms, 50.0), (s.p99_ms, 99.0)] {
            assert!(got >= exact, "{got} < {exact}");
            assert!(got <= exact * (1.0 + faircap_obs::RELATIVE_ERROR_BOUND));
        }
        assert!(faircap_obs::summarize_ms(&[]).is_none());
    }

    #[test]
    fn in_process_replay_produces_a_full_report() {
        let spec = ScenarioSpec {
            rows: 1_500,
            ..Default::default()
        };
        let sc = generate(&spec).unwrap();
        let session = sc.session().unwrap();
        let options = ReplayOptions {
            mix: WorkloadMix::preset("estimators", default_epsilon(&spec)).unwrap(),
            arrival: Arrival::Closed { clients: 2 },
            total: 8,
            cold_fraction: 0.25,
        };
        let report = replay(&ReplayTarget::Session(&session), &options, &spec).unwrap();
        assert_eq!(report.ok, 8, "{}", report.summary());
        assert_eq!(report.total, 8);
        assert_eq!(report.cold_requests, 2);
        assert_eq!(report.rows, 1_500);
        assert_eq!(report.seed, 7);
        assert!(report.throughput_rps > 0.0);
        assert!(report.p50_ms > 0.0 && report.p99_ms >= report.p50_ms);
        assert!(
            report.cache_misses > 0,
            "estimator rotation must estimate: {}",
            report.summary()
        );
        // The report row is valid JSON with the provenance fields.
        let doc = Json::parse(&report.to_json().render()).unwrap();
        assert_eq!(doc.get("rows").unwrap().as_f64(), Some(1_500.0));
        assert_eq!(doc.get("seed").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("benchmark").unwrap().as_str(), Some("scale_replay"));
    }

    #[test]
    fn open_loop_paces_request_starts() {
        let spec = ScenarioSpec {
            rows: 800,
            ..Default::default()
        };
        let sc = generate(&spec).unwrap();
        let session = sc.session().unwrap();
        let options = ReplayOptions {
            mix: WorkloadMix::preset("steady", 1.0).unwrap(),
            arrival: Arrival::Open {
                clients: 2,
                rate_hz: 50.0,
            },
            total: 6,
            cold_fraction: 0.0,
        };
        let started = Instant::now();
        let report = replay(&ReplayTarget::Session(&session), &options, &spec).unwrap();
        // 6 requests at 50 Hz: the last start is scheduled at t = 100 ms.
        assert!(started.elapsed() >= Duration::from_millis(100));
        assert_eq!(report.mode, "open");
        assert_eq!(report.rate_hz, Some(50.0));
        assert_eq!(report.ok, 6);
    }
}
