//! Persisting a generated scenario as a directory:
//!
//! * `scenario.csv`  — the sampled frame,
//! * `scenario.dag`  — the ground-truth DAG as an edge list
//!   (`parent -> child` lines, the same format the CLI's `--dag` accepts),
//! * `scenario.json` — the spec, the role metadata, and the planted
//!   ground-truth CATE table.
//!
//! The CSV and DAG files are deliberately self-sufficient engine inputs:
//! `faircap solve --data scenario.csv --dag scenario.dag …` (and `faircap
//! serve`) consume them without knowing the scenario crate exists. The JSON
//! carries what those two cannot: which attributes are stable vs flexible,
//! the protected pattern, and the truth table that `faircap gen --check`
//! and the recovery tests grade against.

use crate::error::{Result, ScenarioError};
use crate::generate::GeneratedScenario;
use crate::spec::{ScenarioSpec, TruthEntry, TruthGroup};
use faircap_causal::Dag;
use faircap_core::Json;
use faircap_data::Dataset;
use std::path::Path;

/// Format tag written into `scenario.json`; bump when the generator's
/// output for a fixed `(spec, seed)` changes.
pub const FORMAT: &str = "faircap-scenario-v1";

fn num(x: f64) -> Json {
    Json::Num(x)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Render the metadata document (`scenario.json`).
pub fn metadata_json(sc: &GeneratedScenario) -> Json {
    let spec = &sc.spec;
    let strings =
        |names: &[String]| Json::Arr(names.iter().map(|s| Json::Str(s.clone())).collect());
    let truth: Vec<Json> = sc
        .truth
        .iter()
        .map(|t| {
            obj(vec![
                ("treatment", Json::Str(t.treatment.clone())),
                ("group", Json::Str(t.group.name().to_owned())),
                ("cate", num(t.cate)),
            ])
        })
        .collect();
    obj(vec![
        ("format", Json::Str(FORMAT.to_owned())),
        (
            "spec",
            obj(vec![
                ("name", Json::Str(spec.name.clone())),
                ("rows", num(spec.rows as f64)),
                // u64 seeds beyond 2^53 would lose precision as a JSON
                // number; persist as a string.
                ("seed", Json::Str(spec.seed.to_string())),
                ("stable", num(spec.stable as f64)),
                ("flexible", num(spec.flexible as f64)),
                ("cardinality", num(spec.cardinality as f64)),
                ("confounding", num(spec.confounding)),
                ("heterogeneity", num(spec.heterogeneity)),
                ("noise", num(spec.noise)),
            ]),
        ),
        ("outcome", Json::Str(sc.dataset.outcome.clone())),
        ("immutable", strings(&sc.dataset.immutable)),
        ("mutable", strings(&sc.dataset.mutable)),
        (
            "fingerprint",
            Json::Str(format!("{:#018x}", sc.fingerprint())),
        ),
        ("truth", Json::Arr(truth)),
    ])
}

/// Write `scenario.csv`, `scenario.dag`, and `scenario.json` under `dir`
/// (created if missing).
pub fn save(sc: &GeneratedScenario, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    sc.dataset.to_csv(dir.join("scenario.csv"))?;
    std::fs::write(dir.join("scenario.dag"), sc.dataset.dag.to_dot())?;
    std::fs::write(dir.join("scenario.json"), metadata_json(sc).render() + "\n")?;
    Ok(())
}

fn bad(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Format(msg.into())
}

fn f64_field(doc: &Json, path: &str) -> Result<f64> {
    doc.get_path(path)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric `{path}`")))
}

fn usize_field(doc: &Json, path: &str) -> Result<usize> {
    let n = f64_field(doc, path)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(bad(format!("`{path}` must be a non-negative integer")));
    }
    Ok(n as usize)
}

fn str_field<'a>(doc: &'a Json, path: &str) -> Result<&'a str> {
    doc.get_path(path)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing or non-string `{path}`")))
}

/// Parse a `scenario.json` document back into the spec and truth table.
pub fn metadata_from_json(doc: &Json) -> Result<(ScenarioSpec, Vec<TruthEntry>)> {
    let format = str_field(doc, "format")?;
    if format != FORMAT {
        return Err(bad(format!(
            "unsupported scenario format `{format}` (this build reads `{FORMAT}`)"
        )));
    }
    let spec = ScenarioSpec {
        name: str_field(doc, "spec.name")?.to_owned(),
        rows: usize_field(doc, "spec.rows")?,
        seed: str_field(doc, "spec.seed")?
            .parse()
            .map_err(|_| bad("`spec.seed` must be a u64 string"))?,
        stable: usize_field(doc, "spec.stable")?,
        flexible: usize_field(doc, "spec.flexible")?,
        cardinality: usize_field(doc, "spec.cardinality")?,
        confounding: f64_field(doc, "spec.confounding")?,
        heterogeneity: f64_field(doc, "spec.heterogeneity")?,
        noise: f64_field(doc, "spec.noise")?,
    };
    spec.validate()?;
    let truth_items = doc
        .get("truth")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing `truth` array"))?;
    let mut truth = Vec::with_capacity(truth_items.len());
    for item in truth_items {
        let group_name = str_field(item, "group")?;
        truth.push(TruthEntry {
            treatment: str_field(item, "treatment")?.to_owned(),
            group: TruthGroup::parse(group_name)
                .ok_or_else(|| bad(format!("unknown truth group `{group_name}`")))?,
            cate: f64_field(item, "cate")?,
        });
    }
    Ok((spec, truth))
}

/// Load a scenario directory written by [`save`]. The frame and DAG are
/// read from their files (not regenerated), so this works on machines
/// without the generation cost — and the returned bundle is byte-for-byte
/// what the engine would be served.
pub fn load(dir: &Path) -> Result<GeneratedScenario> {
    let json_path = dir.join("scenario.json");
    let text = std::fs::read_to_string(&json_path)?;
    let doc = Json::parse(&text).map_err(|e| bad(format!("{}: {e}", json_path.display())))?;
    let (spec, truth) = metadata_from_json(&doc)?;
    let df = faircap_table::csv::read_csv(dir.join("scenario.csv"))?;
    let dag_text = std::fs::read_to_string(dir.join("scenario.dag"))?;
    let dag = Dag::parse_edge_list(&dag_text)?;
    let dataset = Dataset {
        name: spec.name.clone(),
        df,
        dag,
        outcome: ScenarioSpec::OUTCOME.to_owned(),
        immutable: spec.stable_attrs(),
        mutable: spec.flexible_attrs(),
        protected: spec.protected_pattern(),
    };
    Ok(GeneratedScenario {
        spec,
        dataset,
        truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("faircap_scenario_store_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let sc = generate(&ScenarioSpec {
            rows: 500,
            ..Default::default()
        })
        .unwrap();
        let dir = tmp_dir("roundtrip");
        save(&sc, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.spec, sc.spec);
        assert_eq!(back.truth, sc.truth);
        assert_eq!(back.dataset.df.n_rows(), 500);
        assert_eq!(back.dataset.dag.n_edges(), sc.dataset.dag.n_edges());
        // The reloaded bundle builds a working session.
        back.session().unwrap();
    }

    #[test]
    fn csv_float_roundtrip_preserves_fingerprint() {
        // The CSV writer must not lose outcome precision, or a reloaded
        // scenario would grade estimators against subtly different data.
        let sc = generate(&ScenarioSpec {
            rows: 200,
            ..Default::default()
        })
        .unwrap();
        let dir = tmp_dir("fingerprint");
        save(&sc, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.fingerprint(), sc.fingerprint());
    }

    #[test]
    fn unsupported_format_is_a_typed_error() {
        let sc = generate(&ScenarioSpec {
            rows: 50,
            ..Default::default()
        })
        .unwrap();
        let dir = tmp_dir("format");
        save(&sc, &dir).unwrap();
        let path = dir.join("scenario.json");
        let hacked = std::fs::read_to_string(&path)
            .unwrap()
            .replace(FORMAT, "faircap-scenario-v999");
        std::fs::write(&path, hacked).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(err.to_string().contains("v999"), "{err}");
    }

    #[test]
    fn missing_fields_are_named() {
        let doc = Json::parse(&format!(r#"{{"format":"{FORMAT}","spec":{{}}}}"#)).unwrap();
        let err = metadata_from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("spec.name"), "{err}");
    }
}
