//! The scenario crate's error type.

use std::fmt;

/// Everything that can go wrong while generating, persisting, verifying,
/// or replaying a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// An invalid [`ScenarioSpec`](crate::ScenarioSpec) knob.
    Spec(String),
    /// A causal-layer failure (SCM sampling, estimation).
    Causal(faircap_causal::CausalError),
    /// A table-layer failure (frame construction, CSV I/O).
    Table(faircap_table::TableError),
    /// An engine failure (session build, solve).
    Core(faircap_core::Error),
    /// A filesystem failure.
    Io(std::io::Error),
    /// A malformed persisted scenario (`scenario.json` / `scenario.dag`).
    Format(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec(msg) => write!(f, "invalid scenario spec: {msg}"),
            ScenarioError::Causal(e) => write!(f, "causal layer: {e}"),
            ScenarioError::Table(e) => write!(f, "table layer: {e}"),
            ScenarioError::Core(e) => write!(f, "engine: {e}"),
            ScenarioError::Io(e) => write!(f, "i/o: {e}"),
            ScenarioError::Format(msg) => write!(f, "malformed scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Causal(e) => Some(e),
            ScenarioError::Table(e) => Some(e),
            ScenarioError::Core(e) => Some(e),
            ScenarioError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<faircap_causal::CausalError> for ScenarioError {
    fn from(e: faircap_causal::CausalError) -> Self {
        ScenarioError::Causal(e)
    }
}

impl From<faircap_table::TableError> for ScenarioError {
    fn from(e: faircap_table::TableError) -> Self {
        ScenarioError::Table(e)
    }
}

impl From<faircap_core::Error> for ScenarioError {
    fn from(e: faircap_core::Error) -> Self {
        ScenarioError::Core(e)
    }
}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ScenarioError>;
