//! Prometheus text-format exposition (version 0.0.4) and an in-repo
//! syntax checker.
//!
//! ## Naming scheme
//!
//! Every metric this workspace exposes follows
//! `faircap_<subsystem>_<name>_<unit>` — e.g.
//! `faircap_serve_solve_latency_us`, `faircap_cache_hits_total`,
//! `faircap_estimate_duration_ns`. Counters end in `_total`, durations
//! carry their unit (`_us` / `_ns` / `_seconds`), and histograms expand
//! into the standard `_bucket` / `_sum` / `_count` series.
//! [`validate_naming`] gate-checks a scraped exposition against the
//! scheme so a new counter cannot silently bypass it.
//!
//! ## Writer
//!
//! [`PromText`] is an append-only builder: one
//! [`family`](PromText::family) call per metric name (emitting `# HELP` /
//! `# TYPE` once), then any number of [`sample`](PromText::sample)s with
//! optional labels. [`histogram`](PromText::histogram) expands a
//! [`HistogramSnapshot`] into cumulative non-empty `_bucket` series plus
//! the mandatory `+Inf` bucket, `_sum`, and `_count`.

use crate::hist::HistogramSnapshot;
use std::collections::HashMap;

/// Append-only builder of one Prometheus text exposition.
#[derive(Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Start a metric family: `# HELP` and `# TYPE` lines. `kind` is one
    /// of `counter` / `gauge` / `histogram`. Call once per family, before
    /// its samples.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name}");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out
            .push_str(&help.replace('\\', "\\\\").replace('\n', "\\n"));
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// One sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&render_value(value));
        self.out.push('\n');
    }

    /// Expand a histogram snapshot into `_bucket`/`_sum`/`_count` samples
    /// under `name` (whose family must be declared with kind
    /// `histogram`). Only non-empty buckets are emitted (plus `+Inf`),
    /// cumulatively, with `le` as the bucket's inclusive upper bound.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let mut cum = 0u64;
        for (upper, n) in snap.nonzero_buckets() {
            cum += n;
            let le = format!("{upper}");
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &with_le, cum as f64);
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &with_inf, snap.count as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum as f64);
        self.sample(&format!("{name}_count"), labels, snap.count as f64);
    }

    /// The finished exposition text.
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_value(v: f64) -> String {
    if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        // Integral values render without the trailing `.0` Rust would add.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse a sample value (`+Inf` / `-Inf` / `NaN` / float).
fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse `name{l="v",…} value [timestamp]`; `Err` with the reason.
fn parse_sample(line: &str) -> Result<Sample, String> {
    match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .filter(|&c| c > brace)
                .ok_or_else(|| format!("unclosed label braces: {line}"))?;
            parse_sample_parts(
                &line[..brace],
                &line[brace + 1..close],
                line[close + 1..].trim(),
                line,
            )
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().unwrap_or("");
            let after = it.next().unwrap_or("").trim();
            parse_sample_parts(name, "", after, line)
        }
    }
}

fn parse_sample_parts(
    name: &str,
    labels_text: &str,
    after: &str,
    line: &str,
) -> Result<Sample, String> {
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name `{name}` in: {line}"));
    }
    let mut labels = Vec::new();
    let mut rest = labels_text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in: {line}"))?;
        let key = rest[..eq].trim();
        if !valid_label_name(key) {
            return Err(format!("invalid label name `{key}` in: {line}"));
        }
        let after_eq = rest[eq + 1..].trim_start();
        if !after_eq.starts_with('"') {
            return Err(format!("unquoted label value in: {line}"));
        }
        // Scan the quoted value honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after_eq[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in: {line}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in: {line}"))?;
        labels.push((key.to_owned(), value));
        rest = after_eq[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in: {line}"));
        }
    }
    let mut parts = after.split_whitespace();
    let value_text = parts
        .next()
        .ok_or_else(|| format!("sample without a value: {line}"))?;
    let value = parse_value(value_text)
        .ok_or_else(|| format!("unparseable value `{value_text}`: {line}"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("unparseable timestamp `{ts}`: {line}"))?;
    }
    if parts.next().is_some() {
        return Err(format!("trailing junk on sample line: {line}"));
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

/// The family name a sample belongs to: its name minus a histogram
/// series suffix.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

/// Validate a Prometheus text exposition: line syntax, `TYPE` kinds,
/// one `TYPE` per family, and histogram invariants (`le`-labeled
/// buckets, a `+Inf` bucket whose count equals `_count`, cumulative
/// non-decreasing bucket values). Returns `Err` with the first problem.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    const KINDS: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or("TYPE line without a metric name")?;
                let kind = it
                    .next()
                    .ok_or_else(|| format!("TYPE {name} without a kind"))?;
                if !valid_metric_name(name) {
                    return Err(format!("invalid metric name in TYPE line: {name}"));
                }
                if !KINDS.contains(&kind) {
                    return Err(format!("unknown TYPE kind `{kind}` for {name}"));
                }
                if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                    return Err(format!("duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("invalid metric name in HELP line: {name}"));
                }
            }
            // Other comments are free-form.
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    // Histogram invariants per (family, non-le label set).
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let mut groups: HashMap<String, Vec<&Sample>> = HashMap::new();
        for s in samples
            .iter()
            .filter(|s| s.name == format!("{family}_bucket"))
        {
            let mut key: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            key.sort();
            groups.entry(key.join(",")).or_default().push(s);
        }
        if groups.is_empty() {
            return Err(format!("histogram {family} has no _bucket series"));
        }
        for (key, buckets) in &groups {
            let mut bounds: Vec<(f64, f64)> = Vec::new();
            for b in buckets {
                let le = b
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("{family}_bucket without an le label"))?;
                let le = parse_value(le)
                    .ok_or_else(|| format!("{family}_bucket with unparseable le `{le}`"))?;
                bounds.push((le, b.value));
            }
            bounds.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le values are ordered"));
            let inf = bounds
                .last()
                .filter(|(le, _)| le.is_infinite())
                .ok_or_else(|| format!("histogram {family}{{{key}}} lacks a +Inf bucket"))?
                .1;
            for pair in bounds.windows(2) {
                if pair[1].1 < pair[0].1 {
                    return Err(format!(
                        "histogram {family}{{{key}}} buckets are not cumulative"
                    ));
                }
            }
            let count = samples
                .iter()
                .find(|s| {
                    s.name == format!("{family}_count") && {
                        let mut k: Vec<String> =
                            s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                        k.sort();
                        k.join(",") == *key
                    }
                })
                .ok_or_else(|| format!("histogram {family}{{{key}}} lacks _count"))?
                .value;
            if (count - inf).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}{{{key}}}: +Inf bucket {inf} != _count {count}"
                ));
            }
            samples
                .iter()
                .find(|s| s.name == format!("{family}_sum"))
                .ok_or_else(|| format!("histogram {family} lacks _sum"))?;
        }
    }
    Ok(())
}

/// Check every sample family in an exposition against the repo naming
/// scheme: lowercase `snake_case` starting with `prefix` (normally
/// `faircap_`). Returns the offending names.
pub fn validate_naming(text: &str, prefix: &str) -> Result<(), Vec<String>> {
    let mut bad: Vec<String> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = line
            .split(|c: char| c == '{' || c.is_whitespace())
            .next()
            .unwrap_or("");
        let family = family_of(name);
        let ok = family.starts_with(prefix)
            && family
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !ok && !bad.iter().any(|b| b == family) {
            bad.push(family.to_owned());
        }
    }
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn writer_emits_valid_exposition() {
        let h = Histogram::new();
        for v in [3u64, 50, 700, 700, 9000] {
            h.record(v);
        }
        let mut pt = PromText::new();
        pt.family("faircap_requests_total", "counter", "HTTP requests");
        pt.sample("faircap_requests_total", &[], 42.0);
        pt.family("faircap_cache_hits_total", "counter", "cache hits");
        pt.sample(
            "faircap_cache_hits_total",
            &[("session", "german"), ("cache", "estimate")],
            7.0,
        );
        pt.family("faircap_solve_latency_us", "histogram", "solve latency");
        pt.histogram("faircap_solve_latency_us", &[], &h.snapshot());
        let text = pt.render();
        validate_exposition(&text).expect("writer output validates");
        validate_naming(&text, "faircap_").expect("writer output follows the scheme");
        assert!(text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("faircap_solve_latency_us_count 5"));
        assert!(text.contains("faircap_solve_latency_us_sum 10453"));
    }

    #[test]
    fn labels_escape_and_round_trip() {
        let mut pt = PromText::new();
        pt.family("faircap_test_total", "counter", "help with\nnewline");
        pt.sample(
            "faircap_test_total",
            &[("name", "quo\"te\\slash\nline")],
            1.0,
        );
        validate_exposition(&pt.render()).expect("escaped labels validate");
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(validate_exposition("1bad_name 3").is_err());
        assert!(validate_exposition("name{l=unquoted} 3").is_err());
        assert!(validate_exposition("name{l=\"v\"} notanumber").is_err());
        assert!(validate_exposition("name{l=\"v\"").is_err());
        assert!(validate_exposition("# TYPE m sideways\nm 1").is_err());
        assert!(validate_exposition("# TYPE m counter\n# TYPE m counter\nm 1").is_err());
        // Histogram without +Inf / with non-cumulative buckets.
        assert!(validate_exposition(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1"
        )
        .is_err());
        assert!(validate_exposition(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3"
        )
        .is_err());
        // Valid minimal histogram passes.
        validate_exposition(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2",
        )
        .expect("minimal histogram");
    }

    #[test]
    fn naming_gate_catches_scheme_violations() {
        assert!(validate_naming("faircap_serve_solves_total 1", "faircap_").is_ok());
        let err = validate_naming("http_requests 1\nfaircap_ok_total 2", "faircap_").unwrap_err();
        assert_eq!(err, vec!["http_requests".to_owned()]);
        assert!(validate_naming("faircap_CamelCase 1", "faircap_").is_err());
    }
}
