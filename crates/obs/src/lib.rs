//! # faircap-obs
//!
//! Dependency-free observability layer for the FairCap serving pipeline,
//! three pillars:
//!
//! * [`hist`] — fixed log-bucketed (HDR-style) [`Histogram`]s: lock-free
//!   atomic buckets, mergeable, with quantiles whose error is bounded by
//!   the bucket layout (≤ 1/32 relative). Used for solve latency, queue
//!   wait, per-estimator estimate duration, and keep-alive request
//!   latency.
//! * [`trace`] — a lightweight span/trace API ([`Trace`], [`Span`],
//!   [`SpanHandle`]) with monotonic nanosecond timestamps and FNV-derived
//!   64-bit trace ids, threaded through the full solve path (grouping,
//!   intervention mining, estimate calls, CELF greedy, cache lookups,
//!   queue wait, reactor phases). Finished traces land in a bounded
//!   [`TraceRing`] that keeps the slowest solves sticky.
//! * [`prom`] — Prometheus text-format exposition ([`PromText`]) plus an
//!   in-repo [`validate_exposition`] checker used by tests and the CI
//!   smoke gate, with the stable `faircap_<subsystem>_<name>_<unit>`
//!   naming scheme enforced by [`validate_naming`].
//!
//! The crate is intentionally std-only so it can sit at the bottom of the
//! workspace dependency graph (`table`/`causal`/`core`/`serve`/`scenario`
//! all use it).

#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod trace;

pub use hist::{
    summarize_ms, Histogram, HistogramSnapshot, LatencySummary, QUANTILE_METHOD,
    RELATIVE_ERROR_BOUND,
};
pub use prom::{validate_exposition, validate_naming, PromText};
pub use trace::{FinishedTrace, Span, SpanHandle, SpanRecord, Trace, TraceRing};
