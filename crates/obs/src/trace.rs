//! Lightweight span tracing for the solve/serve pipeline.
//!
//! A [`Trace`] owns a clock anchor (one `Instant` captured at creation)
//! and a flat list of finished [`SpanRecord`]s; every timestamp is
//! monotonic nanoseconds since that anchor, so spans from different
//! threads of the same solve compare directly. [`Span`] is a guard that
//! reserves its record slot **at open** and stamps the end time **on
//! drop** — a panicking solve still finishes every span on the unwind
//! path, which is what makes the root span's presence a drop-safety
//! invariant rather than a convention. [`SpanHandle`] is a cheap
//! cloneable address of an open span, used to parent child spans across
//! the work-stealing fan-out without thread-locals.
//!
//! Trace ids are FNV-1a–derived 64-bit values ([`Trace::derive_id`]) and
//! render as 16 lowercase hex digits for the `X-Faircap-Trace-Id` header.
//! Per-trace span count is capped ([`MAX_SPANS`]); overflow increments a
//! `dropped` counter instead of growing without bound. Because slots are
//! claimed at open, ancestors (opened first) always keep theirs — an
//! estimate-heavy solve sheds excess *leaf* spans, never the root or the
//! step spans that close last.
//!
//! [`TraceRing`] is the bounded in-memory store behind `GET /v1/trace`:
//! a FIFO ring of recent traces plus a small "slowest" set that only a
//! slower trace can evict, so the traces worth diagnosing are always
//! still there when someone looks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-trace span cap; spans opened past it are counted, not stored.
/// Slots are claimed at open, so ancestors survive and excess leaves are
/// what overflow sheds.
pub const MAX_SPANS: usize = 512;

/// Spans at this depth or shallower (root = 0) bypass [`MAX_SPANS`]: the
/// request/solve/step skeleton is structurally bounded to a handful of
/// spans per trace, so guaranteeing it slots keeps an estimate-heavy
/// solve's tree navigable — overflow sheds only deep per-estimate
/// leaves, never `step3_greedy` or `respond` just because they close
/// after a thousand estimates.
pub const RESERVED_DEPTH: u32 = 2;

/// FNV-1a 64-bit offset basis (kept local so the crate stays
/// dependency-free; the constants match `faircap_table::fnv`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One finished span: half-open interval `[start_ns, end_ns]` relative to
/// the trace's clock anchor, linked to its parent by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the trace (root is 0).
    pub id: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Span name from the fixed taxonomy (`docs/observability.md`).
    pub name: String,
    /// Start, monotonic ns since the trace anchor.
    pub start_ns: u64,
    /// End, monotonic ns since the trace anchor (`>= start_ns`).
    pub end_ns: u64,
}

struct TraceInner {
    id: u64,
    origin: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU64,
    dropped: AtomicU64,
}

impl TraceInner {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Open a span: claim the next id and, capacity permitting, a record
    /// slot holding `[start_ns, start_ns]` until the guard drops. Opens
    /// past [`MAX_SPANS`] get no slot and count as dropped — unless the
    /// span sits at [`RESERVED_DEPTH`] or shallower, where the skeleton
    /// guarantee applies.
    fn open_span(self: &Arc<Self>, parent: Option<u64>, depth: u32, name: String) -> Span {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.now_ns();
        let mut spans = self.spans.lock().expect("trace span lock");
        let slot = if spans.len() >= MAX_SPANS && depth > RESERVED_DEPTH {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            None
        } else {
            spans.push(SpanRecord {
                id,
                parent,
                name,
                start_ns,
                end_ns: start_ns,
            });
            Some(spans.len() - 1)
        };
        drop(spans);
        Span {
            inner: Arc::clone(self),
            id,
            depth,
            slot,
            start_ns,
        }
    }

    /// Stamp a reserved slot's end time (slots are append-only, so the
    /// index stays valid for the trace's lifetime).
    fn close_span(&self, slot: usize, end_ns: u64) {
        let mut spans = self.spans.lock().expect("trace span lock");
        if let Some(record) = spans.get_mut(slot) {
            record.end_ns = end_ns;
        }
    }
}

/// One in-flight trace: the clock anchor and the growing span list.
///
/// Cloning is cheap (`Arc`); every clone appends to the same trace.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Trace {
    /// A new trace with an explicit 64-bit id (e.g. parsed from an
    /// `X-Faircap-Trace-Id` request header).
    pub fn with_id(id: u64) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                id,
                origin: Instant::now(),
                spans: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// A new trace whose id is FNV-derived from `seed` (typically the
    /// session name) and a process-wide counter, so concurrent solves on
    /// the same session still get distinct ids.
    pub fn new(seed: &str) -> Trace {
        Trace::with_id(Trace::derive_id(seed))
    }

    /// Derive a 64-bit trace id: FNV-1a over `seed` mixed with a
    /// process-wide monotonic counter.
    pub fn derive_id(seed: &str) -> u64 {
        let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
        fnv1a(&n.to_le_bytes(), fnv1a(seed.as_bytes(), FNV_OFFSET))
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The trace id as the 16-hex-digit wire form used in
    /// `X-Faircap-Trace-Id`.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.inner.id)
    }

    /// Parse a 16-hex-digit trace id (the wire form); `None` on anything
    /// else.
    pub fn parse_id(hex: &str) -> Option<u64> {
        let hex = hex.trim();
        (hex.len() == 16)
            .then(|| u64::from_str_radix(hex, 16).ok())
            .flatten()
    }

    /// Open the root span. Call once per trace; the returned [`Span`]
    /// records on drop like any other.
    pub fn root(&self, name: impl Into<String>) -> Span {
        self.open(name.into(), None)
    }

    fn open(&self, name: String, parent: Option<u64>) -> Span {
        self.inner.open_span(parent, 0, name)
    }

    /// Spans recorded so far, ordered by start time. Call after the root
    /// span has finished to get the complete tree.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.spans.lock().expect("trace span lock").clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }

    /// Spans dropped past the [`MAX_SPANS`] cap.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Package the finished trace for the [`TraceRing`]. The duration is
    /// the root span's when present, else the widest recorded extent.
    pub fn finish(&self, session: &str) -> FinishedTrace {
        let spans = self.records();
        let duration_ns = spans
            .iter()
            .find(|s| s.parent.is_none())
            .map(|s| s.end_ns - s.start_ns)
            .or_else(|| spans.iter().map(|s| s.end_ns).max())
            .unwrap_or(0);
        FinishedTrace {
            id: self.id(),
            session: session.to_owned(),
            duration_ns,
            dropped: self.dropped(),
            spans,
        }
    }
}

/// An open span: its record slot is reserved at open and its end time is
/// stamped when dropped (or via [`Span::finish`]). Children created
/// after a parent finishes are rejected at the type level — both
/// constructors need a live guard or handle.
pub struct Span {
    inner: Arc<TraceInner>,
    id: u64,
    /// Tree depth (root = 0); children inherit `depth + 1`, and depths
    /// at or below [`RESERVED_DEPTH`] bypass the span cap.
    depth: u32,
    /// Reserved index into the trace's span list; `None` when the span
    /// was opened past [`MAX_SPANS`] and only counts as dropped.
    slot: Option<usize>,
    start_ns: u64,
}

impl Span {
    /// Open a child span of this one.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.inner
            .open_span(Some(self.id), self.depth + 1, name.into())
    }

    /// A cheap cloneable address of this span for parenting children from
    /// other threads. The handle stays valid after the span finishes
    /// (late children simply parent to a closed interval).
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            inner: Arc::clone(&self.inner),
            id: self.id,
            depth: self.depth,
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}

    /// Elapsed time since the span opened, in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.now_ns().saturating_sub(self.start_ns)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            self.inner.close_span(slot, self.inner.now_ns());
        }
    }
}

/// A cloneable reference to an open span, used to parent children across
/// threads (the Step-2 work-stealing fan-out) without thread-locals.
#[derive(Clone)]
pub struct SpanHandle {
    inner: Arc<TraceInner>,
    id: u64,
    depth: u32,
}

impl SpanHandle {
    /// Open a child span under the referenced span.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.inner
            .open_span(Some(self.id), self.depth + 1, name.into())
    }
}

impl std::fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SpanHandle(trace={:016x}, span={})",
            self.inner.id, self.id
        )
    }
}

/// One completed trace as stored in the [`TraceRing`] and served from
/// `GET /v1/trace`.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// Trace id (wire form: 16 hex digits).
    pub id: u64,
    /// Session the solve ran against.
    pub session: String,
    /// Root span duration in nanoseconds.
    pub duration_ns: u64,
    /// Spans dropped past the per-trace cap.
    pub dropped: u64,
    /// The finished spans, ordered by start time.
    pub spans: Vec<SpanRecord>,
}

/// Bounded store of recent finished traces plus a sticky set of the
/// slowest ones, so a slow solve stays inspectable after the ring of
/// recent traces has turned over.
pub struct TraceRing {
    recent_cap: usize,
    slow_cap: usize,
    inner: Mutex<RingState>,
}

#[derive(Default)]
struct RingState {
    recent: std::collections::VecDeque<FinishedTrace>,
    slow: Vec<FinishedTrace>,
}

impl TraceRing {
    /// A ring keeping the last `recent_cap` traces and the `slow_cap`
    /// slowest ever pushed.
    pub fn new(recent_cap: usize, slow_cap: usize) -> TraceRing {
        TraceRing {
            recent_cap,
            slow_cap,
            inner: Mutex::new(RingState::default()),
        }
    }

    /// Store a finished trace.
    pub fn push(&self, trace: FinishedTrace) {
        let mut state = self.inner.lock().expect("trace ring lock");
        if self.slow_cap > 0 {
            let beats = state.slow.len() < self.slow_cap
                || state.slow.iter().any(|t| t.duration_ns < trace.duration_ns);
            if beats {
                state.slow.push(trace.clone());
                state
                    .slow
                    .sort_by_key(|t| std::cmp::Reverse(t.duration_ns));
                state.slow.truncate(self.slow_cap);
            }
        }
        state.recent.push_back(trace);
        while state.recent.len() > self.recent_cap {
            state.recent.pop_front();
        }
    }

    /// Stored traces matching the filters, newest-recent first, slowest
    /// appended (deduplicated by trace id). `min_duration_ns` keeps only
    /// traces at least that long; `session` keeps only that session's.
    pub fn snapshot(&self, session: Option<&str>, min_duration_ns: u64) -> Vec<FinishedTrace> {
        let state = self.inner.lock().expect("trace ring lock");
        let keep = |t: &&FinishedTrace| {
            t.duration_ns >= min_duration_ns && session.is_none_or(|s| t.session == s)
        };
        let mut out: Vec<FinishedTrace> = state.recent.iter().rev().filter(keep).cloned().collect();
        for t in state.slow.iter().filter(keep) {
            if !out.iter().any(|o| o.id == t.id) {
                out.push(t.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_on_drop() {
        let trace = Trace::new("test");
        {
            let root = trace.root("request");
            {
                let solve = root.child("solve");
                let _leaf = solve.child("step1");
            }
            root.finish();
        }
        let spans = trace.records();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(root.name, "request");
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
            if s.parent.is_some() {
                assert!(s.start_ns >= root.start_ns && s.end_ns <= root.end_ns);
            }
        }
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), spans.len(), "span ids must be unique");
    }

    #[test]
    fn panicking_scope_still_records_the_root() {
        let trace = Trace::new("panic");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let root = trace.root("request");
            let _child = root.child("solve");
            panic!("solve blew up");
        }));
        assert!(result.is_err());
        let spans = trace.records();
        assert_eq!(spans.len(), 2, "unwind must finish every open span");
        assert!(spans.iter().any(|s| s.parent.is_none()));
    }

    #[test]
    fn span_cap_sheds_deep_leaves_only() {
        let trace = Trace::new("cap");
        {
            let root = trace.root("request");
            let solve = root.child("solve");
            let step2 = solve.child("step2");
            // Depth-3 leaves are subject to the cap...
            for i in 0..MAX_SPANS + 10 {
                step2.child(format!("estimate{i}"));
            }
            // ...but late skeleton spans (depth ≤ RESERVED_DEPTH) are not.
            solve.child("step3").finish();
            root.child("respond").finish();
        }
        let records = trace.records();
        // 3 skeleton spans opened pre-overflow + MAX_SPANS − 3 leaves
        // fill the cap; step3 and respond land past it via reservation.
        assert_eq!(records.len(), MAX_SPANS + 2);
        assert_eq!(trace.dropped(), 13);
        for name in ["request", "solve", "step2", "step3", "respond"] {
            assert!(
                records.iter().any(|s| s.name == name),
                "skeleton span `{name}` must survive overflow"
            );
        }
    }

    #[test]
    fn trace_ids_round_trip_and_differ() {
        let a = Trace::new("german");
        let b = Trace::new("german");
        assert_ne!(a.id(), b.id());
        assert_eq!(Trace::parse_id(&a.id_hex()), Some(a.id()));
        assert_eq!(Trace::parse_id("nope"), None);
        assert_eq!(Trace::parse_id(""), None);
    }

    #[test]
    fn ring_keeps_recent_and_slowest() {
        let ring = TraceRing::new(2, 1);
        let mk = |id: u64, dur: u64| FinishedTrace {
            id,
            session: "s".into(),
            duration_ns: dur,
            dropped: 0,
            spans: Vec::new(),
        };
        ring.push(mk(1, 1_000_000)); // the slow one
        ring.push(mk(2, 10));
        ring.push(mk(3, 20));
        ring.push(mk(4, 30));
        let all = ring.snapshot(None, 0);
        let ids: Vec<u64> = all.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![4, 3, 1], "recent newest-first, slow retained");
        let slow_only = ring.snapshot(None, 500_000);
        assert_eq!(slow_only.len(), 1);
        assert_eq!(slow_only[0].id, 1);
        assert!(ring.snapshot(Some("other"), 0).is_empty());
    }
}
