//! Fixed log-bucketed (HDR-style) histograms over `u64` values.
//!
//! ## Bucket layout
//!
//! Each power-of-two range `[2^k, 2^(k+1))` is split into `2^SUB_BITS = 32`
//! linear sub-buckets, so every bucket's width is at most `1/32` of its
//! lower bound: a recorded value is reproducible from its bucket to within
//! **3.125 % relative error** ([`RELATIVE_ERROR_BOUND`]). Values below 32
//! land in their own exact bucket (index = value). The whole `u64` range
//! fits in [`N_BUCKETS`] = 1920 buckets (~15 KiB of `AtomicU64`s), so the
//! histogram is allocated once and never resizes.
//!
//! ## Concurrency
//!
//! [`Histogram::record`] is three relaxed atomic ops (bucket, count, sum)
//! plus a `fetch_max` for the exact maximum — no locks, safe from any
//! thread, and cheap enough for the reactor's per-request hot path.
//! Reads ([`Histogram::snapshot`], quantiles) tolerate concurrent writers;
//! they observe some interleaving of recent records, which is all a
//! metrics endpoint needs.
//!
//! ## Quantiles
//!
//! [`Histogram::quantile`] is nearest-rank over the bucket counts and
//! returns the matched bucket's **upper** bound (clamped to the exact
//! recorded maximum), so the returned value is always `≥` the true
//! nearest-rank sample and at most `(1 + 1/32)×` it. Merging two
//! histograms ([`Histogram::merge_from`]) is element-wise addition and is
//! exactly equivalent to recording both value streams into one histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power of two is split into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power of two (`2^SUB_BITS`).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range.
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB;
/// Worst-case relative error of any value reconstructed from its bucket
/// (and therefore of every reported quantile): one sub-bucket width over
/// the bucket's lower bound, `1/32`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB as f64;

/// Bucket index of a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let exp = msb - SUB_BITS;
    let sub = ((v >> exp) as usize) & (SUB - 1);
    (((exp + 1) as usize) << SUB_BITS) + sub
}

/// Inclusive `[lower, upper]` value range of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let exp = (idx >> SUB_BITS) as u32 - 1;
    let sub = (idx & (SUB - 1)) as u64;
    let lower = (SUB as u64 + sub) << exp;
    let upper = lower + ((1u64 << exp) - 1);
    (lower, upper)
}

/// A lock-free, mergeable, log-bucketed histogram of `u64` values.
///
/// The unit of the recorded values is the caller's choice (the serving
/// layer records microseconds, the estimator layer nanoseconds); the
/// histogram itself is unit-agnostic.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (one fixed allocation, never resizes).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), `None` when empty.
    ///
    /// Returns the upper bound of the bucket holding the rank, clamped to
    /// the exact maximum — always `≥` the true sample at that rank and at
    /// most `(1 + RELATIVE_ERROR_BOUND)×` it.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Add every bucket of `other` into `self`: exactly equivalent to
    /// having recorded `other`'s values here.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts for quantiles/exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, for quantile math and
/// Prometheus exposition without holding the live atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile over the snapshot; see [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (_, upper) = bucket_bounds(idx);
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of the recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(upper_bound_inclusive, count)` pairs in
    /// increasing bound order — the raw material for `_bucket` series.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_bounds(idx).1, n))
            .collect()
    }
}

/// Identifier of the workspace's shared quantile semantics, stamped into
/// bench JSON rows (`BENCH_serve.json`, `BENCH_scale.json`) so a consumer
/// can tell histogram-derived percentiles from the exact sorted-sample
/// percentiles older rows carried.
pub const QUANTILE_METHOD: &str = "log_bucket_hist";

/// A latency summary over millisecond samples with the same quantile
/// semantics as the serving layer's recorders: each sample is recorded
/// into a log-bucketed [`Histogram`] as whole microseconds, percentiles
/// are nearest-rank bucket upper bounds (within
/// [`RELATIVE_ERROR_BOUND`] above the exact value), and the max is the
/// exact recorded maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Exact arithmetic mean, milliseconds.
    pub mean_ms: f64,
    /// p50, milliseconds.
    pub p50_ms: f64,
    /// p90, milliseconds.
    pub p90_ms: f64,
    /// p99, milliseconds.
    pub p99_ms: f64,
    /// Exact maximum (at microsecond resolution), milliseconds.
    pub max_ms: f64,
}

/// Summarize millisecond latency samples through the shared log-bucketed
/// histogram; `None` when `samples` is empty. This is what the bench and
/// replay harnesses use so their percentiles agree with the serve
/// layer's `/v1/metrics` and `/metrics` numbers.
pub fn summarize_ms(samples: &[f64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    let hist = Histogram::new();
    for &ms in samples {
        hist.record((ms * 1e3).max(0.0) as u64);
    }
    let snap = hist.snapshot();
    let pct = |q: f64| snap.quantile(q).unwrap_or(snap.max) as f64 / 1e3;
    Some(LatencySummary {
        count: snap.count,
        mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
        p50_ms: pct(0.50),
        p90_ms: pct(0.90),
        p99_ms: pct(0.99),
        max_ms: snap.max as f64 / 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_exhaustive() {
        // Every bucket's lower bound is the previous bucket's upper + 1.
        let mut expect = 0u64;
        for idx in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect, "bucket {idx} lower bound");
            assert!(hi >= lo);
            // Values map back into the bucket whose range holds them.
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if hi == u64::MAX {
                assert_eq!(idx, N_BUCKETS - 1, "only the last bucket tops out");
                return;
            }
            expect = hi + 1;
        }
        panic!("layout never reached u64::MAX");
    }

    #[test]
    fn summarize_ms_matches_histogram_semantics() {
        assert!(summarize_ms(&[]).is_none());
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize_ms(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        for (got, exact) in [(s.p50_ms, 50.0), (s.p90_ms, 90.0), (s.p99_ms, 99.0)] {
            assert!(got >= exact && got <= exact * (1.0 + RELATIVE_ERROR_BOUND));
        }
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(31));
        assert_eq!(h.max(), 31);
        assert_eq!(h.sum(), 37);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..1000).map(|i| (i * i * 37 + 11) as u64).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let got = h.quantile(q).unwrap();
            assert!(got >= truth, "q{q}: {got} < exact {truth}");
            assert!(
                got as f64 <= truth as f64 * (1.0 + RELATIVE_ERROR_BOUND),
                "q{q}: {got} exceeds error bound over exact {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_record_all() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..500u64 {
            let v = i * 97 + 3;
            if i % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.snapshot().mean(), None);
        assert!(h.snapshot().nonzero_buckets().is_empty());
    }
}
