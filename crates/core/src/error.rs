//! The unified workspace error type.
//!
//! Everything that can go wrong while building a [`PrescriptionSession`]
//! (bad columns, ill-typed outcomes, malformed patterns) or solving a
//! request surfaces here as a typed, display-friendly error instead of a
//! panic — the facade crate re-exports this as `faircap::Error`.
//!
//! [`PrescriptionSession`]: crate::session::PrescriptionSession

use faircap_causal::CausalError;
use faircap_table::TableError;
use std::fmt;

/// Unified error for session construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The table layer rejected an operation (unknown column, type
    /// mismatch, malformed CSV, …).
    Table(TableError),
    /// The causal layer rejected an operation (unknown variable, invalid
    /// outcome, estimation failure, …).
    Causal(CausalError),
    /// A required builder field was never provided.
    MissingField(&'static str),
    /// A declared attribute does not exist as a column of the data.
    UnknownAttribute {
        /// Which declaration referenced it (`"immutable"`, `"mutable"`,
        /// `"protected"`).
        role: &'static str,
        /// The missing column name.
        name: String,
    },
    /// An attribute was declared with conflicting roles (immutable and
    /// mutable, or overlapping the outcome).
    ConflictingRoles {
        /// The doubly-declared attribute.
        name: String,
        /// The two roles it was given.
        roles: (&'static str, &'static str),
    },
    /// The outcome attribute is missing from the causal DAG, so no
    /// intervention could ever be identified.
    OutcomeNotInDag {
        /// The outcome attribute.
        outcome: String,
    },
    /// A solve request was structurally invalid (e.g. nonsensical
    /// thresholds).
    InvalidRequest(String),
    /// A session snapshot could not be decoded, or does not match the
    /// session it is being restored into (wrong outcome, row count, or
    /// format version).
    Snapshot(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Table(e) => write!(f, "table error: {e}"),
            Error::Causal(e) => write!(f, "causal error: {e}"),
            Error::MissingField(field) => {
                write!(f, "session builder is missing required field `{field}`")
            }
            Error::UnknownAttribute { role, name } => {
                write!(f, "{role} attribute `{name}` is not a column of the data")
            }
            Error::ConflictingRoles { name, roles } => write!(
                f,
                "attribute `{name}` declared both {} and {}",
                roles.0, roles.1
            ),
            Error::OutcomeNotInDag { outcome } => write!(
                f,
                "outcome `{outcome}` is not a node of the causal DAG; no effect on it can be identified"
            ),
            Error::InvalidRequest(msg) => write!(f, "invalid solve request: {msg}"),
            Error::Snapshot(msg) => write!(f, "session snapshot: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Table(e) => Some(e),
            Error::Causal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for Error {
    fn from(e: TableError) -> Self {
        Error::Table(e)
    }
}

impl From<CausalError> for Error {
    fn from(e: CausalError) -> Self {
        // Unwrap nested table errors so matching stays one-level.
        match e {
            CausalError::Table(t) => Error::Table(t),
            other => Error::Causal(other),
        }
    }
}

/// Convenience alias for session-level results.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = Error::MissingField("outcome");
        assert!(e.to_string().contains("outcome"));
        let e = Error::UnknownAttribute {
            role: "mutable",
            name: "ghost".into(),
        };
        assert!(e.to_string().contains("mutable") && e.to_string().contains("ghost"));
        let e = Error::OutcomeNotInDag {
            outcome: "salary".into(),
        };
        assert!(e.to_string().contains("salary"));
    }

    #[test]
    fn causal_table_errors_flatten() {
        let nested = CausalError::Table(TableError::UnknownColumn("x".into()));
        assert_eq!(
            Error::from(nested),
            Error::Table(TableError::UnknownColumn("x".into()))
        );
    }
}
