//! Intervention costs — the paper's §8 "future work" extension.
//!
//! > *"Future research will incorporate intervention costs to generate
//! > budget-constrained rules…"*
//!
//! A [`CostModel`] assigns a cost to every `attr = value` assignment (e.g.
//! "pursue a PhD" is expensive, "learn another language" cheap). The cost of
//! an intervention pattern is the sum over its predicates. Costs integrate
//! with the miner in two ways, selected by [`CostPolicy`]:
//!
//! * **Budget** — interventions costing more than a per-rule budget are
//!   infeasible and never mined.
//! * **Penalize** — the benefit of a rule is divided by `1 + weight · cost`,
//!   favoring cheap treatments with comparable effects (a
//!   "utility-per-dollar" view).

use faircap_table::{Pattern, Value};
use serde::Serialize;
use std::collections::HashMap;

/// Per-assignment intervention costs.
///
/// Unknown assignments fall back to an attribute-level default, then to the
/// global default (so a partially specified model stays usable).
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    by_assignment: HashMap<(String, Value), f64>,
    by_attribute: HashMap<String, f64>,
    default: f64,
}

impl CostModel {
    /// A model where every assignment costs `default`.
    pub fn with_default(default: f64) -> CostModel {
        CostModel {
            default,
            ..CostModel::default()
        }
    }

    /// Set the cost of one `attr = value` assignment.
    pub fn set(mut self, attr: &str, value: Value, cost: f64) -> CostModel {
        self.by_assignment.insert((attr.to_owned(), value), cost);
        self
    }

    /// Set the fallback cost for any assignment of an attribute.
    pub fn set_attribute(mut self, attr: &str, cost: f64) -> CostModel {
        self.by_attribute.insert(attr.to_owned(), cost);
        self
    }

    /// Cost of one assignment.
    pub fn assignment_cost(&self, attr: &str, value: &Value) -> f64 {
        if let Some(&c) = self.by_assignment.get(&(attr.to_owned(), value.clone())) {
            return c;
        }
        self.by_attribute.get(attr).copied().unwrap_or(self.default)
    }

    /// Cost of an intervention pattern: the sum over its predicates.
    pub fn pattern_cost(&self, intervention: &Pattern) -> f64 {
        intervention
            .predicates()
            .iter()
            .map(|p| self.assignment_cost(&p.attr, &p.value))
            .sum()
    }
}

/// How costs constrain or re-rank interventions.
#[derive(Debug, Clone, Serialize, Default)]
pub enum CostPolicy {
    /// Costs are ignored (the paper's published algorithm).
    #[default]
    Ignore,
    /// Interventions costing more than `max_rule_cost` are infeasible.
    Budget {
        /// Per-rule cost budget.
        max_rule_cost: f64,
    },
    /// Benefit is divided by `1 + weight · cost` (cost-effectiveness).
    Penalize {
        /// Strength of the penalty.
        weight: f64,
    },
}

impl CostPolicy {
    /// Is an intervention with the given cost feasible at all?
    pub fn is_feasible(&self, cost: f64) -> bool {
        match self {
            CostPolicy::Budget { max_rule_cost } => cost <= *max_rule_cost,
            _ => true,
        }
    }

    /// Apply the policy to a benefit score.
    pub fn adjust_benefit(&self, benefit: f64, cost: f64) -> f64 {
        match self {
            CostPolicy::Penalize { weight } if benefit > 0.0 => {
                benefit / (1.0 + weight * cost.max(0.0))
            }
            _ => benefit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::with_default(1.0)
            .set("education", Value::from("phd"), 10.0)
            .set("education", Value::from("bachelor"), 4.0)
            .set_attribute("languages_count", 0.5)
    }

    #[test]
    fn lookup_precedence() {
        let m = model();
        assert_eq!(m.assignment_cost("education", &Value::from("phd")), 10.0);
        // attribute fallback
        assert_eq!(
            m.assignment_cost("languages_count", &Value::from("6+")),
            0.5
        );
        // global default
        assert_eq!(m.assignment_cost("remote_work", &Value::from("yes")), 1.0);
    }

    #[test]
    fn pattern_cost_is_additive() {
        let m = model();
        let p = Pattern::of_eq(&[
            ("education", Value::from("phd")),
            ("languages_count", Value::from("6+")),
        ]);
        assert_eq!(m.pattern_cost(&p), 10.5);
        assert_eq!(m.pattern_cost(&Pattern::empty()), 0.0);
    }

    #[test]
    fn budget_policy_gates() {
        let policy = CostPolicy::Budget { max_rule_cost: 5.0 };
        assert!(policy.is_feasible(4.0));
        assert!(policy.is_feasible(5.0));
        assert!(!policy.is_feasible(5.1));
        // budget does not change scores
        assert_eq!(policy.adjust_benefit(7.0, 4.0), 7.0);
    }

    #[test]
    fn penalty_policy_scales() {
        let policy = CostPolicy::Penalize { weight: 0.5 };
        assert!(policy.is_feasible(f64::MAX));
        assert_eq!(policy.adjust_benefit(10.0, 2.0), 5.0);
        // zero cost → unchanged
        assert_eq!(policy.adjust_benefit(10.0, 0.0), 10.0);
        // non-positive benefits pass through
        assert_eq!(policy.adjust_benefit(-1.0, 10.0), -1.0);
    }

    #[test]
    fn ignore_policy_is_identity() {
        let policy = CostPolicy::Ignore;
        assert!(policy.is_feasible(f64::MAX));
        assert_eq!(policy.adjust_benefit(3.0, 100.0), 3.0);
    }
}
