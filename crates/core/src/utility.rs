//! Ruleset expected utilities (Definition 4.5, Eqs. 5–7).
//!
//! * Overall / non-protected individuals take the **max** utility over the
//!   rules that cover them (they pick the best recommendation).
//! * Protected individuals take the **min** (the paper's conservative
//!   worst-case reading, since the decision-maker may hand them any
//!   applicable rule).
//!
//! All three are computed in one pass over the rules with per-row
//! accumulators.

use crate::rule::Rule;
use faircap_table::Mask;
use serde::Serialize;

/// Expected-utility summary of a ruleset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RulesetUtility {
    /// Eq. 5 — average best-rule utility over the whole population
    /// (denominator `n = |D|`).
    pub expected: f64,
    /// Eq. 6 — average *worst* applicable-rule utility over covered
    /// protected individuals (denominator = covered protected count).
    pub expected_protected: f64,
    /// Eq. 7 — average best-rule utility over covered non-protected
    /// individuals (denominator = covered non-protected count).
    pub expected_non_protected: f64,
    /// Fraction of the population covered by at least one rule.
    pub coverage: f64,
    /// Fraction of the protected group covered by at least one rule.
    pub coverage_protected: f64,
    /// Unfairness score used in the paper's tables:
    /// `expected_non_protected − expected_protected`.
    pub unfairness: f64,
}

impl RulesetUtility {
    /// The all-zero summary of an empty ruleset.
    pub fn empty() -> RulesetUtility {
        RulesetUtility {
            expected: 0.0,
            expected_protected: 0.0,
            expected_non_protected: 0.0,
            coverage: 0.0,
            coverage_protected: 0.0,
            unfairness: 0.0,
        }
    }
}

/// Compute the utility summary of `rules` against a population of `n_rows`
/// rows with the given protected mask.
///
/// Each rule contributes its **overall** utility to the non-protected
/// accumulator and its **protected** utility to the protected accumulator,
/// mirroring the paper's use of `utility(r)` in Eq. 5/7 and worst-case
/// protected utilities in Eq. 6.
pub fn ruleset_utility(rules: &[&Rule], n_rows: usize, protected: &Mask) -> RulesetUtility {
    if rules.is_empty() || n_rows == 0 {
        return RulesetUtility::empty();
    }
    // Per-row best (max) utility for everyone, worst (min) for protected.
    let mut best = vec![f64::NEG_INFINITY; n_rows];
    let mut worst = vec![f64::INFINITY; n_rows];
    let mut covered = Mask::zeros(n_rows);
    for r in rules {
        for i in r.coverage.iter_ones() {
            best[i] = best[i].max(r.utility.overall);
            covered.set(i, true);
        }
        for i in r.coverage_protected.iter_ones() {
            worst[i] = worst[i].min(r.utility.protected);
        }
    }

    let n_protected_total = protected.count();
    let covered_protected = &covered & protected;
    let covered_non_protected = covered.andnot(protected);

    let mut sum_all = 0.0;
    let mut sum_np = 0.0;
    for i in covered_non_protected.iter_ones() {
        sum_all += best[i];
        sum_np += best[i];
    }
    let mut sum_p = 0.0;
    for i in covered_protected.iter_ones() {
        // Protected rows still count their best utility in Eq. 5 (it
        // averages max over everyone), but Eq. 6 takes the min.
        sum_all += best[i];
        sum_p += worst[i];
    }

    let n_cov_p = covered_protected.count();
    let n_cov_np = covered_non_protected.count();
    let expected = sum_all / n_rows as f64;
    let expected_protected = if n_cov_p > 0 {
        sum_p / n_cov_p as f64
    } else {
        0.0
    };
    let expected_non_protected = if n_cov_np > 0 {
        sum_np / n_cov_np as f64
    } else {
        0.0
    };
    RulesetUtility {
        expected,
        expected_protected,
        expected_non_protected,
        coverage: covered.fraction(),
        coverage_protected: if n_protected_total > 0 {
            n_cov_p as f64 / n_protected_total as f64
        } else {
            0.0
        },
        unfairness: expected_non_protected - expected_protected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleUtility;
    use faircap_table::Pattern;

    fn rule(cov: &[usize], cov_p: &[usize], overall: f64, prot: f64, np: f64) -> Rule {
        Rule {
            grouping: Pattern::empty(),
            intervention: Pattern::empty(),
            coverage: Mask::from_indices(10, cov),
            coverage_protected: Mask::from_indices(10, cov_p),
            utility: RuleUtility {
                overall,
                protected: prot,
                non_protected: np,
                p_value: 0.0,
            },
            benefit: 0.0,
        }
    }

    /// Protected rows: 0..5. Non-protected: 5..10.
    fn protected() -> Mask {
        Mask::from_indices(10, &[0, 1, 2, 3, 4])
    }

    #[test]
    fn empty_ruleset_is_zero() {
        let u = ruleset_utility(&[], 10, &protected());
        assert_eq!(u, RulesetUtility::empty());
    }

    #[test]
    fn single_rule_matches_definitions() {
        // Covers rows 0,1 (protected) and 5,6 (non-protected).
        let r = rule(&[0, 1, 5, 6], &[0, 1], 10.0, 4.0, 12.0);
        let u = ruleset_utility(&[&r], 10, &protected());
        // Eq. 5: 4 covered rows × overall 10 / n=10.
        assert!((u.expected - 4.0).abs() < 1e-12);
        // Eq. 6: protected covered = {0,1}, min utility = 4.
        assert!((u.expected_protected - 4.0).abs() < 1e-12);
        // Eq. 7: non-protected covered = {5,6}, max = overall 10.
        assert!((u.expected_non_protected - 10.0).abs() < 1e-12);
        assert!((u.coverage - 0.4).abs() < 1e-12);
        assert!((u.coverage_protected - 0.4).abs() < 1e-12);
        assert!((u.unfairness - 6.0).abs() < 1e-12);
    }

    #[test]
    fn max_for_everyone_min_for_protected() {
        // Two overlapping rules on row 0 (protected) and row 9 (non-prot).
        let r1 = rule(&[0, 9], &[0], 10.0, 3.0, 11.0);
        let r2 = rule(&[0, 9], &[0], 20.0, 8.0, 22.0);
        let u = ruleset_utility(&[&r1, &r2], 10, &protected());
        // Non-protected row 9 takes max(10, 20) = 20.
        assert!((u.expected_non_protected - 20.0).abs() < 1e-12);
        // Protected row 0 takes min(3, 8) = 3.
        assert!((u.expected_protected - 3.0).abs() < 1e-12);
        // Eq. 5 averages max for everyone: (20 + 20)/10 = 4.
        assert!((u.expected - 4.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_rules_average() {
        let r1 = rule(&[0, 1], &[0, 1], 10.0, 10.0, 10.0);
        let r2 = rule(&[5, 6], &[], 30.0, 0.0, 30.0);
        let u = ruleset_utility(&[&r1, &r2], 10, &protected());
        assert!((u.expected - (2.0 * 10.0 + 2.0 * 30.0) / 10.0).abs() < 1e-12);
        assert!((u.expected_protected - 10.0).abs() < 1e-12);
        assert!((u.expected_non_protected - 30.0).abs() < 1e-12);
        assert!((u.unfairness - 20.0).abs() < 1e-12);
    }

    #[test]
    fn adding_rules_never_decreases_coverage() {
        let r1 = rule(&[0, 1], &[0, 1], 5.0, 5.0, 5.0);
        let r2 = rule(&[2, 7], &[2], 5.0, 5.0, 5.0);
        let u1 = ruleset_utility(&[&r1], 10, &protected());
        let u12 = ruleset_utility(&[&r1, &r2], 10, &protected());
        assert!(u12.coverage >= u1.coverage);
        assert!(u12.coverage_protected >= u1.coverage_protected);
        // Eq. 5 is monotone in added rules (max over more rules).
        assert!(u12.expected >= u1.expected - 1e-12);
    }

    #[test]
    fn no_protected_group_degenerates() {
        let r = rule(&[0, 1], &[], 7.0, 0.0, 7.0);
        let u = ruleset_utility(&[&r], 10, &Mask::zeros(10));
        assert_eq!(u.expected_protected, 0.0);
        assert_eq!(u.coverage_protected, 0.0);
        assert!((u.expected_non_protected - 7.0).abs() < 1e-12);
    }
}
