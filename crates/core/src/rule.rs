//! Prescription rules (Definition 4.3) and their per-rule statistics.

use faircap_table::{DataFrame, Mask, Pattern, Value};
use serde::Serialize;
use std::fmt;

/// Utility triple of a rule (Definition 4.4): overall, protected,
/// non-protected CATE, plus significance diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RuleUtility {
    /// `utility(r)` — CATE over the whole coverage.
    pub overall: f64,
    /// `utility_p(r)` — CATE over the protected part of the coverage
    /// (0 when the protected sub-coverage is empty / not estimable,
    /// following the paper's convention).
    pub protected: f64,
    /// `utility_{\bar p}(r)` — CATE over the non-protected part.
    pub non_protected: f64,
    /// p-value of the overall effect (statistical-significance filter §5).
    pub p_value: f64,
}

impl RuleUtility {
    /// Absolute protected/non-protected utility gap (the SP quantity).
    pub fn gap(&self) -> f64 {
        (self.non_protected - self.protected).abs()
    }
}

/// A prescription rule `r = (P_grp, P_int)` with materialized coverage and
/// utilities.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Grouping pattern over immutable attributes.
    pub grouping: Pattern,
    /// Intervention pattern over mutable attributes.
    pub intervention: Pattern,
    /// `Coverage(P_grp)` over the full frame.
    pub coverage: Mask,
    /// Coverage restricted to the protected group.
    pub coverage_protected: Mask,
    /// Utility triple.
    pub utility: RuleUtility,
    /// Fairness-penalized benefit (§5.2 / §5.4), set by the miner for the
    /// active constraint.
    pub benefit: f64,
}

impl Rule {
    /// Number of covered tuples.
    pub fn coverage_count(&self) -> usize {
        self.coverage.count()
    }

    /// Number of covered protected tuples.
    pub fn coverage_protected_count(&self) -> usize {
        self.coverage_protected.count()
    }

    /// Render the rule as the paper's rule cards do ("For \[group\], \[action\]").
    pub fn describe(&self) -> String {
        format!(
            "For [{}], set [{}]  (utility: {:.0} overall / {:.0} protected / {:.0} non-protected)",
            self.grouping,
            self.intervention,
            self.utility.overall,
            self.utility.protected,
            self.utility.non_protected,
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IF {} THEN {}", self.grouping, self.intervention)
    }
}

/// Build an equality pattern quickly in tests and examples.
pub fn eq_pattern(pairs: &[(&str, &str)]) -> Pattern {
    Pattern::of_eq(
        &pairs
            .iter()
            .map(|(a, v)| (*a, Value::from(*v)))
            .collect::<Vec<_>>(),
    )
}

/// Materialize the coverage masks of a grouping pattern against a frame and
/// protected mask.
pub fn coverage_masks(
    df: &DataFrame,
    grouping: &Pattern,
    protected: &Mask,
) -> faircap_table::Result<(Mask, Mask)> {
    let coverage = grouping.coverage(df)?;
    let coverage_protected = &coverage & protected;
    Ok((coverage, coverage_protected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    fn frame() -> DataFrame {
        DataFrame::builder()
            .cat("age", &["young", "young", "old", "old"])
            .cat("edu", &["none", "phd", "none", "phd"])
            .cat("grp", &["p", "np", "p", "np"])
            .build()
            .unwrap()
    }

    #[test]
    fn coverage_masks_split_protected() {
        let df = frame();
        let protected = eq_pattern(&[("grp", "p")]).coverage(&df).unwrap();
        let grouping = eq_pattern(&[("age", "young")]);
        let (cov, cov_p) = coverage_masks(&df, &grouping, &protected).unwrap();
        assert_eq!(cov.to_indices(), vec![0, 1]);
        assert_eq!(cov_p.to_indices(), vec![0]);
    }

    #[test]
    fn utility_gap() {
        let u = RuleUtility {
            overall: 10.0,
            protected: 4.0,
            non_protected: 12.0,
            p_value: 0.01,
        };
        assert_eq!(u.gap(), 8.0);
    }

    #[test]
    fn display_and_describe() {
        let df = frame();
        let protected = eq_pattern(&[("grp", "p")]).coverage(&df).unwrap();
        let grouping = eq_pattern(&[("age", "young")]);
        let (coverage, coverage_protected) = coverage_masks(&df, &grouping, &protected).unwrap();
        let r = Rule {
            grouping,
            intervention: eq_pattern(&[("edu", "phd")]),
            coverage,
            coverage_protected,
            utility: RuleUtility {
                overall: 100.0,
                protected: 50.0,
                non_protected: 110.0,
                p_value: 0.001,
            },
            benefit: 42.0,
        };
        assert_eq!(r.to_string(), "IF age = young THEN edu = phd");
        assert!(r.describe().contains("edu = phd"));
        assert_eq!(r.coverage_count(), 2);
        assert_eq!(r.coverage_protected_count(), 1);
    }
}
