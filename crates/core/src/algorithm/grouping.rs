//! Step 1 (§5.1): mine grouping patterns over the immutable attributes with
//! the Apriori algorithm.

use crate::config::{CoverageConstraint, FairCapConfig};
use faircap_mining::{apriori_with_stats, AprioriConfig, FrequentPattern, MiningStats};
use faircap_table::{DataFrame, Mask, Result};

/// Mine candidate grouping patterns.
///
/// The Apriori support threshold is the configured τ, raised to the rule-
/// coverage θ when a rule-coverage constraint is active (§5.4: "we set the
/// Apriori's threshold to ensure that each mined grouping pattern covers a
/// sufficient number of individuals"). Patterns failing the per-rule
/// protected-coverage requirement are filtered here too, so later steps
/// never waste CATE estimations on them.
pub fn mine_grouping_patterns(
    df: &DataFrame,
    immutable: &[String],
    protected: &Mask,
    config: &FairCapConfig,
) -> Result<Vec<FrequentPattern>> {
    mine_grouping_patterns_with_stats(df, immutable, protected, config).map(|(out, _)| out)
}

/// [`mine_grouping_patterns`] plus the Apriori [`MiningStats`] (candidate
/// pipeline accounting for the solve report).
pub fn mine_grouping_patterns_with_stats(
    df: &DataFrame,
    immutable: &[String],
    protected: &Mask,
    config: &FairCapConfig,
) -> Result<(Vec<FrequentPattern>, MiningStats)> {
    let mut min_support = config.apriori_threshold;
    if let CoverageConstraint::Rule { theta, .. } = config.coverage {
        min_support = min_support.max(theta);
    }
    let (patterns, stats) = apriori_with_stats(
        df,
        immutable,
        &Mask::ones(df.n_rows()),
        &AprioriConfig {
            min_support,
            max_len: config.max_group_len,
            max_values_per_attr: 24,
        },
    )?;
    let filtered = match config.coverage {
        CoverageConstraint::Rule {
            theta_protected, ..
        } => {
            let need = (theta_protected * protected.count() as f64).ceil() as usize;
            patterns
                .into_iter()
                .filter(|p| p.support.intersect_count(protected) >= need)
                .collect()
        }
        _ => patterns,
    };
    Ok((filtered, stats))
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;
    use crate::config::FairCapConfig;
    use faircap_table::DataFrame;

    fn df() -> DataFrame {
        let ages: Vec<&str> = (0..40)
            .map(|i| if i % 2 == 0 { "young" } else { "old" })
            .collect();
        let grp: Vec<&str> = (0..40).map(|i| if i < 8 { "p" } else { "np" }).collect();
        DataFrame::builder()
            .cat("age", &ages)
            .cat("grp", &grp)
            .build()
            .unwrap()
    }

    fn protected() -> Mask {
        Mask::from_indices(40, &(0..8).collect::<Vec<_>>())
    }

    #[test]
    fn mines_with_default_threshold() {
        let cfg = FairCapConfig::default();
        let pats = mine_grouping_patterns(&df(), &["age".into(), "grp".into()], &protected(), &cfg)
            .unwrap();
        assert!(!pats.is_empty());
        // Every pattern covers ≥ 10% of 40 = 4 rows.
        assert!(pats.iter().all(|p| p.count() >= 4));
    }

    #[test]
    fn rule_coverage_raises_threshold() {
        let mut cfg = FairCapConfig::default();
        cfg.coverage = CoverageConstraint::Rule {
            theta: 0.45,
            theta_protected: 0.0,
        };
        let pats = mine_grouping_patterns(&df(), &["age".into()], &protected(), &cfg).unwrap();
        // Both "young" (20) and "old" (20) meet 45% of 40 = 18.
        assert_eq!(pats.len(), 2);
        cfg.coverage = CoverageConstraint::Rule {
            theta: 0.55,
            theta_protected: 0.0,
        };
        let pats = mine_grouping_patterns(&df(), &["age".into()], &protected(), &cfg).unwrap();
        assert!(pats.is_empty());
    }

    #[test]
    fn protected_coverage_filter() {
        let mut cfg = FairCapConfig::default();
        cfg.coverage = CoverageConstraint::Rule {
            theta: 0.1,
            theta_protected: 0.6,
        };
        // protected rows 0..8 are split: young = {0,2,4,6} (4 of 8 = 50%),
        // old = {1,3,5,7} (50%). Requiring 60% kills both.
        let pats = mine_grouping_patterns(&df(), &["age".into()], &protected(), &cfg).unwrap();
        assert!(pats.is_empty());
        cfg.coverage = CoverageConstraint::Rule {
            theta: 0.1,
            theta_protected: 0.5,
        };
        let pats = mine_grouping_patterns(&df(), &["age".into()], &protected(), &cfg).unwrap();
        assert_eq!(pats.len(), 2);
    }
}
