//! The FairCap three-step algorithm (Algorithm 1).
//!
//! The pipeline lives on [`PrescriptionSession::solve`]; this module holds
//! the per-step implementations (`grouping`, `intervention`, `greedy`), the
//! fan-out across grouping patterns, and the deprecated one-shot [`run`]
//! compatibility shim.
//!
//! [`PrescriptionSession::solve`]: crate::session::PrescriptionSession::solve

pub mod greedy;
pub mod grouping;
pub mod intervention;

use crate::config::FairCapConfig;
use crate::report::SolutionReport;
use crate::rule::Rule;
use crate::session::{FairCap, SolveRequest};
use faircap_causal::{CateQuery, Dag};
use faircap_table::{DataFrame, Mask, Pattern};

/// Everything a Prescription Ruleset Selection instance needs
/// (Definition 4.6): data, causal model, outcome, the immutable/mutable
/// split, and the protected group.
///
/// Only consumed by the deprecated [`run`] shim; the session API takes the
/// same fields through [`FairCap::builder`].
#[derive(Clone, Copy)]
pub struct ProblemInput<'a> {
    /// The database `D`.
    pub df: &'a DataFrame,
    /// The causal DAG `G_D`.
    pub dag: &'a Dag,
    /// Outcome attribute `O`.
    pub outcome: &'a str,
    /// Immutable attributes `I`.
    pub immutable: &'a [String],
    /// Mutable attributes `M`.
    pub mutable: &'a [String],
    /// Protected-group pattern `P_p`.
    pub protected: &'a Pattern,
}

/// Run FairCap end to end and return the solution with per-step timings.
///
/// One-shot compatibility shim: builds a throwaway session (cloning the
/// frame and DAG), solves once, and discards every cache — and panics on
/// invalid input, because its signature predates typed errors. New code
/// should build a session via [`FairCap::builder()`](crate::session::FairCap::builder)
/// and call [`PrescriptionSession::solve`](crate::session::PrescriptionSession::solve),
/// which returns `Result`, reuses caches across calls, and accepts
/// per-request estimators. `docs/building.md` covers the migration.
#[deprecated(
    since = "0.2.0",
    note = "build a PrescriptionSession via FairCap::builder() and call solve(); \
            run() rebuilds the engine caches on every call and panics on bad input"
)]
pub fn run(input: &ProblemInput<'_>, config: &FairCapConfig) -> SolutionReport {
    let session = FairCap::builder()
        .data(input.df.clone())
        .dag(input.dag.clone())
        .outcome(input.outcome)
        .immutable(input.immutable.iter().cloned())
        .mutable(input.mutable.iter().cloned())
        .protected(input.protected.clone())
        .build()
        .expect("invalid problem input (the deprecated run() shim panics; the builder reports this as a typed error)");
    session.solve(&SolveRequest::from(config.clone())).expect(
        "invalid config (the deprecated run() shim panics; solve() reports this as a typed error)",
    )
}

/// Step-2 fan-out: mine the top interventions of every grouping pattern,
/// in parallel when configured (§5.2 optimization (ii)).
pub(crate) fn mine_all_interventions(
    query: &CateQuery<'_>,
    groups: &[faircap_mining::FrequentPattern],
    protected_mask: &Mask,
    mutable: &[String],
    config: &FairCapConfig,
) -> Vec<Rule> {
    let worker = |g: &faircap_mining::FrequentPattern| -> Vec<Rule> {
        intervention::mine_top_interventions(
            query,
            &g.pattern,
            &g.support,
            protected_mask,
            mutable,
            config,
            config.interventions_per_group.max(1),
        )
    };
    if !config.parallel || groups.len() < 2 {
        return groups.iter().flat_map(&worker).collect();
    }
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(groups.len());
    let chunk = groups.len().div_ceil(n_threads);
    // One result slot per group keeps the output order deterministic
    // regardless of thread scheduling.
    let mut slots: Vec<Vec<Rule>> = vec![Vec::new(); groups.len()];
    std::thread::scope(|scope| {
        for (group_chunk, slot_chunk) in groups.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (g, slot) in group_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = worker(g);
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_table::Value;

    fn fixture() -> (DataFrame, Dag, Vec<String>, Vec<String>, Pattern) {
        let scm = Scm::new()
            .categorical("segment", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "treat",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "outcome",
                &["segment", "grp", "treat"],
                Box::new(|row, rng| {
                    let mut v = 50.0;
                    if row.str("treat") == "yes" {
                        v += if row.str("grp") == "p" { 8.0 } else { 20.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 4.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 23).unwrap();
        let dag = scm.dag();
        (
            df,
            dag,
            vec!["segment".into(), "grp".into()],
            vec!["treat".into()],
            Pattern::of_eq(&[("grp", Value::from("p"))]),
        )
    }

    /// The deprecated shim must keep producing exactly what an equivalent
    /// session solve produces (one release of behavioural compatibility).
    #[test]
    #[allow(deprecated)]
    fn run_shim_matches_session_solve() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "outcome",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let via_shim = run(&input, &FairCapConfig::default());
        let session = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .immutable(imm)
            .mutable(mt)
            .protected(prot)
            .build()
            .unwrap();
        let via_session = session.solve(&SolveRequest::default()).unwrap();
        assert_eq!(via_shim.summary, via_session.summary);
        let a: Vec<String> = via_shim.rules.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = via_session.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b);
    }
}
