//! The FairCap three-step algorithm (Algorithm 1).

pub mod greedy;
pub mod grouping;
pub mod intervention;

use crate::config::FairCapConfig;
use crate::report::{SolutionReport, StepTimings};
use crate::rule::Rule;
use faircap_causal::{CateEngine, Dag};
use faircap_table::{DataFrame, Mask, Pattern};
use std::time::Instant;

/// Everything a Prescription Ruleset Selection instance needs
/// (Definition 4.6): data, causal model, outcome, the immutable/mutable
/// split, and the protected group.
#[derive(Clone, Copy)]
pub struct ProblemInput<'a> {
    /// The database `D`.
    pub df: &'a DataFrame,
    /// The causal DAG `G_D`.
    pub dag: &'a Dag,
    /// Outcome attribute `O`.
    pub outcome: &'a str,
    /// Immutable attributes `I`.
    pub immutable: &'a [String],
    /// Mutable attributes `M`.
    pub mutable: &'a [String],
    /// Protected-group pattern `P_p`.
    pub protected: &'a Pattern,
}

/// Run FairCap end to end and return the solution with per-step timings.
pub fn run(input: &ProblemInput<'_>, config: &FairCapConfig) -> SolutionReport {
    let protected_mask = input
        .protected
        .coverage(input.df)
        .expect("protected pattern must evaluate");
    let engine = CateEngine::new(input.df, input.dag, input.outcome, config.estimator);

    // ---- Step 1: grouping patterns (§5.1). ----
    let t0 = Instant::now();
    let groups = grouping::mine_grouping_patterns(
        input.df,
        input.immutable,
        &protected_mask,
        config,
    )
    .expect("grouping mining cannot fail on a valid frame");
    let grouping_time = t0.elapsed();

    // ---- Step 2: intervention mining (§5.2), parallel across groups. ----
    let t1 = Instant::now();
    let candidates = mine_all_interventions(&engine, &groups, &protected_mask, input, config);
    let intervention_time = t1.elapsed();

    // ---- Step 3: greedy selection (§5.3). ----
    let t2 = Instant::now();
    let outcome = greedy::greedy_select(
        candidates.clone(),
        config,
        input.df.n_rows(),
        &protected_mask,
    );
    let greedy_time = t2.elapsed();

    SolutionReport {
        label: config.label(),
        rules: outcome.selected,
        summary: outcome.summary,
        constraints_met: outcome.constraints_met,
        n_grouping_patterns: groups.len(),
        n_candidates: candidates.len(),
        timings: StepTimings {
            grouping: grouping_time,
            intervention: intervention_time,
            greedy: greedy_time,
        },
    }
}

fn mine_all_interventions(
    engine: &CateEngine<'_>,
    groups: &[faircap_mining::FrequentPattern],
    protected_mask: &Mask,
    input: &ProblemInput<'_>,
    config: &FairCapConfig,
) -> Vec<Rule> {
    let worker = |g: &faircap_mining::FrequentPattern| -> Vec<Rule> {
        intervention::mine_top_interventions(
            engine,
            &g.pattern,
            &g.support,
            protected_mask,
            input.mutable,
            config,
            config.interventions_per_group.max(1),
        )
    };
    if !config.parallel || groups.len() < 2 {
        return groups.iter().flat_map(&worker).collect();
    }
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(groups.len());
    // One result slot per group keeps the output order deterministic
    // regardless of thread scheduling.
    let mut slots: Vec<Vec<Rule>> = vec![Vec::new(); groups.len()];
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, (group_chunk, slot_chunk)) in groups
            .chunks(groups.len().div_ceil(n_threads))
            .zip(slots.chunks_mut(groups.len().div_ceil(n_threads)))
            .enumerate()
        {
            let _ = chunk_idx;
            scope.spawn(move |_| {
                for (g, slot) in group_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = worker(g);
                }
            });
        }
    })
    .expect("intervention mining workers must not panic");
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;
    use crate::config::{CoverageConstraint, FairnessConstraint, FairnessScope};
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_table::Value;

    /// A compact end-to-end fixture: one immutable (segment), protected
    /// subgroup, two binary treatments with planted unfair/fair effects.
    fn fixture() -> (DataFrame, Dag, Vec<String>, Vec<String>, Pattern) {
        let scm = Scm::new()
            .categorical("segment", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "big",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "fair",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "outcome",
                &["segment", "grp", "big", "fair"],
                Box::new(|row, rng| {
                    let p = row.str("grp") == "p";
                    let mut v = 50.0;
                    if row.str("segment") == "a" {
                        v += 5.0;
                    }
                    if row.str("big") == "yes" {
                        v += if p { 6.0 } else { 30.0 };
                    }
                    if row.str("fair") == "yes" {
                        v += if p { 11.0 } else { 12.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 4.0))
                }),
            )
            .unwrap();
        let df = scm.sample(5000, 23).unwrap();
        let dag = scm.dag();
        (
            df,
            dag,
            vec!["segment".into(), "grp".into()],
            vec!["big".into(), "fair".into()],
            Pattern::of_eq(&[("grp", Value::from("p"))]),
        )
    }

    #[test]
    fn end_to_end_unconstrained() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "outcome",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let report = run(&input, &FairCapConfig::default());
        assert!(!report.rules.is_empty());
        assert!(report.summary.expected > 0.0);
        assert!(report.n_grouping_patterns > 0);
        // Unconstrained: the big unfair treatment should dominate.
        assert!(
            report.summary.unfairness > 10.0,
            "unconstrained unfairness {}",
            report.summary.unfairness
        );
    }

    #[test]
    fn end_to_end_group_sp_reduces_unfairness() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "outcome",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let unconstrained = run(&input, &FairCapConfig::default());
        let mut cfg = FairCapConfig::default();
        cfg.fairness = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 5.0,
        };
        let fair = run(&input, &cfg);
        assert!(fair.constraints_met, "group SP must be satisfiable here");
        assert!(
            fair.summary.unfairness.abs() <= 5.0,
            "unfairness {} > ε",
            fair.summary.unfairness
        );
        // Fairness costs utility (Table 4's headline phenomenon).
        assert!(
            fair.summary.expected <= unconstrained.summary.expected + 1e-9,
            "fair {} should not exceed unconstrained {}",
            fair.summary.expected,
            unconstrained.summary.expected
        );
        assert!(fair.summary.unfairness.abs() < unconstrained.summary.unfairness.abs());
    }

    #[test]
    fn end_to_end_group_coverage() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "outcome",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let mut cfg = FairCapConfig::default();
        cfg.coverage = CoverageConstraint::Group {
            theta: 0.9,
            theta_protected: 0.9,
        };
        let report = run(&input, &cfg);
        assert!(report.constraints_met);
        assert!(report.summary.coverage >= 0.9);
        assert!(report.summary.coverage_protected >= 0.9);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "outcome",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let mut serial_cfg = FairCapConfig::default();
        serial_cfg.parallel = false;
        let mut parallel_cfg = FairCapConfig::default();
        parallel_cfg.parallel = true;
        let a = run(&input, &serial_cfg);
        let b = run(&input, &parallel_cfg);
        let ra: Vec<String> = a.rules.iter().map(|r| r.to_string()).collect();
        let rb: Vec<String> = b.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn timings_are_populated() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "outcome",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let report = run(&input, &FairCapConfig::default());
        let t = &report.timings;
        assert!(t.grouping.as_nanos() > 0);
        assert!(t.intervention.as_nanos() > 0);
        // total is the sum
        assert_eq!(
            t.total(),
            t.grouping + t.intervention + t.greedy
        );
    }
}
