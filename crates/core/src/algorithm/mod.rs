//! The FairCap three-step algorithm (Algorithm 1).
//!
//! The pipeline lives on [`PrescriptionSession::solve`]; this module holds
//! the per-step implementations (`grouping`, `intervention`, `greedy`) and
//! the Step-2 fan-out across grouping patterns, which runs on the
//! work-stealing executor in [`crate::exec`].
//!
//! [`PrescriptionSession::solve`]: crate::session::PrescriptionSession::solve

pub mod greedy;
pub mod grouping;
pub mod intervention;

use crate::config::FairCapConfig;
use crate::exec::{self, ExecStats};
use crate::rule::Rule;
use faircap_causal::CateQuery;
use faircap_table::Mask;

/// Step-2 fan-out: mine the top interventions of every grouping pattern,
/// in parallel when configured (§5.2 optimization (ii)).
///
/// Parallel runs use the work-stealing executor: grouping patterns become
/// task units claimed dynamically by `workers` threads (resolved via
/// [`exec::resolve_workers`]), so one slow pattern no longer stalls a
/// statically assigned chunk. Output order — and therefore the final
/// ruleset — is identical to the serial path; the returned [`ExecStats`]
/// (present only for parallel runs) reports how the schedule actually
/// balanced.
pub(crate) fn mine_all_interventions(
    query: &CateQuery<'_>,
    groups: &[faircap_mining::FrequentPattern],
    protected_mask: &Mask,
    mutable: &[String],
    config: &FairCapConfig,
    workers: Option<usize>,
) -> (Vec<Rule>, Option<ExecStats>) {
    let worker = |g: &faircap_mining::FrequentPattern| -> Vec<Rule> {
        intervention::mine_top_interventions(
            query,
            &g.pattern,
            &g.support,
            protected_mask,
            mutable,
            config,
            config.interventions_per_group.max(1),
        )
    };
    if !config.parallel || groups.len() < 2 {
        return (groups.iter().flat_map(&worker).collect(), None);
    }
    let n_workers = exec::resolve_workers(workers);
    let (per_group, stats) =
        exec::run_work_stealing(groups.len(), n_workers, |i| worker(&groups[i]));
    (per_group.into_iter().flatten().collect(), Some(stats))
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use crate::config::FairCapConfig;
    use crate::session::{FairCap, SolveRequest};
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_causal::Dag;
    use faircap_table::{DataFrame, Pattern, Value};

    fn fixture() -> (DataFrame, Dag, Vec<String>, Vec<String>, Pattern) {
        let scm = Scm::new()
            .categorical("segment", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "treat",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "outcome",
                &["segment", "grp", "treat"],
                Box::new(|row, rng| {
                    let mut v = 50.0;
                    if row.str("treat") == "yes" {
                        v += if row.str("grp") == "p" { 8.0 } else { 20.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 4.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 23).unwrap();
        let dag = scm.dag();
        (
            df,
            dag,
            vec!["segment".into(), "grp".into()],
            vec!["treat".into()],
            Pattern::of_eq(&[("grp", Value::from("p"))]),
        )
    }

    /// The work-stealing parallel fan-out must produce exactly the ruleset
    /// of a serial solve, at any worker count (the determinism contract
    /// that replaced the retired one-shot `run()` shim's compatibility
    /// test).
    #[test]
    fn serial_and_parallel_session_solves_agree() {
        let (df, dag, imm, mt, prot) = fixture();
        let session = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .immutable(imm)
            .mutable(mt)
            .protected(prot)
            .build()
            .unwrap();
        let mut serial_cfg = FairCapConfig::default();
        serial_cfg.parallel = false;
        let serial = session.solve(&SolveRequest::from(serial_cfg)).unwrap();
        assert!(serial.exec.is_none(), "serial solve reports no exec stats");
        let serial_rules: Vec<String> = serial.rules.iter().map(|r| r.to_string()).collect();
        for workers in [1, 2, 5] {
            let parallel = session
                .solve(&SolveRequest::default().workers(workers))
                .unwrap();
            let rules: Vec<String> = parallel.rules.iter().map(|r| r.to_string()).collect();
            assert_eq!(rules, serial_rules, "workers = {workers}");
            assert_eq!(parallel.summary, serial.summary);
            if parallel.n_grouping_patterns >= 2 {
                let stats = parallel.exec.as_ref().expect("parallel run has stats");
                assert_eq!(stats.workers, workers.min(stats.tasks));
                assert_eq!(
                    stats.tasks_per_worker.iter().sum::<usize>(),
                    parallel.n_grouping_patterns
                );
            }
        }
    }
}
