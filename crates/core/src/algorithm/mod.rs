//! The FairCap three-step algorithm (Algorithm 1).
//!
//! The pipeline lives on [`PrescriptionSession::solve`]; this module holds
//! the per-step implementations (`grouping`, `intervention`, `greedy`) and
//! the Step-2 fan-out across grouping patterns, which runs on the
//! work-stealing executor in [`crate::exec`].
//!
//! [`PrescriptionSession::solve`]: crate::session::PrescriptionSession::solve

pub mod greedy;
pub mod grouping;
pub mod intervention;

use crate::config::FairCapConfig;
use crate::exec::{self, ExecStats};
use crate::rule::Rule;
use faircap_causal::CateQuery;
use faircap_mining::MiningStats;
use faircap_obs::SpanHandle;
use faircap_table::{Mask, Pattern, ShardedLruCache};
use intervention::GroupEvaluation;
use std::sync::Arc;

/// Cache key for one group's phase-1 intervention evaluation (see
/// [`intervention::evaluate_group_interventions`]): everything that phase
/// depends on besides the session itself. Fairness, coverage, and cost
/// knobs are deliberately absent — that is what makes constraint-only
/// re-solves cache hits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InterventionKey {
    /// The grouping pattern (its coverage determines the lattice universe).
    group: Pattern,
    /// Estimator name (estimates differ per estimator).
    estimator: String,
    /// Lattice depth cap.
    max_len: usize,
    /// Significance level α (bit pattern, for `Eq`/`Hash`).
    alpha_bits: u64,
}

impl InterventionKey {
    /// Key for `group` under the request's phase-1 parameters.
    pub fn of(group: &Pattern, estimator: &str, config: &FairCapConfig) -> InterventionKey {
        InterventionKey {
            group: group.clone(),
            estimator: estimator.to_owned(),
            max_len: config.max_intervention_len,
            alpha_bits: config.alpha.to_bits(),
        }
    }
}

/// Session-held cache of phase-1 intervention evaluations.
pub type InterventionCache = ShardedLruCache<InterventionKey, Arc<GroupEvaluation>>;

/// Everything Step 2 produced: the candidate rules plus the work accounting
/// the solve report surfaces.
pub(crate) struct Step2Output {
    /// Candidate rules in group order (the greedy phase's input).
    pub rules: Vec<Rule>,
    /// Executor statistics; `None` for serial runs.
    pub exec: Option<ExecStats>,
    /// Lattice candidate pipeline, merged over groups actually evaluated
    /// this solve (cache hits contribute nothing — they did no work).
    pub lattice: MiningStats,
    /// Groups whose evaluation was served from the intervention cache.
    pub cache_hits: u64,
    /// Groups evaluated from scratch this solve.
    pub cache_misses: u64,
}

/// Step-2 fan-out: mine the top interventions of every grouping pattern,
/// in parallel when configured (§5.2 optimization (ii)).
///
/// Parallel runs use the work-stealing executor: grouping patterns become
/// task units claimed dynamically by `workers` threads (resolved via
/// [`exec::resolve_workers`]), so one slow pattern no longer stalls a
/// statically assigned chunk. Output order — and therefore the final
/// ruleset — is identical to the serial path; the returned [`ExecStats`]
/// (present only for parallel runs) reports how the schedule actually
/// balanced.
///
/// When `cache` is given, each group's phase-1 evaluation (lattice + CATE
/// estimation + sub-utilities) is looked up / stored under its
/// [`InterventionKey`], so constraint-only re-solves skip estimation
/// entirely and only re-run the cheap phase-2 arithmetic.
///
/// When `span` is given (a traced solve's Step-2 span), each cache hit
/// records an `intervention_cache_hit` point span and each evaluated group
/// records an `evaluate_group` span under which the engine's per-estimate
/// spans nest.
#[allow(clippy::too_many_arguments)] // internal fan-out entry point
pub(crate) fn mine_all_interventions(
    query: &CateQuery<'_>,
    groups: &[faircap_mining::FrequentPattern],
    protected_mask: &Mask,
    mutable: &[String],
    config: &FairCapConfig,
    workers: Option<usize>,
    cache: Option<(&InterventionCache, &str)>,
    span: Option<&SpanHandle>,
) -> Step2Output {
    type GroupResult = (Vec<Rule>, MiningStats, u64, u64);
    let k = config.interventions_per_group.max(1);
    let worker = |g: &faircap_mining::FrequentPattern| -> GroupResult {
        let key = cache.map(|(_, estimator)| InterventionKey::of(&g.pattern, estimator, config));
        if let (Some((cache, _)), Some(key)) = (cache, &key) {
            if let Some(hit) = cache.get(key) {
                if let Some(h) = span {
                    h.child("intervention_cache_hit").finish();
                }
                let rules = intervention::rules_from_evaluation(
                    &hit,
                    &g.pattern,
                    &g.support,
                    protected_mask,
                    config,
                    k,
                );
                return (rules, MiningStats::default(), 1, 0);
            }
        }
        let group_span = span.map(|h| h.child("evaluate_group"));
        let query = query
            .clone()
            .with_span(group_span.as_ref().map(|s| s.handle()));
        let (evaluation, stats) = intervention::evaluate_group_interventions(
            &query,
            &g.support,
            protected_mask,
            mutable,
            config.max_intervention_len,
            config.alpha,
        );
        drop(group_span);
        let rules = intervention::rules_from_evaluation(
            &evaluation,
            &g.pattern,
            &g.support,
            protected_mask,
            config,
            k,
        );
        if let (Some((cache, _)), Some(key)) = (cache, key) {
            cache.insert(key, Arc::new(evaluation));
            (rules, stats, 0, 1)
        } else {
            (rules, stats, 0, 0)
        }
    };
    let (per_group, exec): (Vec<GroupResult>, Option<ExecStats>) =
        if !config.parallel || groups.len() < 2 {
            (groups.iter().map(&worker).collect(), None)
        } else {
            let n_workers = exec::resolve_workers(workers);
            let (per_group, stats) =
                exec::run_work_stealing(groups.len(), n_workers, |i| worker(&groups[i]));
            (per_group, Some(stats))
        };
    let mut out = Step2Output {
        rules: Vec::new(),
        exec,
        lattice: MiningStats::default(),
        cache_hits: 0,
        cache_misses: 0,
    };
    for (rules, stats, hits, misses) in per_group {
        out.rules.extend(rules);
        out.lattice.merge(&stats);
        out.cache_hits += hits;
        out.cache_misses += misses;
    }
    out
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use crate::config::FairCapConfig;
    use crate::session::{FairCap, SolveRequest};
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_causal::Dag;
    use faircap_table::{DataFrame, Pattern, Value};

    fn fixture() -> (DataFrame, Dag, Vec<String>, Vec<String>, Pattern) {
        let scm = Scm::new()
            .categorical("segment", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "treat",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "outcome",
                &["segment", "grp", "treat"],
                Box::new(|row, rng| {
                    let mut v = 50.0;
                    if row.str("treat") == "yes" {
                        v += if row.str("grp") == "p" { 8.0 } else { 20.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 4.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 23).unwrap();
        let dag = scm.dag();
        (
            df,
            dag,
            vec!["segment".into(), "grp".into()],
            vec!["treat".into()],
            Pattern::of_eq(&[("grp", Value::from("p"))]),
        )
    }

    /// The work-stealing parallel fan-out must produce exactly the ruleset
    /// of a serial solve, at any worker count (the determinism contract
    /// that replaced the retired one-shot `run()` shim's compatibility
    /// test).
    #[test]
    fn serial_and_parallel_session_solves_agree() {
        let (df, dag, imm, mt, prot) = fixture();
        let session = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .immutable(imm)
            .mutable(mt)
            .protected(prot)
            .build()
            .unwrap();
        let mut serial_cfg = FairCapConfig::default();
        serial_cfg.parallel = false;
        let serial = session.solve(&SolveRequest::from(serial_cfg)).unwrap();
        assert!(serial.exec.is_none(), "serial solve reports no exec stats");
        let serial_rules: Vec<String> = serial.rules.iter().map(|r| r.to_string()).collect();
        for workers in [1, 2, 5] {
            let parallel = session
                .solve(&SolveRequest::default().workers(workers))
                .unwrap();
            let rules: Vec<String> = parallel.rules.iter().map(|r| r.to_string()).collect();
            assert_eq!(rules, serial_rules, "workers = {workers}");
            assert_eq!(parallel.summary, serial.summary);
            if parallel.n_grouping_patterns >= 2 {
                let stats = parallel.exec.as_ref().expect("parallel run has stats");
                assert_eq!(stats.workers, workers.min(stats.tasks));
                assert_eq!(
                    stats.tasks_per_worker.iter().sum::<usize>(),
                    parallel.n_grouping_patterns
                );
            }
        }
    }
}
