//! Step 2 (§5.2): mine the best (fairness-aware) intervention pattern for a
//! grouping pattern via positive-parent lattice traversal.
//!
//! The step is split in two phases so sessions can cache the expensive
//! half across constraint-only re-solves:
//!
//! 1. [`evaluate_group_interventions`] — items, lattice traversal, CATE
//!    estimation, and the protected / non-protected sub-utilities. The
//!    output ([`GroupEvaluation`]) depends only on the group's coverage,
//!    the estimator, the lattice depth, and the significance level α —
//!    **not** on the fairness/coverage constraints or the cost model.
//! 2. [`rules_from_evaluation`] — cost feasibility, fairness-penalized
//!    benefit, the individual-fairness filter, and the top-`k` truncation:
//!    pure arithmetic over phase 1's numbers, re-run cheaply per solve.

use crate::benefit::benefit;
use crate::config::FairCapConfig;
use crate::constraints::rule_satisfies_fairness;
use crate::rule::{Rule, RuleUtility};
use faircap_causal::CateQuery;
use faircap_mining::{positive_lattice_with_stats, single_attribute_items, MiningStats};
use faircap_table::{Mask, Pattern};

/// One evaluated intervention pattern of a group's positive lattice that
/// passed the significance gate: its overall CATE and the sub-coverage
/// utilities, everything later phases need that involves estimation.
#[derive(Debug, Clone)]
pub struct EvaluatedIntervention {
    /// The intervention pattern.
    pub pattern: Pattern,
    /// Overall CATE on the group (positive by construction).
    pub cate: f64,
    /// Significance of the overall CATE (≤ the α it was mined under).
    pub p_value: f64,
    /// Utility on the protected sub-coverage (Definition 4.4 conventions).
    pub u_protected: f64,
    /// Utility on the non-protected sub-coverage.
    pub u_non_protected: f64,
}

/// Phase-1 output for one grouping pattern: every positive, significant,
/// fully estimated intervention candidate. Fairness- and cost-independent,
/// hence cacheable on the session across constraint sweeps (keyed by group,
/// estimator, lattice depth, and α — see `core::session`).
#[derive(Debug, Clone, Default)]
pub struct GroupEvaluation {
    /// Evaluated candidates, in lattice traversal order.
    pub nodes: Vec<EvaluatedIntervention>,
}

/// Phase 1: evaluate one group's intervention lattice.
///
/// Runs the item enumeration, the positive-parent traversal scored by the
/// overall CATE, and — for every node passing `cate > 0 ∧ p ≤ alpha` — the
/// protected / non-protected sub-coverage utilities. Returns the evaluation
/// plus the lattice's [`MiningStats`].
pub fn evaluate_group_interventions(
    query: &CateQuery<'_>,
    coverage: &Mask,
    protected: &Mask,
    mutable: &[String],
    max_intervention_len: usize,
    alpha: f64,
) -> (GroupEvaluation, MiningStats) {
    let df = query.df();
    // Optimization (i): only attributes causally connected to the outcome.
    let causal_mutable: Vec<String> = mutable
        .iter()
        .filter(|a| query.affects_outcome(a))
        .cloned()
        .collect();
    if causal_mutable.is_empty() {
        return (GroupEvaluation::default(), MiningStats::default());
    }
    let Ok(items) = single_attribute_items(df, &causal_mutable, coverage, 24) else {
        return (GroupEvaluation::default(), MiningStats::default());
    };
    // Drop items without a usable contrast inside the group (everything /
    // nothing treated) before paying for a regression.
    let n_cov = coverage.count();
    let items: Vec<_> = items
        .into_iter()
        .filter(|(_, m)| {
            let treated = m.intersect_count(coverage);
            treated >= faircap_causal::estimate::MIN_ARM_SIZE
                && n_cov - treated >= faircap_causal::estimate::MIN_ARM_SIZE
        })
        .collect();

    // Lattice traversal scored by overall CATE.
    let (nodes, stats) = positive_lattice_with_stats(
        &items,
        max_intervention_len,
        |pattern, _mask| query.cate(coverage, pattern),
        |est| est.cate > 0.0,
    );

    let coverage_p = coverage & protected;
    let coverage_np = coverage.andnot(protected);
    let mut evaluated = Vec::new();
    for node in nodes {
        let est = node.score;
        if est.cate <= 0.0 || est.p_value > alpha {
            continue;
        }
        // Utilities for the protected / non-protected sub-coverages
        // (Definition 4.4: 0 when the sub-coverage is empty; when it is
        // non-empty but too small to estimate, the overall CATE is the best
        // available prediction for those rows — see DESIGN.md).
        let u_p = subgroup_utility(query, &coverage_p, &node.pattern, est.cate);
        let u_np = subgroup_utility(query, &coverage_np, &node.pattern, est.cate);
        evaluated.push(EvaluatedIntervention {
            pattern: node.pattern,
            cate: est.cate,
            p_value: est.p_value,
            u_protected: u_p,
            u_non_protected: u_np,
        });
    }
    (GroupEvaluation { nodes: evaluated }, stats)
}

/// Phase 2: turn a [`GroupEvaluation`] into the group's top-`k` rules under
/// the request's constraints and cost model. No estimation happens here.
pub fn rules_from_evaluation(
    evaluation: &GroupEvaluation,
    grouping: &Pattern,
    coverage: &Mask,
    protected: &Mask,
    config: &FairCapConfig,
    k: usize,
) -> Vec<Rule> {
    if k == 0 || evaluation.nodes.is_empty() {
        return Vec::new();
    }
    let coverage_p = coverage & protected;
    let mut candidates: Vec<Rule> = Vec::new();
    for node in &evaluation.nodes {
        // §8 extension: infeasible (over-budget) interventions are skipped.
        let cost = config.cost_model.pattern_cost(&node.pattern);
        if !config.cost_policy.is_feasible(cost) {
            continue;
        }
        let utility = RuleUtility {
            overall: node.cate,
            protected: node.u_protected,
            non_protected: node.u_non_protected,
            p_value: node.p_value,
        };
        let rule = Rule {
            grouping: grouping.clone(),
            intervention: node.pattern.clone(),
            coverage: coverage.clone(),
            coverage_protected: coverage_p.clone(),
            utility,
            benefit: config
                .cost_policy
                .adjust_benefit(benefit(&utility, &config.fairness), cost),
        };
        if !rule_satisfies_fairness(&rule, &config.fairness) {
            continue;
        }
        candidates.push(rule);
    }
    candidates.sort_by(|a, b| {
        b.benefit
            .total_cmp(&a.benefit)
            .then_with(|| a.intervention.cmp(&b.intervention))
    });
    candidates.truncate(k);
    candidates
}

/// Mine the best intervention for one grouping pattern.
///
/// * Items come from the mutable attributes that have a causal path to the
///   outcome (§5.2 optimization (i)), with values from the active domain
///   inside the group's coverage.
/// * The lattice is expanded only below treatments with positive overall
///   CATE (§5.2's materialization rule).
/// * Every positive, statistically significant node becomes a candidate;
///   its protected / non-protected utilities are then estimated and the
///   node with the highest fairness-penalized [`benefit`] that satisfies
///   any individual-scope fairness constraint wins.
///
/// Returns `None` when no estimable positive treatment exists.
pub fn mine_intervention(
    query: &CateQuery<'_>,
    grouping: &Pattern,
    coverage: &Mask,
    protected: &Mask,
    mutable: &[String],
    config: &FairCapConfig,
) -> Option<Rule> {
    mine_top_interventions(query, grouping, coverage, protected, mutable, config, 1)
        .into_iter()
        .next()
}

/// Mine the `k` best interventions for one grouping pattern, ordered by
/// descending benefit (ties broken by pattern order).
///
/// The paper's Algorithm 1 keeps only the single best treatment per group
/// (`k = 1`); larger `k` hands the greedy phase a richer candidate pool at
/// extra estimation cost — exposed as the `interventions_per_group` knob
/// and evaluated by the `ablation_lattice` bench.
pub fn mine_top_interventions(
    query: &CateQuery<'_>,
    grouping: &Pattern,
    coverage: &Mask,
    protected: &Mask,
    mutable: &[String],
    config: &FairCapConfig,
    k: usize,
) -> Vec<Rule> {
    if k == 0 {
        return Vec::new();
    }
    let (evaluation, _) = evaluate_group_interventions(
        query,
        coverage,
        protected,
        mutable,
        config.max_intervention_len,
        config.alpha,
    );
    rules_from_evaluation(&evaluation, grouping, coverage, protected, config, k)
}

/// Utility of an intervention on a sub-coverage: the estimated CATE when
/// available, the paper's 0 convention for an empty sub-coverage, and the
/// overall CATE as the fallback prediction for a non-empty sub-coverage
/// that is too small to estimate on its own.
pub fn subgroup_utility(
    query: &CateQuery<'_>,
    sub_coverage: &Mask,
    intervention: &Pattern,
    overall: f64,
) -> f64 {
    if sub_coverage.none() {
        return 0.0;
    }
    query
        .cate(sub_coverage, intervention)
        .map(|e| e.cate)
        .unwrap_or(overall)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;
    use crate::config::{FairnessConstraint, FairnessScope};
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_causal::{CateEngine, Dag, EstimatorKind};
    use faircap_table::{DataFrame, Value};
    use std::sync::Arc;

    /// Two binary treatments: `big` has a large but unfair effect
    /// (+30 non-protected / +6 protected), `fair` a smaller parity effect
    /// (+12 / +11). Group = everyone.
    fn fixture() -> (Arc<DataFrame>, Arc<Dag>, Mask) {
        let scm = Scm::new()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "big",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "fair",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "outcome",
                &["grp", "big", "fair"],
                Box::new(|row, rng| {
                    let p = row.str("grp") == "p";
                    let mut v = 50.0;
                    if row.str("big") == "yes" {
                        v += if p { 6.0 } else { 30.0 };
                    }
                    if row.str("fair") == "yes" {
                        v += if p { 11.0 } else { 12.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 4.0))
                }),
            )
            .unwrap();
        let df = Arc::new(scm.sample(6000, 17).unwrap());
        let dag = Arc::new(scm.dag());
        let protected = Pattern::of_eq(&[("grp", Value::from("p"))])
            .coverage(&df)
            .unwrap();
        (df, dag, protected)
    }

    fn mutables() -> Vec<String> {
        vec!["big".into(), "fair".into()]
    }

    #[test]
    fn unconstrained_picks_highest_cate() {
        let (df, dag, protected) = fixture();
        let engine = CateEngine::new(df.clone(), dag, "outcome").unwrap();
        let query = engine.with_estimator(&EstimatorKind::Linear);
        let cfg = FairCapConfig::default();
        let all = Mask::ones(df.n_rows());
        let rule = mine_intervention(
            &query,
            &Pattern::empty(),
            &all,
            &protected,
            &mutables(),
            &cfg,
        )
        .expect("should find a treatment");
        assert!(
            rule.intervention.to_string().contains("big"),
            "unconstrained should pick the big treatment, got {}",
            rule.intervention
        );
        assert!(rule.utility.overall > 15.0);
    }

    #[test]
    fn sp_constraint_redirects_to_fair_treatment() {
        let (df, dag, protected) = fixture();
        let engine = CateEngine::new(df.clone(), dag, "outcome").unwrap();
        let query = engine.with_estimator(&EstimatorKind::Linear);
        let mut cfg = FairCapConfig::default();
        cfg.fairness = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 5.0,
        };
        let all = Mask::ones(df.n_rows());
        let rule = mine_intervention(
            &query,
            &Pattern::empty(),
            &all,
            &protected,
            &mutables(),
            &cfg,
        )
        .expect("should find a treatment");
        assert!(
            rule.intervention.to_string().starts_with("fair"),
            "SP benefit should pick the parity treatment, got {}",
            rule.intervention
        );
        // and its utilities are near parity
        assert!(rule.utility.gap() < 4.0, "gap {}", rule.utility.gap());
    }

    #[test]
    fn individual_sp_filters_unfair_candidates() {
        let (df, dag, protected) = fixture();
        let engine = CateEngine::new(df.clone(), dag, "outcome").unwrap();
        let query = engine.with_estimator(&EstimatorKind::Linear);
        let mut cfg = FairCapConfig::default();
        cfg.fairness = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon: 4.0,
        };
        let all = Mask::ones(df.n_rows());
        let rule = mine_intervention(
            &query,
            &Pattern::empty(),
            &all,
            &protected,
            &mutables(),
            &cfg,
        )
        .expect("the fair treatment satisfies ε=4");
        assert!(rule.utility.gap() <= 4.0);
        assert!(rule.intervention.to_string().starts_with("fair"));
    }

    #[test]
    fn top_k_returns_ordered_distinct_interventions() {
        let (df, dag, protected) = fixture();
        let engine = CateEngine::new(df.clone(), dag, "outcome").unwrap();
        let query = engine.with_estimator(&EstimatorKind::Linear);
        let cfg = FairCapConfig::default();
        let all = Mask::ones(df.n_rows());
        let rules = mine_top_interventions(
            &query,
            &Pattern::empty(),
            &all,
            &protected,
            &mutables(),
            &cfg,
            3,
        );
        assert!(rules.len() >= 2, "both treatments are positive");
        // descending benefit, distinct patterns
        for w in rules.windows(2) {
            assert!(w[0].benefit >= w[1].benefit);
            assert_ne!(w[0].intervention, w[1].intervention);
        }
        // k = 1 equals the single-best wrapper
        let single = mine_intervention(
            &query,
            &Pattern::empty(),
            &all,
            &protected,
            &mutables(),
            &cfg,
        )
        .unwrap();
        assert_eq!(single.intervention, rules[0].intervention);
    }

    #[test]
    fn no_causal_mutables_yields_none() {
        let (df, dag, protected) = fixture();
        let engine = CateEngine::new(df.clone(), dag, "outcome").unwrap();
        let query = engine.with_estimator(&EstimatorKind::Linear);
        let cfg = FairCapConfig::default();
        let all = Mask::ones(df.n_rows());
        // "grp" is immutable here, but pretend it's the only mutable: it has
        // a path to outcome, so use a truly disconnected name instead.
        let rule = mine_intervention(
            &query,
            &Pattern::empty(),
            &all,
            &protected,
            &["nonexistent".into()],
            &cfg,
        );
        assert!(rule.is_none());
    }

    #[test]
    fn small_group_without_contrast_yields_none() {
        let (df, dag, protected) = fixture();
        let engine = CateEngine::new(df.clone(), dag, "outcome").unwrap();
        let query = engine.with_estimator(&EstimatorKind::Linear);
        let cfg = FairCapConfig::default();
        // a 6-row group: too small for both arms of any treatment
        let tiny = Mask::from_indices(df.n_rows(), &[0, 1, 2, 3, 4, 5]);
        let rule = mine_intervention(
            &query,
            &Pattern::empty(),
            &tiny,
            &protected,
            &mutables(),
            &cfg,
        );
        assert!(rule.is_none());
    }
}
