//! Step 3 (§5.3): greedy selection of the final ruleset.
//!
//! At each iteration the rule maximizing
//! `score = coverage-gain (while unmet) + benefit/U + ΔExpUtility/U`
//! is added, where `U` normalizes utilities to the best candidate's scale so
//! the three terms are commensurable. Group-scope constraints are enforced
//! as validity: a rule whose addition would violate group SP / BGL is
//! skipped. The loop stops when the best marginal score drops below the
//! configured threshold (once coverage is satisfied), when `max_rules` is
//! hit, or when no candidate remains.
//!
//! # Lazy evaluation (CELF)
//!
//! [`greedy_select`] runs the loop lazily, CELF-style (Leskovec et al.
//! 2007): every candidate's score from a previous iteration is an **upper
//! bound** on its current score, so candidates sit in a max-heap under
//! their stale scores and only the top is re-evaluated until a candidate's
//! fresh score still tops the heap. The bound holds term by term:
//!
//! * the coverage term only shrinks — rows never become uncovered, so a
//!   candidate's newly-covered count is non-increasing, and the whole term
//!   drops (it is non-negative) once coverage is met, which is permanent;
//! * the `ΔExpUtility` term only shrinks — each covered row contributes
//!   `max(0, u − best[row])` and `best[row]` is non-decreasing;
//! * the `benefit` tie-break term is constant.
//!
//! Group-scope *validity* is not monotone, so candidates failing the
//! fairness preview are merely set aside for the round (with their fresh
//! score, still an upper bound) and retried in later rounds. Ties resolve
//! to the lowest candidate index, exactly like the eager scan's strict
//! `>` comparison — selections are **bit-identical** to
//! [`reference::greedy_select`], the retained eager oracle (property-tested
//! in `tests/prop_greedy_celf.rs`).

use crate::config::FairCapConfig;
use crate::constraints::{
    rule_satisfies_coverage, rule_satisfies_fairness, summary_satisfies_coverage,
    summary_satisfies_fairness,
};
use crate::rule::Rule;
use crate::utility::RulesetUtility;
use faircap_table::Mask;
use std::collections::BinaryHeap;

/// Result of the greedy phase.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// Selected rules, in selection order.
    pub selected: Vec<Rule>,
    /// Utility summary of the selected set.
    pub summary: RulesetUtility,
    /// Whether all constraints hold for the final set.
    pub constraints_met: bool,
}

/// Work accounting of one lazy-greedy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyStats {
    /// Candidate score evaluations performed (the eager loop performs
    /// `rounds × remaining-candidates` of these).
    pub evaluations: u64,
    /// Evaluations beyond each candidate's first — stale heap entries that
    /// had to be refreshed before a selection could be certified.
    pub reevaluations: u64,
    /// Selection rounds run (including the final round that only proved
    /// the stopping condition).
    pub rounds: u64,
}

/// Incrementally maintained Eq. 5–7 state for the selected ruleset, with
/// O(|coverage(r)|) candidate previews instead of full recomputation.
struct RulesetState<'a> {
    protected: &'a Mask,
    n_rows: usize,
    n_protected: usize,
    /// Per-row best overall utility (NEG_INFINITY = uncovered).
    best: Vec<f64>,
    /// Per-row worst protected utility (INFINITY = uncovered).
    worst: Vec<f64>,
    sum_best_protected: f64,
    sum_best_non_protected: f64,
    sum_worst_protected: f64,
    n_cov_protected: usize,
    n_cov_non_protected: usize,
}

impl<'a> RulesetState<'a> {
    fn new(n_rows: usize, protected: &'a Mask) -> Self {
        RulesetState {
            protected,
            n_rows,
            n_protected: protected.count(),
            best: vec![f64::NEG_INFINITY; n_rows],
            worst: vec![f64::INFINITY; n_rows],
            sum_best_protected: 0.0,
            sum_best_non_protected: 0.0,
            sum_worst_protected: 0.0,
            n_cov_protected: 0,
            n_cov_non_protected: 0,
        }
    }

    fn summary_from(
        &self,
        sum_best_p: f64,
        sum_best_np: f64,
        sum_worst_p: f64,
        n_cov_p: usize,
        n_cov_np: usize,
    ) -> RulesetUtility {
        let expected = (sum_best_p + sum_best_np) / self.n_rows.max(1) as f64;
        let expected_protected = if n_cov_p > 0 {
            sum_worst_p / n_cov_p as f64
        } else {
            0.0
        };
        let expected_non_protected = if n_cov_np > 0 {
            sum_best_np / n_cov_np as f64
        } else {
            0.0
        };
        RulesetUtility {
            expected,
            expected_protected,
            expected_non_protected,
            coverage: (n_cov_p + n_cov_np) as f64 / self.n_rows.max(1) as f64,
            coverage_protected: if self.n_protected > 0 {
                n_cov_p as f64 / self.n_protected as f64
            } else {
                0.0
            },
            unfairness: expected_non_protected - expected_protected,
        }
    }

    /// Current summary.
    fn summary(&self) -> RulesetUtility {
        self.summary_from(
            self.sum_best_protected,
            self.sum_best_non_protected,
            self.sum_worst_protected,
            self.n_cov_protected,
            self.n_cov_non_protected,
        )
    }

    /// Summary if `rule` were added, without mutating state.
    fn preview(&self, rule: &Rule) -> RulesetUtility {
        let (d_bp, d_bnp, d_wp, d_cp, d_cnp) = self.deltas(rule);
        self.summary_from(
            self.sum_best_protected + d_bp,
            self.sum_best_non_protected + d_bnp,
            self.sum_worst_protected + d_wp,
            self.n_cov_protected + d_cp,
            self.n_cov_non_protected + d_cnp,
        )
    }

    /// Add `rule` to the state.
    fn commit(&mut self, rule: &Rule) {
        let u = rule.utility.overall;
        let up = rule.utility.protected;
        for i in rule.coverage.iter_ones() {
            let is_p = self.protected.get(i);
            if self.best[i] == f64::NEG_INFINITY {
                // newly covered
                if is_p {
                    self.n_cov_protected += 1;
                    self.sum_best_protected += u;
                } else {
                    self.n_cov_non_protected += 1;
                    self.sum_best_non_protected += u;
                }
                self.best[i] = u;
            } else if u > self.best[i] {
                let delta = u - self.best[i];
                if is_p {
                    self.sum_best_protected += delta;
                } else {
                    self.sum_best_non_protected += delta;
                }
                self.best[i] = u;
            }
        }
        for i in rule.coverage_protected.iter_ones() {
            if self.worst[i] == f64::INFINITY {
                self.worst[i] = up;
                self.sum_worst_protected += up;
            } else if up < self.worst[i] {
                self.sum_worst_protected += up - self.worst[i];
                self.worst[i] = up;
            }
        }
    }

    /// Aggregate deltas from adding `rule` (same walk as [`commit`], no
    /// mutation).
    fn deltas(&self, rule: &Rule) -> (f64, f64, f64, usize, usize) {
        let u = rule.utility.overall;
        let up = rule.utility.protected;
        let (mut d_bp, mut d_bnp, mut d_wp) = (0.0, 0.0, 0.0);
        let (mut d_cp, mut d_cnp) = (0usize, 0usize);
        for i in rule.coverage.iter_ones() {
            let is_p = self.protected.get(i);
            if self.best[i] == f64::NEG_INFINITY {
                if is_p {
                    d_cp += 1;
                    d_bp += u;
                } else {
                    d_cnp += 1;
                    d_bnp += u;
                }
            } else if u > self.best[i] {
                if is_p {
                    d_bp += u - self.best[i];
                } else {
                    d_bnp += u - self.best[i];
                }
            }
        }
        for i in rule.coverage_protected.iter_ones() {
            if self.worst[i] == f64::INFINITY {
                d_wp += up;
            } else if up < self.worst[i] {
                d_wp += up - self.worst[i];
            }
        }
        (d_bp, d_bnp, d_wp, d_cp, d_cnp)
    }
}

/// Pre-filter and order the candidate pool, and compute the utility
/// normalizer — shared verbatim by the lazy and reference selectors so both
/// see the same indices and floating-point inputs.
fn prepare(
    mut candidates: Vec<Rule>,
    config: &FairCapConfig,
    n_rows: usize,
    n_protected: usize,
) -> (Vec<Rule>, f64) {
    // Matroid-style pre-filters: individual fairness + rule coverage +
    // positive utility (Definition 4.4's "discard rules with negative
    // utility").
    candidates.retain(|r| {
        r.utility.overall > 0.0
            && rule_satisfies_fairness(r, &config.fairness)
            && rule_satisfies_coverage(r, &config.coverage, n_rows, n_protected)
    });
    // Deterministic processing order.
    candidates.sort_by(|a, b| (&a.grouping, &a.intervention).cmp(&(&b.grouping, &b.intervention)));

    let u_norm = candidates
        .iter()
        .map(|r| r.utility.overall)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    (candidates, u_norm)
}

/// Marginal score of adding `rule` to `state`, plus the previewed summary —
/// one shared implementation so lazy and eager selection are bit-identical.
fn score_candidate(
    state: &RulesetState<'_>,
    current: &RulesetUtility,
    coverage_unmet: bool,
    rule: &Rule,
    config: &FairCapConfig,
    u_norm: f64,
) -> (f64, RulesetUtility) {
    let preview = state.preview(rule);
    let mut score = 0.0;
    if coverage_unmet {
        score += (preview.coverage - current.coverage)
            + (preview.coverage_protected - current.coverage_protected);
    }
    score += config.lambda_utility * (preview.expected - current.expected) / u_norm;
    score += rule.benefit / u_norm * 0.1; // quality tie-break term
    (score, preview)
}

/// Final validity check and outcome assembly shared by both selectors.
fn finish(
    state: &RulesetState<'_>,
    selected: Vec<Rule>,
    config: &FairCapConfig,
    n_rows: usize,
    n_protected: usize,
) -> GreedyOutcome {
    let summary = state.summary();
    let refs: Vec<&Rule> = selected.iter().collect();
    let constraints_met = crate::constraints::solution_is_valid(
        &refs,
        &summary,
        &config.fairness,
        &config.coverage,
        n_rows,
        n_protected,
    );
    GreedyOutcome {
        selected,
        summary,
        constraints_met,
    }
}

/// A heap entry: a candidate under its most recent score. Ordered by
/// `(score, lowest index first)` so the heap top reproduces the eager
/// scan's strict-`>` winner (first index among score ties).
struct HeapEntry {
    score: f64,
    idx: usize,
    /// Round the score was computed in; `u64::MAX` = never evaluated.
    round: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Run the greedy selection over candidate rules (lazy / CELF evaluation;
/// selections bit-identical to [`reference::greedy_select`]).
pub fn greedy_select(
    candidates: Vec<Rule>,
    config: &FairCapConfig,
    n_rows: usize,
    protected: &Mask,
) -> GreedyOutcome {
    greedy_select_with_stats(candidates, config, n_rows, protected).0
}

/// [`greedy_select`] plus the [`GreedyStats`] work counters.
pub fn greedy_select_with_stats(
    candidates: Vec<Rule>,
    config: &FairCapConfig,
    n_rows: usize,
    protected: &Mask,
) -> (GreedyOutcome, GreedyStats) {
    let n_protected = protected.count();
    let (candidates, u_norm) = prepare(candidates, config, n_rows, n_protected);

    let mut state = RulesetState::new(n_rows, protected);
    let mut selected: Vec<Rule> = Vec::new();
    let mut stats = GreedyStats::default();

    // Everything starts stale at +∞ so the first round evaluates on demand.
    let mut heap: BinaryHeap<HeapEntry> = (0..candidates.len())
        .map(|idx| HeapEntry {
            score: f64::INFINITY,
            idx,
            round: u64::MAX,
        })
        .collect();

    let mut round: u64 = 0;
    while selected.len() < config.max_rules && !heap.is_empty() {
        stats.rounds += 1;
        let current = state.summary();
        let coverage_unmet = !summary_satisfies_coverage(&current, &config.coverage);
        // Fairness-invalid candidates are parked here for the round —
        // validity is not monotone, so they get retried in later rounds
        // (their fresh score is still a valid upper bound).
        let mut parked: Vec<HeapEntry> = Vec::new();
        let mut chosen: Option<HeapEntry> = None;
        while let Some(mut top) = heap.pop() {
            if top.round == round {
                // Fresh and fairness-valid: every other entry's cached score
                // is an upper bound ≤ this key, so this is the exact argmax.
                chosen = Some(top);
                break;
            }
            let (score, preview) = score_candidate(
                &state,
                &current,
                coverage_unmet,
                &candidates[top.idx],
                config,
                u_norm,
            );
            stats.evaluations += 1;
            if top.round != u64::MAX {
                stats.reevaluations += 1;
            }
            top.score = score;
            top.round = round;
            // Group-scope fairness is enforced invariantly: every
            // intermediate set (hence the final one) must satisfy it, using
            // exactly the same predicate as the final validity check.
            if summary_satisfies_fairness(&preview, &config.fairness) {
                heap.push(top);
            } else {
                parked.push(top);
            }
        }
        heap.extend(parked);
        let Some(top) = chosen else {
            break; // no valid candidate remains
        };
        // Stop when the marginal gain is negligible — unless coverage
        // constraints still need rules.
        if !coverage_unmet && top.score < config.min_marginal_gain {
            break;
        }
        state.commit(&candidates[top.idx]);
        selected.push(candidates[top.idx].clone());
        round += 1;
    }

    (finish(&state, selected, config, n_rows, n_protected), stats)
}

/// The eager selection loop, kept verbatim as the correctness oracle for
/// the lazy selector: it rescans every unused candidate each round.
/// `tests/prop_greedy_celf.rs` asserts [`greedy_select`] reproduces its
/// selections (order included) on arbitrary pools and constraint mixes.
pub mod reference {
    use super::*;

    /// Run the eager greedy selection over candidate rules.
    pub fn greedy_select(
        candidates: Vec<Rule>,
        config: &FairCapConfig,
        n_rows: usize,
        protected: &Mask,
    ) -> GreedyOutcome {
        let n_protected = protected.count();
        let (candidates, u_norm) = prepare(candidates, config, n_rows, n_protected);

        let mut state = RulesetState::new(n_rows, protected);
        let mut selected: Vec<Rule> = Vec::new();
        let mut used = vec![false; candidates.len()];

        while selected.len() < config.max_rules {
            let current = state.summary();
            let coverage_unmet = !summary_satisfies_coverage(&current, &config.coverage);
            let mut best_idx: Option<usize> = None;
            let mut best_score = f64::NEG_INFINITY;
            for (idx, rule) in candidates.iter().enumerate() {
                if used[idx] {
                    continue;
                }
                let (score, preview) =
                    score_candidate(&state, &current, coverage_unmet, rule, config, u_norm);
                if !summary_satisfies_fairness(&preview, &config.fairness) {
                    continue;
                }
                if score > best_score {
                    best_score = score;
                    best_idx = Some(idx);
                }
            }
            let Some(idx) = best_idx else {
                break; // no valid candidate remains
            };
            if !coverage_unmet && best_score < config.min_marginal_gain {
                break;
            }
            state.commit(&candidates[idx]);
            used[idx] = true;
            selected.push(candidates[idx].clone());
        }

        finish(&state, selected, config, n_rows, n_protected)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;
    use crate::config::{CoverageConstraint, FairnessConstraint, FairnessScope};
    use crate::rule::RuleUtility;
    use crate::utility::ruleset_utility;
    use faircap_table::Pattern;

    fn rule(tag: &str, cov: &[usize], cov_p: &[usize], overall: f64, prot: f64, np: f64) -> Rule {
        Rule {
            grouping: Pattern::of_eq(&[("g", tag.into())]),
            intervention: Pattern::of_eq(&[("t", tag.into())]),
            coverage: Mask::from_indices(20, cov),
            coverage_protected: Mask::from_indices(20, cov_p),
            utility: RuleUtility {
                overall,
                protected: prot,
                non_protected: np,
                p_value: 0.001,
            },
            benefit: overall,
        }
    }

    /// rows 0..5 protected.
    fn protected() -> Mask {
        Mask::from_indices(20, &[0, 1, 2, 3, 4])
    }

    #[test]
    fn incremental_state_matches_batch_computation() {
        let p = protected();
        let rules = vec![
            rule("a", &[0, 1, 5, 6, 7], &[0, 1], 10.0, 4.0, 12.0),
            rule("b", &[1, 2, 7, 8], &[1, 2], 20.0, 9.0, 22.0),
            rule("c", &[3, 9, 10, 11], &[3], 5.0, 5.0, 5.0),
        ];
        let mut state = RulesetState::new(20, &p);
        for r in &rules {
            // preview must equal committing on a copy
            let preview = state.preview(r);
            state.commit(r);
            let direct = state.summary();
            assert!((preview.expected - direct.expected).abs() < 1e-12);
            assert!((preview.expected_protected - direct.expected_protected).abs() < 1e-12);
            assert!((preview.coverage - direct.coverage).abs() < 1e-12);
        }
        // final state must equal the batch Eq. 5–7 computation
        let refs: Vec<&Rule> = rules.iter().collect();
        let batch = ruleset_utility(&refs, 20, &p);
        let inc = state.summary();
        assert!((batch.expected - inc.expected).abs() < 1e-12);
        assert!((batch.expected_protected - inc.expected_protected).abs() < 1e-12);
        assert!((batch.expected_non_protected - inc.expected_non_protected).abs() < 1e-12);
        assert!((batch.coverage - inc.coverage).abs() < 1e-12);
        assert!((batch.unfairness - inc.unfairness).abs() < 1e-12);
    }

    #[test]
    fn greedy_prefers_high_utility() {
        let cfg = FairCapConfig::default();
        let candidates = vec![
            rule("low", &[0, 1, 5, 6], &[0, 1], 2.0, 2.0, 2.0),
            rule("high", &[2, 3, 7, 8], &[2, 3], 50.0, 45.0, 52.0),
        ];
        let out = greedy_select(candidates, &cfg, 20, &protected());
        assert!(!out.selected.is_empty());
        assert_eq!(out.selected[0].grouping.to_string(), "g = high");
    }

    #[test]
    fn negative_utility_rules_dropped() {
        let cfg = FairCapConfig::default();
        let candidates = vec![rule("neg", &[0, 1, 5], &[0], -3.0, -3.0, -3.0)];
        let out = greedy_select(candidates, &cfg, 20, &protected());
        assert!(out.selected.is_empty());
    }

    #[test]
    fn group_coverage_forces_more_rules() {
        let mut cfg = FairCapConfig::default();
        cfg.min_marginal_gain = 10.0; // would stop immediately without coverage pressure
        cfg.coverage = CoverageConstraint::Group {
            theta: 0.5,
            theta_protected: 0.0,
        };
        let candidates = vec![
            rule(
                "a",
                &(0..6).collect::<Vec<_>>(),
                &[0, 1, 2],
                10.0,
                10.0,
                10.0,
            ),
            rule("b", &(6..12).collect::<Vec<_>>(), &[], 9.0, 0.0, 9.0),
            rule("c", &(12..18).collect::<Vec<_>>(), &[], 8.0, 0.0, 8.0),
        ];
        let out = greedy_select(candidates, &cfg, 20, &protected());
        // needs ≥ 10 of 20 rows covered → at least two rules
        assert!(out.selected.len() >= 2, "selected {}", out.selected.len());
        assert!(out.summary.coverage >= 0.5);
        assert!(out.constraints_met);
    }

    #[test]
    fn group_sp_blocks_unfair_additions() {
        let mut cfg = FairCapConfig::default();
        cfg.fairness = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 3.0,
        };
        let candidates = vec![
            // fair rule
            rule("fair", &[0, 1, 5, 6], &[0, 1], 10.0, 9.0, 11.0),
            // very unfair rule on disjoint rows — would blow the ruleset gap
            rule("unfair", &[2, 3, 8, 9], &[2, 3], 40.0, 5.0, 42.0),
        ];
        let out = greedy_select(candidates, &cfg, 20, &protected());
        assert!(out.constraints_met);
        assert!(
            (out.summary.expected_non_protected - out.summary.expected_protected).abs() <= 3.0,
            "unfairness {} must be ≤ ε",
            out.summary.unfairness
        );
        assert!(out
            .selected
            .iter()
            .all(|r| r.grouping.to_string() != "g = unfair"));
    }

    #[test]
    fn group_bgl_enforced() {
        let mut cfg = FairCapConfig::default();
        cfg.fairness = FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 8.0,
        };
        let candidates = vec![
            rule("good", &[0, 1, 5, 6], &[0, 1], 12.0, 9.0, 13.0),
            // protected utility 2 < τ — adding it would sink ExpUtility_p
            rule("bad", &[0, 1, 2, 7], &[0, 1, 2], 30.0, 2.0, 33.0),
        ];
        let out = greedy_select(candidates, &cfg, 20, &protected());
        assert!(out.summary.expected_protected >= 8.0);
        assert!(out
            .selected
            .iter()
            .all(|r| r.grouping.to_string() != "g = bad"));
    }

    #[test]
    fn max_rules_cap_respected() {
        let mut cfg = FairCapConfig::default();
        cfg.max_rules = 2;
        cfg.min_marginal_gain = 0.0;
        let candidates: Vec<Rule> = (0..5)
            .map(|i| {
                rule(
                    &format!("r{i}"),
                    &[i, i + 5, i + 10],
                    &[i],
                    10.0 + i as f64,
                    10.0,
                    10.0,
                )
            })
            .collect();
        let out = greedy_select(candidates, &cfg, 20, &protected());
        assert_eq!(out.selected.len(), 2);
    }

    #[test]
    fn deterministic_selection() {
        let cfg = FairCapConfig::default();
        let mk = || {
            vec![
                rule("a", &[0, 5, 6], &[0], 10.0, 10.0, 10.0),
                rule("b", &[1, 7, 8], &[1], 10.0, 10.0, 10.0),
                rule("c", &[2, 9, 10], &[2], 10.0, 10.0, 10.0),
            ]
        };
        let o1 = greedy_select(mk(), &cfg, 20, &protected());
        let o2 = greedy_select(mk(), &cfg, 20, &protected());
        let s1: Vec<String> = o1.selected.iter().map(|r| r.to_string()).collect();
        let s2: Vec<String> = o2.selected.iter().map(|r| r.to_string()).collect();
        assert_eq!(s1, s2);
    }
}
