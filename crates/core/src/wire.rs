//! JSON wire format for the serving front end: parse a [`SolveRequest`]
//! from a JSON body and render a [`SolutionReport`] as a JSON document.
//!
//! The build environment is offline, so instead of `serde_json` this module
//! carries a deliberately small JSON kernel: a [`Json`] value tree, a
//! recursive-descent [`Json::parse`], and a [`Json::render`] writer. Two
//! properties matter for the serving layer and are tested here:
//!
//! * **Floats round-trip exactly.** Finite `f64`s are rendered with Rust's
//!   shortest-round-trip formatting and parsed back with `str::parse`,
//!   which recovers the identical bit pattern — so a ruleset served over
//!   HTTP is *bit-identical* to one returned by a direct
//!   [`PrescriptionSession::solve`] call (asserted in
//!   `tests/integration_serve.rs`). Non-finite floats render as `null`
//!   (JSON has no `Infinity`/`NaN`).
//! * **Requests are strict.** [`solve_request_from_json`] rejects unknown
//!   keys, wrong types, and malformed constraint objects with
//!   [`Error::InvalidRequest`], so a typo'd knob is a 400, not a silently
//!   ignored field.
//!
//! [`PrescriptionSession::solve`]: crate::session::PrescriptionSession::solve

use crate::config::{CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope};
use crate::error::{Error, Result};
use crate::exec::ExecStats;
use crate::report::SolutionReport;
use crate::session::SolveRequest;
use faircap_causal::{Estimator as _, EstimatorKind};
use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order (a `Vec`, not a map) so
/// rendered documents are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a `.`-separated path of object keys
    /// (`"sessions.german.estimate_cache.hits"`); `None` as soon as a
    /// segment is missing or the walk hits a non-object. Convenient for
    /// picking counters out of deep documents like `/v1/metrics`.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut current = self;
        for segment in path.split('.') {
            current = current.get(segment)?;
        }
        Some(current)
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Rejects trailing content, unterminated
    /// structures, and nesting deeper than 64 levels (stack safety on
    /// untrusted network input).
    pub fn parse(text: &str) -> std::result::Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Render as compact JSON. Finite numbers use Rust's shortest
    /// round-trip `f64` formatting (integral values print without `.0`, as
    /// `{}` already does for e.g. `3.0` → `3`); NaN and infinities render
    /// as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> std::result::Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(format!("unexpected byte at {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling: a high surrogate must
                            // be followed by a \u escape that actually is a
                            // low surrogate, else the document is rejected.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&low) {
                                        let combined =
                                            0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| format!("bad \\u escape near {}", self.pos))?);
                        }
                        other => return Err(format!("bad escape `\\{}`", char::from(other))),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> std::result::Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(cp)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn bad(msg: impl Into<String>) -> Error {
    Error::InvalidRequest(msg.into())
}

/// Build a [`SolveRequest`] from a parsed JSON object.
///
/// Every field is optional and defaults to [`FairCapConfig::default`];
/// unknown keys are rejected (except `session`, which the serving layer
/// consumes for routing before handing the body here). Schema:
///
/// ```json
/// {
///   "fairness":  {"kind": "sp"|"bgl"|"none", "scope": "group"|"individual",
///                 "epsilon": 10000.0, "tau": 0.1},
///   "coverage":  {"kind": "group"|"rule"|"none",
///                 "theta": 0.5, "theta_protected": 0.5},
///   "estimator": "linear"|"stratified"|"ipw"|"aipw"|"matching",
///   "max_rules": 20,
///   "apriori_threshold": 0.1,
///   "parallel": true,
///   "workers": 4,
///   "estimate_cache_bound": 10000,
///   "grouping_cache_bound": 64,
///   "intervention_cache_bound": 256,
///   "use_solve_cache": true,
///   "trace": false
/// }
/// ```
pub fn solve_request_from_json(json: &Json) -> Result<SolveRequest> {
    let Json::Obj(fields) = json else {
        return Err(bad("request body must be a JSON object"));
    };
    let mut config = FairCapConfig::default();
    let mut request = SolveRequest::default();
    for (key, value) in fields {
        match key.as_str() {
            // Consumed by the serving layer for session routing.
            "session" => {}
            "fairness" => config.fairness = fairness_from_json(value)?,
            "coverage" => config.coverage = coverage_from_json(value)?,
            "estimator" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| bad("`estimator` must be a string"))?;
                config.estimator = EstimatorKind::parse(name).ok_or_else(|| {
                    let known: Vec<&str> = EstimatorKind::ALL.iter().map(|k| k.name()).collect();
                    bad(format!(
                        "unknown estimator `{name}` (expected one of: {})",
                        known.join(", ")
                    ))
                })?;
            }
            "max_rules" => config.max_rules = usize_field(value, "max_rules")?,
            "apriori_threshold" => {
                config.apriori_threshold = f64_field(value, "apriori_threshold")?
            }
            "parallel" => {
                config.parallel = value
                    .as_bool()
                    .ok_or_else(|| bad("`parallel` must be a boolean"))?
            }
            "workers" => request.workers = Some(usize_field(value, "workers")?),
            "estimate_cache_bound" => {
                request.estimate_cache_bound = Some(usize_field(value, "estimate_cache_bound")?)
            }
            "grouping_cache_bound" => {
                request.grouping_cache_bound = Some(usize_field(value, "grouping_cache_bound")?)
            }
            "intervention_cache_bound" => {
                request.intervention_cache_bound =
                    Some(usize_field(value, "intervention_cache_bound")?)
            }
            "use_solve_cache" => {
                request.use_solve_cache = value
                    .as_bool()
                    .ok_or_else(|| bad("`use_solve_cache` must be a boolean"))?
            }
            "trace" => {
                request.trace = value
                    .as_bool()
                    .ok_or_else(|| bad("`trace` must be a boolean"))?
            }
            other => return Err(bad(format!("unknown request field `{other}`"))),
        }
    }
    request.config = config;
    Ok(request)
}

fn f64_field(value: &Json, name: &str) -> Result<f64> {
    value
        .as_f64()
        .ok_or_else(|| bad(format!("`{name}` must be a number")))
}

fn usize_field(value: &Json, name: &str) -> Result<usize> {
    let n = f64_field(value, name)?;
    if n < 0.0 || n.fract() != 0.0 || n > usize::MAX as f64 {
        return Err(bad(format!(
            "`{name}` must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

fn scope_from_json(obj: &Json) -> Result<FairnessScope> {
    match obj.get("scope").and_then(Json::as_str) {
        Some("group") | None => Ok(FairnessScope::Group),
        Some("individual") => Ok(FairnessScope::Individual),
        Some(other) => Err(bad(format!(
            "fairness scope must be `group` or `individual`, got `{other}`"
        ))),
    }
}

fn fairness_from_json(value: &Json) -> Result<FairnessConstraint> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`fairness` must be an object with a `kind` field"))?;
    match kind {
        "none" => Ok(FairnessConstraint::None),
        "sp" => Ok(FairnessConstraint::StatisticalParity {
            scope: scope_from_json(value)?,
            epsilon: value
                .get("epsilon")
                .map(|v| f64_field(v, "epsilon"))
                .transpose()?
                .ok_or_else(|| bad("`sp` fairness requires `epsilon`"))?,
        }),
        "bgl" => Ok(FairnessConstraint::BoundedGroupLoss {
            scope: scope_from_json(value)?,
            tau: value
                .get("tau")
                .map(|v| f64_field(v, "tau"))
                .transpose()?
                .ok_or_else(|| bad("`bgl` fairness requires `tau`"))?,
        }),
        other => Err(bad(format!(
            "fairness kind must be `none`, `sp`, or `bgl`, got `{other}`"
        ))),
    }
}

fn coverage_from_json(value: &Json) -> Result<CoverageConstraint> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("`coverage` must be an object with a `kind` field"))?;
    if kind == "none" {
        return Ok(CoverageConstraint::None);
    }
    let theta = value
        .get("theta")
        .map(|v| f64_field(v, "theta"))
        .transpose()?
        .ok_or_else(|| bad(format!("`{kind}` coverage requires `theta`")))?;
    let theta_protected = value
        .get("theta_protected")
        .map(|v| f64_field(v, "theta_protected"))
        .transpose()?
        .ok_or_else(|| bad(format!("`{kind}` coverage requires `theta_protected`")))?;
    match kind {
        "group" => Ok(CoverageConstraint::Group {
            theta,
            theta_protected,
        }),
        "rule" => Ok(CoverageConstraint::Rule {
            theta,
            theta_protected,
        }),
        other => Err(bad(format!(
            "coverage kind must be `none`, `group`, or `rule`, got `{other}`"
        ))),
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn opt_usize(value: Option<usize>) -> Json {
    value.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null)
}

/// Render a [`SolveRequest`] as its **canonical** JSON document: a fixed
/// field order with every field explicit (defaults included, absent
/// options as `null`), so two wire bodies that parse to the same request —
/// reordered keys, omitted-vs-explicit defaults, equivalent number
/// spellings — render to the *same byte string*.
///
/// This is the serving layer's coalescing key: the FNV-64 digest of this
/// rendering identifies in-flight duplicate solves (`serve::coalesce`).
/// Floats use the same shortest-round-trip formatting as the rest of the
/// wire module, so canonical equality is bit-level `f64` equality — which
/// is exactly the equivalence under which two solves are bit-identical.
///
/// The per-request `estimator` *override* (`SolveRequest::estimator`, an
/// in-process trait object that cannot arrive over the wire) is not
/// represented; callers coalescing in-process requests must refuse to
/// fingerprint a request carrying one.
pub fn solve_request_to_canonical_json(request: &SolveRequest) -> Json {
    let config = &request.config;
    let fairness = match config.fairness {
        FairnessConstraint::None => obj(vec![("kind", Json::Str("none".into()))]),
        FairnessConstraint::StatisticalParity { scope, epsilon } => obj(vec![
            ("kind", Json::Str("sp".into())),
            ("scope", scope_to_json(scope)),
            ("epsilon", Json::Num(epsilon)),
        ]),
        FairnessConstraint::BoundedGroupLoss { scope, tau } => obj(vec![
            ("kind", Json::Str("bgl".into())),
            ("scope", scope_to_json(scope)),
            ("tau", Json::Num(tau)),
        ]),
    };
    let coverage = match config.coverage {
        CoverageConstraint::None => obj(vec![("kind", Json::Str("none".into()))]),
        CoverageConstraint::Group {
            theta,
            theta_protected,
        } => obj(vec![
            ("kind", Json::Str("group".into())),
            ("theta", Json::Num(theta)),
            ("theta_protected", Json::Num(theta_protected)),
        ]),
        CoverageConstraint::Rule {
            theta,
            theta_protected,
        } => obj(vec![
            ("kind", Json::Str("rule".into())),
            ("theta", Json::Num(theta)),
            ("theta_protected", Json::Num(theta_protected)),
        ]),
    };
    obj(vec![
        ("fairness", fairness),
        ("coverage", coverage),
        ("estimator", Json::Str(config.estimator.name().to_owned())),
        ("max_rules", Json::Num(config.max_rules as f64)),
        ("apriori_threshold", Json::Num(config.apriori_threshold)),
        ("max_group_len", Json::Num(config.max_group_len as f64)),
        (
            "max_intervention_len",
            Json::Num(config.max_intervention_len as f64),
        ),
        ("lambda_size", Json::Num(config.lambda_size)),
        ("lambda_utility", Json::Num(config.lambda_utility)),
        ("min_marginal_gain", Json::Num(config.min_marginal_gain)),
        ("alpha", Json::Num(config.alpha)),
        (
            "interventions_per_group",
            Json::Num(config.interventions_per_group as f64),
        ),
        ("parallel", Json::Bool(config.parallel)),
        ("workers", opt_usize(request.workers)),
        (
            "estimate_cache_bound",
            opt_usize(request.estimate_cache_bound),
        ),
        (
            "grouping_cache_bound",
            opt_usize(request.grouping_cache_bound),
        ),
        (
            "intervention_cache_bound",
            opt_usize(request.intervention_cache_bound),
        ),
        ("use_solve_cache", Json::Bool(request.use_solve_cache)),
        ("trace", Json::Bool(request.trace)),
    ])
}

fn scope_to_json(scope: FairnessScope) -> Json {
    Json::Str(
        match scope {
            FairnessScope::Group => "group",
            FairnessScope::Individual => "individual",
        }
        .into(),
    )
}

/// Render [`ExecStats`] as JSON (the `exec` field of a report document).
pub fn exec_stats_to_json(stats: &ExecStats) -> Json {
    obj(vec![
        ("workers", Json::Num(stats.workers as f64)),
        ("tasks", Json::Num(stats.tasks as f64)),
        ("steals", Json::Num(stats.steals as f64)),
        (
            "tasks_per_worker",
            Json::Arr(
                stats
                    .tasks_per_worker
                    .iter()
                    .map(|&n| Json::Num(n as f64))
                    .collect(),
            ),
        ),
        ("busy_ms", Json::Num(stats.busy.as_secs_f64() * 1e3)),
        ("wall_ms", Json::Num(stats.wall.as_secs_f64() * 1e3)),
        ("utilization", Json::Num(stats.utilization())),
    ])
}

/// Render a [`SolutionReport`] as a JSON document — the response body of
/// `POST /v1/solve`.
pub fn solution_report_to_json(report: &SolutionReport) -> Json {
    let rules: Vec<Json> = report
        .rules
        .iter()
        .map(|r| {
            obj(vec![
                ("grouping", Json::Str(r.grouping.to_string())),
                ("intervention", Json::Str(r.intervention.to_string())),
                ("rule", Json::Str(r.to_string())),
                ("coverage_count", Json::Num(r.coverage_count() as f64)),
                (
                    "coverage_protected_count",
                    Json::Num(r.coverage_protected_count() as f64),
                ),
                (
                    "utility",
                    obj(vec![
                        ("overall", Json::Num(r.utility.overall)),
                        ("protected", Json::Num(r.utility.protected)),
                        ("non_protected", Json::Num(r.utility.non_protected)),
                        ("p_value", Json::Num(r.utility.p_value)),
                    ]),
                ),
                ("benefit", Json::Num(r.benefit)),
            ])
        })
        .collect();
    let summary = obj(vec![
        ("expected", Json::Num(report.summary.expected)),
        (
            "expected_protected",
            Json::Num(report.summary.expected_protected),
        ),
        (
            "expected_non_protected",
            Json::Num(report.summary.expected_non_protected),
        ),
        ("coverage", Json::Num(report.summary.coverage)),
        (
            "coverage_protected",
            Json::Num(report.summary.coverage_protected),
        ),
        ("unfairness", Json::Num(report.summary.unfairness)),
    ]);
    let timings = obj(vec![
        (
            "grouping_ms",
            Json::Num(report.timings.grouping.as_secs_f64() * 1e3),
        ),
        (
            "intervention_ms",
            Json::Num(report.timings.intervention.as_secs_f64() * 1e3),
        ),
        (
            "greedy_ms",
            Json::Num(report.timings.greedy.as_secs_f64() * 1e3),
        ),
        (
            "total_ms",
            Json::Num(report.timings.total().as_secs_f64() * 1e3),
        ),
    ]);
    let mining = |m: &faircap_mining::MiningStats| {
        obj(vec![
            ("candidates", Json::Num(m.candidates as f64)),
            ("pruned_parent", Json::Num(m.pruned_parent as f64)),
            ("pruned_support", Json::Num(m.pruned_support as f64)),
            ("evaluated", Json::Num(m.evaluated as f64)),
        ])
    };
    let stats = obj(vec![
        ("grouping", mining(&report.stats.grouping)),
        ("lattice", mining(&report.stats.lattice)),
        (
            "greedy",
            obj(vec![
                (
                    "evaluations",
                    Json::Num(report.stats.greedy.evaluations as f64),
                ),
                (
                    "reevaluations",
                    Json::Num(report.stats.greedy.reevaluations as f64),
                ),
                ("rounds", Json::Num(report.stats.greedy.rounds as f64)),
            ]),
        ),
        (
            "intervention_cache",
            obj(vec![
                (
                    "hits",
                    Json::Num(report.stats.intervention_cache_hits as f64),
                ),
                (
                    "misses",
                    Json::Num(report.stats.intervention_cache_misses as f64),
                ),
            ]),
        ),
    ]);
    obj(vec![
        ("label", Json::Str(report.label.clone())),
        ("constraints_met", Json::Bool(report.constraints_met)),
        ("n_rules", Json::Num(report.size() as f64)),
        ("rules", Json::Arr(rules)),
        ("summary", summary),
        (
            "n_grouping_patterns",
            Json::Num(report.n_grouping_patterns as f64),
        ),
        ("n_candidates", Json::Num(report.n_candidates as f64)),
        ("timings", timings),
        ("stats", stats),
        (
            "exec",
            report
                .exec
                .as_ref()
                .map(exec_stats_to_json)
                .unwrap_or(Json::Null),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true,"e":"x\"\\\né"},"f":false}"#;
        let v = Json::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("e").unwrap().as_str().unwrap(),
            "x\"\\\né"
        );
    }

    #[test]
    fn get_path_walks_nested_objects() {
        let v = Json::parse(r#"{"a":{"b":{"c":7}},"x":[1]}"#).unwrap();
        assert_eq!(v.get_path("a.b.c").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get_path("a"), v.get("a"));
        assert!(v.get_path("a.b.z").is_none());
        assert!(v.get_path("x.0").is_none(), "arrays are not traversed");
        assert!(v.get_path("a.b.c.d").is_none(), "leaf is not an object");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3ff0_0000_0000_0001u64, // 1.0 + ulp
            0x4197_d784_3c80_0000,    // some large value
            (-1.2345678901234567e-89f64).to_bits(),
            0u64,
        ] {
            let v = Json::Num(f64::from_bits(bits));
            let back = Json::parse(&v.render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), bits);
        }
        // Non-finite floats degrade to null, not invalid JSON.
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "nul",
            "\"unterminated",
            "01a",
            // Lone high surrogate, and a high surrogate followed by a
            // non-low-surrogate escape.
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // A valid pair decodes to the astral character.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn solve_request_parses_every_knob() {
        let body = r#"{
            "session": "german",
            "fairness": {"kind": "sp", "scope": "group", "epsilon": 10000.0},
            "coverage": {"kind": "rule", "theta": 0.3, "theta_protected": 0.2},
            "estimator": "aipw",
            "max_rules": 7,
            "apriori_threshold": 0.15,
            "parallel": false,
            "workers": 3,
            "estimate_cache_bound": 100,
            "grouping_cache_bound": 8
        }"#;
        let request = solve_request_from_json(&Json::parse(body).unwrap()).unwrap();
        assert!(matches!(
            request.config.fairness,
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Group,
                epsilon
            } if epsilon == 10_000.0
        ));
        assert!(matches!(
            request.config.coverage,
            CoverageConstraint::Rule { theta, .. } if theta == 0.3
        ));
        assert_eq!(request.config.estimator, EstimatorKind::Aipw);
        assert_eq!(request.config.max_rules, 7);
        assert_eq!(request.config.apriori_threshold, 0.15);
        assert!(!request.config.parallel);
        assert_eq!(request.workers, Some(3));
        assert_eq!(request.estimate_cache_bound, Some(100));
        assert_eq!(request.grouping_cache_bound, Some(8));
    }

    #[test]
    fn empty_request_is_all_defaults() {
        let request = solve_request_from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(request.config.max_rules, FairCapConfig::default().max_rules);
        assert!(request.workers.is_none());
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        for (body, needle) in [
            (r#"{"bogus": 1}"#, "unknown request field"),
            (r#"{"estimator": "dowhy"}"#, "unknown estimator"),
            (r#"{"fairness": {"kind": "sp"}}"#, "epsilon"),
            (r#"{"fairness": {"kind": "zz"}}"#, "fairness kind"),
            (
                r#"{"coverage": {"kind": "group", "theta": 0.5}}"#,
                "theta_protected",
            ),
            (r#"{"max_rules": 1.5}"#, "non-negative integer"),
            (r#"{"max_rules": -1}"#, "non-negative integer"),
            (r#"{"parallel": "yes"}"#, "boolean"),
            (r#"[1]"#, "object"),
        ] {
            let err = solve_request_from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(
                matches!(err, Error::InvalidRequest(ref m) if m.contains(needle)),
                "{body} -> {err}"
            );
        }
    }

    #[test]
    fn canonical_request_json_normalizes_equivalent_bodies() {
        // The same request spelled three ways: reordered keys, defaults
        // omitted vs. explicit, different number spellings. All must
        // render to one canonical byte string.
        let spellings = [
            r#"{"max_rules": 7, "estimator": "ipw", "fairness": {"kind": "sp", "epsilon": 1e4}}"#,
            r#"{"fairness": {"epsilon": 10000.0, "kind": "sp", "scope": "group"},
                "estimator": "ipw", "max_rules": 7, "parallel": true}"#,
            r#"{"session": "ignored-for-the-key", "estimator": "ipw",
                "coverage": {"kind": "none"}, "max_rules": 7,
                "fairness": {"kind": "sp", "epsilon": 10000}}"#,
        ];
        let canonical: Vec<String> = spellings
            .iter()
            .map(|body| {
                let request = solve_request_from_json(&Json::parse(body).unwrap()).unwrap();
                solve_request_to_canonical_json(&request).render()
            })
            .collect();
        assert_eq!(canonical[0], canonical[1]);
        assert_eq!(canonical[0], canonical[2]);
        // A genuinely different request diverges.
        let other = solve_request_from_json(&Json::parse(r#"{"max_rules": 8}"#).unwrap()).unwrap();
        assert_ne!(
            canonical[0],
            solve_request_to_canonical_json(&other).render()
        );
        // Every wire-settable knob appears explicitly in the canonical form.
        let doc = Json::parse(&canonical[0]).unwrap();
        for field in [
            "fairness",
            "coverage",
            "estimator",
            "max_rules",
            "apriori_threshold",
            "parallel",
            "workers",
            "estimate_cache_bound",
            "grouping_cache_bound",
            "intervention_cache_bound",
            "use_solve_cache",
            "trace",
        ] {
            assert!(doc.get(field).is_some(), "canonical form omits `{field}`");
        }
    }

    #[test]
    fn report_renders_and_reparses() {
        use crate::report::{SolveStats, StepTimings};
        use crate::utility::RulesetUtility;
        use std::time::Duration;
        let report = SolutionReport {
            label: "no fairness + no coverage".into(),
            rules: Vec::new(),
            summary: RulesetUtility {
                expected: 27_934.76,
                expected_protected: 18_145.23,
                expected_non_protected: 28_144.58,
                coverage: 0.9795,
                coverage_protected: 0.9885,
                unfairness: 9_999.35,
            },
            constraints_met: true,
            n_grouping_patterns: 12,
            n_candidates: 10,
            timings: StepTimings {
                grouping: Duration::from_millis(5),
                intervention: Duration::from_millis(900),
                greedy: Duration::from_millis(20),
            },
            stats: SolveStats {
                intervention_cache_hits: 7,
                intervention_cache_misses: 5,
                ..SolveStats::default()
            },
            exec: Some(ExecStats {
                workers: 2,
                tasks: 12,
                steals: 3,
                tasks_per_worker: vec![7, 5],
                busy: Duration::from_millis(800),
                wall: Duration::from_millis(450),
            }),
        };
        let json = solution_report_to_json(&report);
        let back = Json::parse(&json.render()).unwrap();
        assert_eq!(
            back.get("summary")
                .unwrap()
                .get("expected")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            report.summary.expected.to_bits(),
            "summary floats must survive the wire bit-exactly"
        );
        assert_eq!(back.get("n_rules").unwrap().as_f64(), Some(0.0));
        assert_eq!(
            back.get("exec").unwrap().get("steals").unwrap().as_f64(),
            Some(3.0)
        );
        let cache = back
            .get("stats")
            .unwrap()
            .get("intervention_cache")
            .unwrap();
        assert_eq!(cache.get("hits").unwrap().as_f64(), Some(7.0));
        assert_eq!(cache.get("misses").unwrap().as_f64(), Some(5.0));
    }
}
