//! A named registry of live [`PrescriptionSession`]s — the unit of state a
//! serving front end holds.
//!
//! The serving model is one warm session per registered dataset: sessions
//! are `Sync`, so any number of request workers can call
//! [`RegisteredSession::solve`] concurrently against the same entry while
//! sharing its CATE and grouping caches. The registry wraps each session
//! with serving-oriented bookkeeping (solve counters, the last solve's
//! [`ExecStats`]) that the `/v1/metrics` endpoint reports.

use crate::error::Result;
use crate::exec::ExecStats;
use crate::report::SolutionReport;
use crate::session::{PrescriptionSession, SolveRequest};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Provenance of a warm boot: which snapshot file a session was restored
/// from and how long the restore took. Recorded by the serving CLI after a
/// successful [`warm_start`] and surfaced on `/v1/metrics` and `/metrics`.
///
/// [`warm_start`]: crate::session::SessionBuilder::warm_start
#[derive(Debug, Clone, PartialEq)]
pub struct WarmBootInfo {
    /// Path of the snapshot file the session was restored from.
    pub snapshot_path: String,
    /// Wall-clock milliseconds spent reading and importing the snapshot.
    pub restore_ms: f64,
}

/// A session plus its serving bookkeeping. Obtained from
/// [`SessionRegistry::get`]; all methods take `&self` and are safe to call
/// from any number of threads.
pub struct RegisteredSession {
    name: String,
    session: Arc<PrescriptionSession>,
    solves_ok: AtomicU64,
    solves_err: AtomicU64,
    solves_coalesced: AtomicU64,
    last_exec: Mutex<Option<ExecStats>>,
    warm_boot: Mutex<Option<WarmBootInfo>>,
}

impl RegisteredSession {
    /// The name the session was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying session.
    pub fn session(&self) -> &PrescriptionSession {
        &self.session
    }

    /// Completed solves on this entry (via [`Self::solve`]).
    pub fn solves_ok(&self) -> u64 {
        self.solves_ok.load(Ordering::Relaxed)
    }

    /// Failed solves on this entry (via [`Self::solve`]).
    pub fn solves_err(&self) -> u64 {
        self.solves_err.load(Ordering::Relaxed)
    }

    /// Requests served by attaching to an already-running identical solve
    /// instead of starting a new one (recorded by the serving layer's
    /// in-flight coalescer via [`Self::record_coalesced`]). Not counted in
    /// [`Self::solves_ok`], which tracks *underlying* solves.
    pub fn solves_coalesced(&self) -> u64 {
        self.solves_coalesced.load(Ordering::Relaxed)
    }

    /// Record one coalesced (fanned-out) request against this entry.
    pub fn record_coalesced(&self) {
        self.solves_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Executor statistics of the most recent parallel solve, if any.
    pub fn last_exec(&self) -> Option<ExecStats> {
        self.last_exec.lock().clone()
    }

    /// Record that the wrapped session was warm-booted from a snapshot.
    pub fn set_warm_boot(&self, info: WarmBootInfo) {
        *self.warm_boot.lock() = Some(info);
    }

    /// Warm-boot provenance, if the session was restored from a snapshot.
    pub fn warm_boot(&self) -> Option<WarmBootInfo> {
        self.warm_boot.lock().clone()
    }

    /// Solve on the wrapped session, recording outcome counters and the
    /// run's executor statistics.
    pub fn solve(&self, request: &SolveRequest) -> Result<SolutionReport> {
        match self.session.solve(request) {
            Ok(report) => {
                self.solves_ok.fetch_add(1, Ordering::Relaxed);
                if let Some(exec) = &report.exec {
                    *self.last_exec.lock() = Some(exec.clone());
                }
                Ok(report)
            }
            Err(e) => {
                self.solves_err.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// Thread-safe name → session map. Register at boot (or whenever a new
/// dataset is loaded), look up per request.
#[derive(Default)]
pub struct SessionRegistry {
    entries: RwLock<BTreeMap<String, Arc<RegisteredSession>>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a session under `name`. Returns the wrapped entry, or
    /// `None` if the name is already taken (the existing entry is kept —
    /// replacing a live session under a serving front end would silently
    /// invalidate in-flight solves' cache assumptions).
    pub fn register(
        &self,
        name: impl Into<String>,
        session: impl Into<Arc<PrescriptionSession>>,
    ) -> Option<Arc<RegisteredSession>> {
        let name = name.into();
        let mut entries = self.entries.write();
        if entries.contains_key(&name) {
            return None;
        }
        let entry = Arc::new(RegisteredSession {
            name: name.clone(),
            session: session.into(),
            solves_ok: AtomicU64::new(0),
            solves_err: AtomicU64::new(0),
            solves_coalesced: AtomicU64::new(0),
            last_exec: Mutex::new(None),
            warm_boot: Mutex::new(None),
        });
        entries.insert(name, Arc::clone(&entry));
        Some(entry)
    }

    /// Look up a session by name.
    pub fn get(&self, name: &str) -> Option<Arc<RegisteredSession>> {
        self.entries.read().get(name).cloned()
    }

    /// The sole registered session, if exactly one exists — lets
    /// single-dataset deployments omit the `session` routing field.
    pub fn single(&self) -> Option<Arc<RegisteredSession>> {
        let entries = self.entries.read();
        if entries.len() == 1 {
            entries.values().next().cloned()
        } else {
            None
        }
    }

    /// All entries, in name order.
    pub fn entries(&self) -> Vec<Arc<RegisteredSession>> {
        self.entries.read().values().cloned().collect()
    }

    /// Registered names, in order.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::FairCap;
    use faircap_table::{DataFrame, Pattern, Value};

    fn session() -> PrescriptionSession {
        let n = 40;
        let grp: Vec<&str> = (0..n)
            .map(|i| if i % 4 == 0 { "p" } else { "np" })
            .collect();
        let treat: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "yes" } else { "no" })
            .collect();
        let outcome: Vec<f64> = (0..n)
            .map(|i| {
                let base = if i % 4 == 0 { 40.0 } else { 50.0 };
                let lift = if i % 2 == 0 { 10.0 } else { 0.0 };
                base + lift + (i % 5) as f64 * 0.1
            })
            .collect();
        let df = DataFrame::builder()
            .cat("grp", &grp)
            .cat("treat", &treat)
            .float("outcome", outcome)
            .build()
            .unwrap();
        let dag = faircap_causal::Dag::parse_edge_list("grp -> outcome\ntreat -> outcome").unwrap();
        FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .immutable(["grp"])
            .mutable(["treat"])
            .protected(Pattern::of_eq(&[("grp", Value::from("p"))]))
            .build()
            .unwrap()
    }

    #[test]
    fn register_get_and_list() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.register("tiny", session()).is_some());
        assert!(
            registry.register("tiny", session()).is_none(),
            "duplicate names are refused"
        );
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["tiny"]);
        assert!(registry.get("tiny").is_some());
        assert!(registry.get("ghost").is_none());
        // Exactly one entry: `single` routes to it.
        assert_eq!(registry.single().unwrap().name(), "tiny");
        registry.register("other", session());
        assert!(registry.single().is_none(), "ambiguous with two entries");
    }

    #[test]
    fn solve_records_counters_and_exec() {
        let registry = SessionRegistry::new();
        let entry = registry.register("tiny", session()).unwrap();
        assert_eq!((entry.solves_ok(), entry.solves_err()), (0, 0));
        let report = entry.solve(&SolveRequest::default().workers(2)).unwrap();
        assert_eq!(entry.solves_ok(), 1);
        assert_eq!(entry.last_exec().is_some(), report.exec.is_some());
        // An invalid request is counted as a failure.
        let mut bad = SolveRequest::default();
        bad.config.apriori_threshold = f64::NAN;
        assert!(entry.solve(&bad).is_err());
        assert_eq!(entry.solves_err(), 1);
    }
}
