//! Constraint validity checks (`R ⊨ F`, `R ⊨ C` of Definition 4.6).

use crate::config::{CoverageConstraint, FairnessConstraint, FairnessScope};
use crate::rule::Rule;
use crate::utility::RulesetUtility;

/// Does a single rule satisfy an **individual-scope** fairness constraint?
/// Group-scope (and `None`) constraints never reject individual rules here.
pub fn rule_satisfies_fairness(rule: &Rule, fairness: &FairnessConstraint) -> bool {
    match fairness {
        FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon,
        } => rule.utility.gap() <= *epsilon,
        FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Individual,
            tau,
        } => rule.utility.protected >= *tau,
        _ => true,
    }
}

/// Does a single rule satisfy a **rule-scope** coverage constraint?
/// Group-scope (and `None`) constraints never reject individual rules here.
pub fn rule_satisfies_coverage(
    rule: &Rule,
    coverage: &CoverageConstraint,
    n_rows: usize,
    n_protected: usize,
) -> bool {
    match coverage {
        CoverageConstraint::Rule {
            theta,
            theta_protected,
        } => {
            rule.coverage_count() as f64 >= theta * n_rows as f64
                && rule.coverage_protected_count() as f64 >= theta_protected * n_protected as f64
        }
        _ => true,
    }
}

/// Does a ruleset-level summary satisfy a **group-scope** fairness
/// constraint? Individual-scope constraints are vacuously true here (they
/// are enforced per rule).
pub fn summary_satisfies_fairness(summary: &RulesetUtility, fairness: &FairnessConstraint) -> bool {
    match fairness {
        FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon,
        } => (summary.expected_protected - summary.expected_non_protected).abs() <= *epsilon,
        FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau,
        } => summary.expected_protected >= *tau,
        _ => true,
    }
}

/// Does a ruleset-level summary satisfy a **group-scope** coverage
/// constraint? Rule-scope constraints are vacuously true here.
pub fn summary_satisfies_coverage(summary: &RulesetUtility, coverage: &CoverageConstraint) -> bool {
    match coverage {
        CoverageConstraint::Group {
            theta,
            theta_protected,
        } => summary.coverage >= *theta && summary.coverage_protected >= *theta_protected,
        _ => true,
    }
}

/// Full validity of a solution: per-rule checks for individual/rule scopes
/// plus summary checks for group scopes.
pub fn solution_is_valid(
    rules: &[&Rule],
    summary: &RulesetUtility,
    fairness: &FairnessConstraint,
    coverage: &CoverageConstraint,
    n_rows: usize,
    n_protected: usize,
) -> bool {
    rules.iter().all(|r| {
        rule_satisfies_fairness(r, fairness)
            && rule_satisfies_coverage(r, coverage, n_rows, n_protected)
    }) && summary_satisfies_fairness(summary, fairness)
        && summary_satisfies_coverage(summary, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleUtility;
    use faircap_table::{Mask, Pattern};

    fn rule(cov: usize, cov_p: usize, prot: f64, np: f64) -> Rule {
        Rule {
            grouping: Pattern::empty(),
            intervention: Pattern::empty(),
            coverage: Mask::from_indices(100, &(0..cov).collect::<Vec<_>>()),
            coverage_protected: Mask::from_indices(100, &(0..cov_p).collect::<Vec<_>>()),
            utility: RuleUtility {
                overall: (prot + np) / 2.0,
                protected: prot,
                non_protected: np,
                p_value: 0.0,
            },
            benefit: 0.0,
        }
    }

    #[test]
    fn individual_sp_gates_rules() {
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon: 5.0,
        };
        assert!(rule_satisfies_fairness(&rule(10, 5, 10.0, 14.0), &f));
        assert!(!rule_satisfies_fairness(&rule(10, 5, 10.0, 16.0), &f));
        // group scope never rejects a single rule
        let g = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 5.0,
        };
        assert!(rule_satisfies_fairness(&rule(10, 5, 10.0, 100.0), &g));
    }

    #[test]
    fn individual_bgl_gates_rules() {
        let f = FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Individual,
            tau: 8.0,
        };
        assert!(rule_satisfies_fairness(&rule(10, 5, 8.0, 20.0), &f));
        assert!(!rule_satisfies_fairness(&rule(10, 5, 7.9, 20.0), &f));
    }

    #[test]
    fn rule_coverage_gates_rules() {
        let c = CoverageConstraint::Rule {
            theta: 0.3,
            theta_protected: 0.5,
        };
        // 100 rows, 20 protected → needs cov ≥ 30 and cov_p ≥ 10.
        assert!(rule_satisfies_coverage(
            &rule(30, 10, 0.0, 0.0),
            &c,
            100,
            20
        ));
        assert!(!rule_satisfies_coverage(
            &rule(29, 10, 0.0, 0.0),
            &c,
            100,
            20
        ));
        assert!(!rule_satisfies_coverage(
            &rule(30, 9, 0.0, 0.0),
            &c,
            100,
            20
        ));
        // group scope never rejects a single rule
        let g = CoverageConstraint::Group {
            theta: 0.9,
            theta_protected: 0.9,
        };
        assert!(rule_satisfies_coverage(&rule(1, 0, 0.0, 0.0), &g, 100, 20));
    }

    #[test]
    fn group_constraints_check_summary() {
        let mut s = RulesetUtility::empty();
        s.expected_protected = 10.0;
        s.expected_non_protected = 18.0;
        s.coverage = 0.6;
        s.coverage_protected = 0.4;
        let sp = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 8.0,
        };
        assert!(summary_satisfies_fairness(&s, &sp));
        let sp_tight = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 7.9,
        };
        assert!(!summary_satisfies_fairness(&s, &sp_tight));
        let bgl = FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 10.0,
        };
        assert!(summary_satisfies_fairness(&s, &bgl));
        let cov = CoverageConstraint::Group {
            theta: 0.5,
            theta_protected: 0.5,
        };
        assert!(!summary_satisfies_coverage(&s, &cov));
        let cov_ok = CoverageConstraint::Group {
            theta: 0.5,
            theta_protected: 0.4,
        };
        assert!(summary_satisfies_coverage(&s, &cov_ok));
    }

    #[test]
    fn matroid_property_of_individual_constraints() {
        // Hereditary: any subset of a valid set is valid (Prop. 9.2).
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon: 5.0,
        };
        let c = CoverageConstraint::Rule {
            theta: 0.1,
            theta_protected: 0.1,
        };
        let rules = [
            rule(20, 5, 10.0, 12.0),
            rule(30, 8, 8.0, 11.0),
            rule(15, 4, 9.0, 13.0),
        ];
        let all_valid = rules
            .iter()
            .all(|r| rule_satisfies_fairness(r, &f) && rule_satisfies_coverage(r, &c, 100, 20));
        assert!(all_valid);
        // every subset is valid because validity is per-rule
        for i in 0..rules.len() {
            let subset: Vec<&Rule> = rules
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, r)| r)
                .collect();
            assert!(subset.iter().all(|r| rule_satisfies_fairness(r, &f)));
        }
    }
}
