//! Problem configuration: the fairness/coverage constraint system (§4.5,
//! §4.6) and algorithm knobs.

use serde::Serialize;
use std::fmt;

/// Group vs. individual scope of a fairness constraint (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FairnessScope {
    /// Constrains ruleset-level expected utilities.
    Group,
    /// Constrains every selected rule.
    Individual,
}

/// Fairness constraint `F` (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FairnessConstraint {
    /// No fairness requirement.
    None,
    /// Statistical parity: protected and non-protected gains within `epsilon`.
    ///
    /// * Group: `|ExpUtility_p(R) − ExpUtility_p̄(R)| ≤ ε`.
    /// * Individual: for every rule, `|utility_p(r) − utility_p̄(r)| ≤ ε`.
    StatisticalParity {
        /// Scope of the requirement.
        scope: FairnessScope,
        /// Maximum allowed gap ε.
        epsilon: f64,
    },
    /// Bounded group loss: protected gains above `tau`.
    ///
    /// * Group: `ExpUtility_p(R) ≥ τ`.
    /// * Individual: for every rule, `utility_p(r) ≥ τ`.
    BoundedGroupLoss {
        /// Scope of the requirement.
        scope: FairnessScope,
        /// Minimum protected utility τ.
        tau: f64,
    },
}

impl FairnessConstraint {
    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            FairnessConstraint::None => "no fairness".into(),
            FairnessConstraint::StatisticalParity { scope, epsilon } => {
                format!("{} SP(ε={epsilon})", scope_label(*scope))
            }
            FairnessConstraint::BoundedGroupLoss { scope, tau } => {
                format!("{} BGL(τ={tau})", scope_label(*scope))
            }
        }
    }

    /// Scope, if any.
    pub fn scope(&self) -> Option<FairnessScope> {
        match self {
            FairnessConstraint::None => None,
            FairnessConstraint::StatisticalParity { scope, .. }
            | FairnessConstraint::BoundedGroupLoss { scope, .. } => Some(*scope),
        }
    }
}

fn scope_label(s: FairnessScope) -> &'static str {
    match s {
        FairnessScope::Group => "group",
        FairnessScope::Individual => "individual",
    }
}

/// Coverage constraint `C` (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum CoverageConstraint {
    /// No coverage requirement.
    None,
    /// Group coverage: the *ruleset* must cover ≥ `theta` of the population
    /// and ≥ `theta_protected` of the protected group.
    Group {
        /// Fraction of the whole population.
        theta: f64,
        /// Fraction of the protected group.
        theta_protected: f64,
    },
    /// Rule coverage: *every rule* must cover ≥ `theta` of the population
    /// and ≥ `theta_protected` of the protected group.
    Rule {
        /// Fraction of the whole population.
        theta: f64,
        /// Fraction of the protected group.
        theta_protected: f64,
    },
}

impl CoverageConstraint {
    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            CoverageConstraint::None => "no coverage".into(),
            CoverageConstraint::Group {
                theta,
                theta_protected,
            } => format!("group cov(θ={theta},θp={theta_protected})"),
            CoverageConstraint::Rule {
                theta,
                theta_protected,
            } => format!("rule cov(θ={theta},θp={theta_protected})"),
        }
    }
}

/// Full configuration of a [Prescription Ruleset Selection] run
/// (Definition 4.6 + FairCap's algorithmic knobs, §5/§6 defaults).
#[derive(Debug, Clone, Serialize)]
pub struct FairCapConfig {
    /// Fairness constraint `F`.
    pub fairness: FairnessConstraint,
    /// Coverage constraint `C`.
    pub coverage: CoverageConstraint,
    /// Apriori support threshold for grouping patterns (τ in §5.1; paper
    /// default 0.1).
    pub apriori_threshold: f64,
    /// Maximum predicates per grouping pattern.
    pub max_group_len: usize,
    /// Maximum predicates per intervention pattern.
    pub max_intervention_len: usize,
    /// Objective weight λ1 on ruleset smallness.
    pub lambda_size: f64,
    /// Objective weight λ2 on expected utility.
    pub lambda_utility: f64,
    /// Hard cap on selected rules (the paper's tables report ≤ 20).
    pub max_rules: usize,
    /// Greedy stop threshold: stop when the marginal score of the best rule
    /// falls below this fraction of the best first-iteration score.
    pub min_marginal_gain: f64,
    /// Significance level for the per-rule effect filter.
    pub alpha: f64,
    /// Treatments kept per grouping pattern in step 2 (the paper keeps 1;
    /// larger values hand step 3 a richer pool — see `ablation_lattice`).
    pub interventions_per_group: usize,
    /// Which CATE estimator to use.
    #[serde(skip)]
    pub estimator: faircap_causal::EstimatorKind,
    /// Intervention cost model (§8 extension; all-zero by default).
    #[serde(skip)]
    pub cost_model: crate::cost::CostModel,
    /// How costs constrain/re-rank interventions (§8 extension).
    pub cost_policy: crate::cost::CostPolicy,
    /// Parallelize intervention mining across grouping patterns (§5.2
    /// optimization (ii)).
    pub parallel: bool,
}

impl Default for FairCapConfig {
    fn default() -> Self {
        FairCapConfig {
            fairness: FairnessConstraint::None,
            coverage: CoverageConstraint::None,
            apriori_threshold: 0.1,
            max_group_len: 2,
            max_intervention_len: 2,
            lambda_size: 1.0,
            lambda_utility: 1.0,
            max_rules: 20,
            min_marginal_gain: 0.01,
            alpha: 0.05,
            interventions_per_group: 1,
            estimator: faircap_causal::EstimatorKind::Linear,
            cost_model: crate::cost::CostModel::default(),
            cost_policy: crate::cost::CostPolicy::Ignore,
            parallel: true,
        }
    }
}

impl FairCapConfig {
    /// Label combining both constraints, as in the paper's Table 4 rows.
    pub fn label(&self) -> String {
        format!("{} + {}", self.fairness.label(), self.coverage.label())
    }
}

impl fmt::Display for FairCapConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_descriptive() {
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        };
        assert_eq!(f.label(), "group SP(ε=10000)");
        let b = FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Individual,
            tau: 0.1,
        };
        assert!(b.label().contains("individual BGL"));
        let c = CoverageConstraint::Rule {
            theta: 0.5,
            theta_protected: 0.5,
        };
        assert!(c.label().contains("rule cov"));
    }

    #[test]
    fn default_matches_paper_defaults() {
        let cfg = FairCapConfig::default();
        assert_eq!(cfg.apriori_threshold, 0.1);
        assert_eq!(cfg.max_rules, 20);
        assert!(matches!(cfg.fairness, FairnessConstraint::None));
        assert!(matches!(cfg.coverage, CoverageConstraint::None));
    }

    #[test]
    fn scope_extraction() {
        assert_eq!(FairnessConstraint::None.scope(), None);
        assert_eq!(
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Individual,
                epsilon: 1.0
            }
            .scope(),
            Some(FairnessScope::Individual)
        );
    }
}
