//! Solution reports: the rows of the paper's Tables 4–6.

use crate::algorithm::greedy::GreedyStats;
use crate::exec::ExecStats;
use crate::rule::Rule;
use crate::utility::RulesetUtility;
use faircap_mining::MiningStats;
use std::fmt;
use std::time::Duration;

/// Wall-clock time per algorithm step (the series of the paper's Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTimings {
    /// Step 1 — grouping-pattern mining.
    pub grouping: Duration,
    /// Step 2 — intervention mining (dominant in the paper's Figure 3).
    pub intervention: Duration,
    /// Step 3 — greedy selection.
    pub greedy: Duration,
}

impl StepTimings {
    /// Total across the three steps.
    pub fn total(&self) -> Duration {
        self.grouping + self.intervention + self.greedy
    }
}

/// Work accounting of one solve, in the spirit of the causal engine's
/// `HotStats`: how many candidates each step generated, pruned, and
/// actually paid for, and how much of Step 2 was served from the session's
/// intervention cache. All counters describe work performed **by this
/// solve** — a fully cached warm re-solve reports zero mining work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Step-1 Apriori candidate pipeline (zero when the grouping cache
    /// served the request).
    pub grouping: MiningStats,
    /// Step-2 lattice pipeline, merged over the groups evaluated from
    /// scratch this solve.
    pub lattice: MiningStats,
    /// Step-3 lazy-greedy work counters.
    pub greedy: GreedyStats,
    /// Groups whose phase-1 evaluation came from the intervention cache.
    pub intervention_cache_hits: u64,
    /// Groups evaluated from scratch (and inserted into the cache).
    pub intervention_cache_misses: u64,
}

/// The result of one FairCap run.
#[derive(Debug, Clone)]
pub struct SolutionReport {
    /// Constraint-combination label (Table 4 row name).
    pub label: String,
    /// Selected prescription rules, in selection order.
    pub rules: Vec<Rule>,
    /// Eq. 5–7 summary of the ruleset.
    pub summary: RulesetUtility,
    /// Whether the final set satisfies all constraints.
    pub constraints_met: bool,
    /// Number of grouping patterns mined in step 1.
    pub n_grouping_patterns: usize,
    /// Number of candidate rules entering step 3.
    pub n_candidates: usize,
    /// Per-step wall-clock times.
    pub timings: StepTimings,
    /// Per-step work counters (candidates generated / pruned / evaluated,
    /// greedy heap activity, intervention-cache traffic).
    pub stats: SolveStats,
    /// Step-2 executor statistics (tasks, steals, worker utilization).
    /// `None` when the solve ran the fan-out serially.
    pub exec: Option<ExecStats>,
}

impl SolutionReport {
    /// Number of selected rules.
    pub fn size(&self) -> usize {
        self.rules.len()
    }

    /// One row in the format of the paper's Table 4:
    /// `label | #rules | coverage | coverage_pro | exp_utility |
    /// exp_utility_non_pro | exp_utility_pro | unfairness`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<46} {:>7} {:>9.2}% {:>9.2}% {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            self.label,
            self.size(),
            self.summary.coverage * 100.0,
            self.summary.coverage_protected * 100.0,
            self.summary.expected,
            self.summary.expected_non_protected,
            self.summary.expected_protected,
            self.summary.unfairness,
        )
    }

    /// Header matching [`Self::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<46} {:>7} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "setting",
            "#rules",
            "coverage",
            "cov pro",
            "exp utility",
            "exp non-pro",
            "exp pro",
            "unfairness",
        )
    }

    /// Rule cards in the style of the paper's Section 6 boxes.
    pub fn rule_cards(&self) -> String {
        let mut s = String::new();
        for (i, r) in self.rules.iter().enumerate() {
            s.push_str(&format!(
                "({}) For [{}]: set [{}]\n    exp utility protected: {:.2}, non-protected: {:.2}, overall: {:.2} (p={:.4})\n",
                i + 1,
                r.grouping,
                r.intervention,
                r.utility.protected,
                r.utility.non_protected,
                r.utility.overall,
                r.utility.p_value,
            ));
        }
        s
    }
}

impl fmt::Display for SolutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} rules, coverage {:.1}% ({:.1}% protected), exp utility {:.2} ({:.2} pro / {:.2} non-pro), unfairness {:.2}{}",
            self.label,
            self.size(),
            self.summary.coverage * 100.0,
            self.summary.coverage_protected * 100.0,
            self.summary.expected,
            self.summary.expected_protected,
            self.summary.expected_non_protected,
            self.summary.unfairness,
            if self.constraints_met { "" } else { "  [CONSTRAINTS NOT MET]" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SolutionReport {
        SolutionReport {
            label: "group SP + group cov".into(),
            rules: Vec::new(),
            summary: RulesetUtility {
                expected: 27_934.76,
                expected_protected: 18_145.23,
                expected_non_protected: 28_144.58,
                coverage: 0.9795,
                coverage_protected: 0.9885,
                unfairness: 9_999.35,
            },
            constraints_met: true,
            n_grouping_patterns: 12,
            n_candidates: 10,
            timings: StepTimings {
                grouping: Duration::from_millis(5),
                intervention: Duration::from_millis(900),
                greedy: Duration::from_millis(20),
            },
            stats: SolveStats::default(),
            exec: None,
        }
    }

    #[test]
    fn table_row_contains_all_metrics() {
        let row = report().table_row();
        assert!(row.contains("group SP"));
        assert!(row.contains("97.95%"));
        assert!(row.contains("27934.76"));
        assert!(row.contains("9999.35"));
        // header aligns with the same column count
        assert!(SolutionReport::table_header().split_whitespace().count() >= 8);
    }

    #[test]
    fn display_flags_unmet_constraints() {
        let mut r = report();
        assert!(!r.to_string().contains("NOT MET"));
        r.constraints_met = false;
        assert!(r.to_string().contains("CONSTRAINTS NOT MET"));
    }

    #[test]
    fn timings_total() {
        let t = report().timings;
        assert_eq!(t.total(), Duration::from_millis(925));
    }
}
