//! # faircap-core
//!
//! FairCap — *Fair and Actionable Causal Prescription Ruleset* (SIGMOD 2025)
//! — selects a small set of prescription rules `(P_grp, P_int)` maximizing
//! expected utility (CATE-based, Definition 4.5) under fairness (§4.6) and
//! coverage (§4.5) constraints, via the three-step algorithm of §5:
//! Apriori grouping-pattern mining → fairness-aware intervention mining on a
//! positive-parent lattice → greedy ruleset selection.
//!
//! ```no_run
//! use faircap_core::{run, FairCapConfig, ProblemInput};
//! # fn problem_input() -> ProblemInput<'static> { unimplemented!() }
//! let input: ProblemInput = problem_input();
//! let report = run(&input, &FairCapConfig::default());
//! println!("{report}");
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod benefit;
pub mod config;
pub mod cost;
pub mod constraints;
pub mod decision_tree;
pub mod report;
pub mod rule;
pub mod utility;

pub use algorithm::{run, ProblemInput};
pub use benefit::benefit;
pub use config::{CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope};
pub use cost::{CostModel, CostPolicy};
pub use decision_tree::{all_structural_variants, choose_variant, FairnessKind, VariantAnswers};
pub use report::{SolutionReport, StepTimings};
pub use rule::{Rule, RuleUtility};
pub use utility::{ruleset_utility, RulesetUtility};
