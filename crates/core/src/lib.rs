//! # faircap-core
//!
//! FairCap — *Fair and Actionable Causal Prescription Ruleset* (SIGMOD 2025)
//! — selects a small set of prescription rules `(P_grp, P_int)` maximizing
//! expected utility (CATE-based, Definition 4.5) under fairness (§4.6) and
//! coverage (§4.5) constraints, via the three-step algorithm of §5:
//! Apriori grouping-pattern mining → fairness-aware intervention mining on a
//! positive-parent lattice → greedy ruleset selection.
//!
//! The entry point is the [`session`] engine API: build a validated,
//! long-lived [`PrescriptionSession`] once, then re-solve it under changing
//! constraints and estimators with full cache reuse:
//!
//! ```no_run
//! use faircap_core::{FairCap, FairnessConstraint, FairnessScope, SolveRequest};
//! # fn inputs() -> (faircap_table::DataFrame, faircap_causal::Dag, faircap_table::Pattern) { unimplemented!() }
//! let (df, dag, protected) = inputs();
//! let session = FairCap::builder()
//!     .data(df)
//!     .dag(dag)
//!     .outcome("salary")
//!     .immutable(["country", "age"])
//!     .mutable(["education", "training"])
//!     .protected(protected)
//!     .build()?;
//! let unconstrained = session.solve(&SolveRequest::default())?;
//! let fair = session.solve(&SolveRequest::default().fairness(
//!     FairnessConstraint::StatisticalParity { scope: FairnessScope::Group, epsilon: 10_000.0 },
//! ))?; // reuses every CATE estimate the first solve computed
//! println!("{unconstrained}\n{fair}");
//! # Ok::<(), faircap_core::Error>(())
//! ```
//!
//! Step 2's fan-out runs on the [`exec`] work-stealing executor (worker
//! count per request or via `FAIRCAP_WORKERS`), and a session's warmed
//! caches can be persisted and restored across processes via
//! [`snapshot`] — see [`PrescriptionSession::snapshot`] and
//! [`SessionBuilder::warm_start`].
//!
//! (The pre-0.2 one-shot `run()` shim and its `ProblemInput` were removed
//! after their one release of compatibility; `docs/building.md` covers the
//! migration.)
//!
//! [`PrescriptionSession::snapshot`]: session::PrescriptionSession::snapshot
//! [`SessionBuilder::warm_start`]: session::SessionBuilder::warm_start

#![warn(missing_docs)]

pub mod algorithm;
pub mod benefit;
pub mod config;
pub mod constraints;
pub mod cost;
pub mod decision_tree;
pub mod error;
pub mod exec;
pub mod registry;
pub mod report;
pub mod rule;
pub mod session;
pub mod snapshot;
pub mod utility;
pub mod wire;

pub use algorithm::greedy::GreedyStats;
pub use algorithm::intervention::{EvaluatedIntervention, GroupEvaluation};
pub use algorithm::{InterventionCache, InterventionKey};
pub use benefit::benefit;
pub use config::{CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope};
pub use cost::{CostModel, CostPolicy};
pub use decision_tree::{all_structural_variants, choose_variant, FairnessKind, VariantAnswers};
pub use error::{Error, Result};
pub use exec::ExecStats;
pub use faircap_mining::MiningStats;
pub use registry::{RegisteredSession, SessionRegistry, WarmBootInfo};
pub use report::{SolutionReport, SolveStats, StepTimings};
pub use rule::{Rule, RuleUtility};
pub use session::{FairCap, PrescriptionSession, SessionBuilder, SolveHotStats, SolveRequest};
pub use snapshot::{SessionSnapshot, SNAPSHOT_VERSION};
pub use utility::{ruleset_utility, RulesetUtility};
pub use wire::{solution_report_to_json, solve_request_from_json, Json};
