//! # faircap-core
//!
//! FairCap — *Fair and Actionable Causal Prescription Ruleset* (SIGMOD 2025)
//! — selects a small set of prescription rules `(P_grp, P_int)` maximizing
//! expected utility (CATE-based, Definition 4.5) under fairness (§4.6) and
//! coverage (§4.5) constraints, via the three-step algorithm of §5:
//! Apriori grouping-pattern mining → fairness-aware intervention mining on a
//! positive-parent lattice → greedy ruleset selection.
//!
//! The entry point is the [`session`] engine API: build a validated,
//! long-lived [`PrescriptionSession`] once, then re-solve it under changing
//! constraints and estimators with full cache reuse:
//!
//! ```no_run
//! use faircap_core::{FairCap, FairnessConstraint, FairnessScope, SolveRequest};
//! # fn inputs() -> (faircap_table::DataFrame, faircap_causal::Dag, faircap_table::Pattern) { unimplemented!() }
//! let (df, dag, protected) = inputs();
//! let session = FairCap::builder()
//!     .data(df)
//!     .dag(dag)
//!     .outcome("salary")
//!     .immutable(["country", "age"])
//!     .mutable(["education", "training"])
//!     .protected(protected)
//!     .build()?;
//! let unconstrained = session.solve(&SolveRequest::default())?;
//! let fair = session.solve(&SolveRequest::default().fairness(
//!     FairnessConstraint::StatisticalParity { scope: FairnessScope::Group, epsilon: 10_000.0 },
//! ))?; // reuses every CATE estimate the first solve computed
//! println!("{unconstrained}\n{fair}");
//! # Ok::<(), faircap_core::Error>(())
//! ```
//!
//! The pre-0.2 one-shot [`run`] free function remains as a deprecated shim
//! for one release.

#![warn(missing_docs)]

pub mod algorithm;
pub mod benefit;
pub mod config;
pub mod constraints;
pub mod cost;
pub mod decision_tree;
pub mod error;
pub mod report;
pub mod rule;
pub mod session;
pub mod utility;

#[allow(deprecated)]
pub use algorithm::run;
pub use algorithm::ProblemInput;
pub use benefit::benefit;
pub use config::{CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope};
pub use cost::{CostModel, CostPolicy};
pub use decision_tree::{all_structural_variants, choose_variant, FairnessKind, VariantAnswers};
pub use error::{Error, Result};
pub use report::{SolutionReport, StepTimings};
pub use rule::{Rule, RuleUtility};
pub use session::{FairCap, PrescriptionSession, SessionBuilder, SolveRequest};
pub use utility::{ruleset_utility, RulesetUtility};
