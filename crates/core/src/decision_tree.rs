//! The paper's Figure 2: a decision tree guiding users to the right problem
//! variant.

use crate::config::{CoverageConstraint, FairnessConstraint, FairnessScope};

/// Which fairness definition the user prefers (the SP/BGL choice is "left to
/// the user", §4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairnessKind {
    /// Statistical parity.
    StatisticalParity,
    /// Bounded group loss.
    BoundedGroupLoss,
}

/// Answers to Figure 2's questions.
#[derive(Debug, Clone, Copy)]
pub struct VariantAnswers {
    /// "Fairness constraint?" — do you need one at all?
    pub wants_fairness: bool,
    /// "Group fairness?" — group-level (true) or per-individual (false).
    pub group_fairness: bool,
    /// Which fairness definition to use when fairness is wanted.
    pub kind: FairnessKind,
    /// Fairness threshold (ε for SP, τ for BGL).
    pub threshold: f64,
    /// "Coverage requirement?" — do you need one at all?
    pub wants_coverage: bool,
    /// "For every rule?" — per-rule (true) or whole-ruleset (false).
    pub per_rule_coverage: bool,
    /// Coverage thresholds (θ, θ_p).
    pub theta: f64,
    /// Protected coverage threshold.
    pub theta_protected: f64,
}

/// Walk Figure 2 and produce the constraint pair for the chosen leaf.
pub fn choose_variant(a: &VariantAnswers) -> (FairnessConstraint, CoverageConstraint) {
    let fairness = if !a.wants_fairness {
        FairnessConstraint::None
    } else {
        let scope = if a.group_fairness {
            FairnessScope::Group
        } else {
            FairnessScope::Individual
        };
        match a.kind {
            FairnessKind::StatisticalParity => FairnessConstraint::StatisticalParity {
                scope,
                epsilon: a.threshold,
            },
            FairnessKind::BoundedGroupLoss => FairnessConstraint::BoundedGroupLoss {
                scope,
                tau: a.threshold,
            },
        }
    };
    let coverage = if !a.wants_coverage {
        CoverageConstraint::None
    } else if a.per_rule_coverage {
        CoverageConstraint::Rule {
            theta: a.theta,
            theta_protected: a.theta_protected,
        }
    } else {
        CoverageConstraint::Group {
            theta: a.theta,
            theta_protected: a.theta_protected,
        }
    };
    (fairness, coverage)
}

/// The nine structural leaves of Figure 2, instantiated with the given
/// thresholds — the rows of the paper's Table 4 (FairCap section).
pub fn all_structural_variants(
    kind: FairnessKind,
    fairness_threshold: f64,
    theta: f64,
    theta_protected: f64,
) -> Vec<(String, FairnessConstraint, CoverageConstraint)> {
    let mut out = Vec::with_capacity(9);
    let fairness_options: [(&str, Option<bool>); 3] = [
        ("no fairness", None),
        ("group fairness", Some(true)),
        ("individual fairness", Some(false)),
    ];
    let coverage_options: [(&str, Option<bool>); 3] = [
        ("no coverage", None),
        ("group coverage", Some(false)),
        ("rule coverage", Some(true)),
    ];
    for (flabel, fopt) in fairness_options {
        for (clabel, copt) in coverage_options {
            let answers = VariantAnswers {
                wants_fairness: fopt.is_some(),
                group_fairness: fopt.unwrap_or(true),
                kind,
                threshold: fairness_threshold,
                wants_coverage: copt.is_some(),
                per_rule_coverage: copt.unwrap_or(false),
                theta,
                theta_protected,
            };
            let (f, c) = choose_variant(&answers);
            out.push((format!("{flabel} + {clabel}"), f, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_constraints_leaf() {
        let (f, c) = choose_variant(&VariantAnswers {
            wants_fairness: false,
            group_fairness: true,
            kind: FairnessKind::StatisticalParity,
            threshold: 0.0,
            wants_coverage: false,
            per_rule_coverage: false,
            theta: 0.0,
            theta_protected: 0.0,
        });
        assert!(matches!(f, FairnessConstraint::None));
        assert!(matches!(c, CoverageConstraint::None));
    }

    #[test]
    fn group_sp_with_rule_coverage_leaf() {
        let (f, c) = choose_variant(&VariantAnswers {
            wants_fairness: true,
            group_fairness: true,
            kind: FairnessKind::StatisticalParity,
            threshold: 10_000.0,
            wants_coverage: true,
            per_rule_coverage: true,
            theta: 0.5,
            theta_protected: 0.5,
        });
        assert!(matches!(
            f,
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Group,
                ..
            }
        ));
        assert!(matches!(c, CoverageConstraint::Rule { .. }));
    }

    #[test]
    fn individual_bgl_leaf() {
        let (f, _) = choose_variant(&VariantAnswers {
            wants_fairness: true,
            group_fairness: false,
            kind: FairnessKind::BoundedGroupLoss,
            threshold: 0.1,
            wants_coverage: false,
            per_rule_coverage: false,
            theta: 0.0,
            theta_protected: 0.0,
        });
        assert!(matches!(
            f,
            FairnessConstraint::BoundedGroupLoss {
                scope: FairnessScope::Individual,
                tau
            } if tau == 0.1
        ));
    }

    #[test]
    fn nine_structural_leaves() {
        let variants = all_structural_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5);
        assert_eq!(variants.len(), 9);
        // first row is the no-constraints leaf
        assert!(matches!(variants[0].1, FairnessConstraint::None));
        assert!(matches!(variants[0].2, CoverageConstraint::None));
        // labels are unique
        let mut labels: Vec<&String> = variants.iter().map(|(l, _, _)| l).collect();
        labels.dedup();
        assert_eq!(labels.len(), 9);
        // with the SP/BGL doubling this yields the paper's 18 variants
        let bgl = all_structural_variants(FairnessKind::BoundedGroupLoss, 0.1, 0.3, 0.3);
        assert_eq!(variants.len() + bgl.len(), 18);
    }
}
