//! Fairness-penalized benefit of a rule (§5.2 for statistical parity, §5.4
//! for bounded group loss).
//!
//! During intervention mining FairCap does not pick the treatment with the
//! highest CATE but the one with the highest *benefit*: utility discounted
//! by how far the treatment is from being fair.

use crate::config::FairnessConstraint;
use crate::rule::RuleUtility;

/// Benefit of a utility triple under the given fairness constraint.
///
/// * No constraint → the plain utility (CauSumX behaviour).
/// * Statistical parity (§5.2):
///   `utility / (1 + utility_p̄ − utility_p)` when the non-protected group
///   gains more, else the plain utility.
/// * Bounded group loss (§5.4):
///   `utility / (1 + τ − utility_p)` when the protected utility falls short
///   of τ, else the plain utility.
///
/// Both penalties apply to group *and* individual scopes — the scope only
/// changes how constraints are enforced, not how treatments are scored.
pub fn benefit(utility: &RuleUtility, fairness: &FairnessConstraint) -> f64 {
    match fairness {
        FairnessConstraint::None => utility.overall,
        FairnessConstraint::StatisticalParity { .. } => {
            let gap = utility.non_protected - utility.protected;
            if gap >= 0.0 {
                utility.overall / (1.0 + gap)
            } else {
                utility.overall
            }
        }
        FairnessConstraint::BoundedGroupLoss { tau, .. } => {
            let shortfall = tau - utility.protected;
            if shortfall >= 0.0 {
                utility.overall / (1.0 + shortfall)
            } else {
                utility.overall
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairnessScope;

    fn u(overall: f64, protected: f64, non_protected: f64) -> RuleUtility {
        RuleUtility {
            overall,
            protected,
            non_protected,
            p_value: 0.0,
        }
    }

    #[test]
    fn no_constraint_is_identity() {
        assert_eq!(
            benefit(&u(42.0, 1.0, 99.0), &FairnessConstraint::None),
            42.0
        );
    }

    #[test]
    fn sp_penalizes_gap() {
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10.0,
        };
        // gap 9 → 100 / 10
        assert!((benefit(&u(100.0, 1.0, 10.0), &f) - 10.0).abs() < 1e-12);
        // protected gains more → no penalty
        assert_eq!(benefit(&u(100.0, 20.0, 10.0), &f), 100.0);
        // zero gap → utility/(1+0)
        assert_eq!(benefit(&u(100.0, 10.0, 10.0), &f), 100.0);
    }

    #[test]
    fn sp_prefers_fair_over_high_utility() {
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10.0,
        };
        // High-utility unfair (38 vs 11, on $k scale) loses to lower-utility
        // fair (14 vs 12) — the core behavioural claim of step 2.
        let unfair = benefit(&u(30_000.0, 11_000.0, 38_000.0), &f);
        let fair = benefit(&u(13_000.0, 12_000.0, 14_000.0), &f);
        assert!(fair > unfair, "fair {fair} should beat unfair {unfair}");
    }

    #[test]
    fn bgl_penalizes_shortfall() {
        let f = FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.3,
        };
        // protected 0.1 < τ: penalty /(1 + 0.2)
        let b = benefit(&u(0.4, 0.1, 0.45), &f);
        assert!((b - 0.4 / 1.2).abs() < 1e-12);
        // protected above τ: no penalty
        assert_eq!(benefit(&u(0.4, 0.35, 0.45), &f), 0.4);
    }

    #[test]
    fn scope_does_not_change_score() {
        let g = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 1.0,
        };
        let i = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon: 1.0,
        };
        let triple = u(50.0, 5.0, 20.0);
        assert_eq!(benefit(&triple, &g), benefit(&triple, &i));
    }
}
