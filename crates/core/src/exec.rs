//! Work-stealing executor — re-exported from [`faircap_causal::exec`].
//!
//! The executor moved down into the causal crate so the estimator hot
//! path (columnar kernels, KD-tree matching query batches) can fan out
//! without a dependency cycle. `faircap_core::exec` remains the canonical
//! path for solve-level callers; [`ExecStats`] is the same type in both
//! crates, so reports and wire encoding are unaffected.

pub use faircap_causal::exec::{resolve_workers, run_work_stealing, ExecStats, WORKERS_ENV};
