//! Session snapshots: persist a [`PrescriptionSession`]'s warmed caches and
//! restore them into a new session (warm start).
//!
//! A snapshot captures everything estimation-related that a session learns
//! while solving — backdoor adjustment sets, treated-row masks, and CATE
//! estimates keyed by `(estimator name, subgroup fingerprint, intervention
//! pattern)`, including the negative "not estimable" verdicts. Restoring it
//! into a session built over the *same* data and outcome
//! ([`SessionBuilder::warm_start`]) makes the first solve behave like a
//! re-solve: zero estimate-cache misses (asserted by
//! `tests/integration_snapshot.rs` and by the CI round-trip job).
//!
//! # Format and versioning
//!
//! The wire format is a line-oriented, token-escaped text format with an
//! explicit version header (`faircap-snapshot v2`). The compatibility
//! policy is:
//!
//! * decoding rejects any snapshot whose major version is unknown with a
//!   typed [`Error::Snapshot`] — a stale snapshot never silently corrupts
//!   a session (the engine would just re-estimate, but a half-imported
//!   cache is harder to reason about than none);
//! * within a version, unknown *sections* are rejected too (the format is
//!   a closed enumeration per version);
//! * restoring validates the outcome name, row count, DAG fingerprint, and
//!   data-content fingerprint against the session being built — a snapshot
//!   taken under a different DAG or different data is refused, because its
//!   adjustment sets, treated masks, and estimates would be silently wrong
//!   for the new instance.
//!
//! Floats are serialized as IEEE-754 bit patterns (hex), so estimates —
//! including infinities produced by degenerate designs — round-trip
//! *exactly*; a warm solve is bit-identical to the cold solve that produced
//! the snapshot.
//!
//! [`PrescriptionSession`]: crate::session::PrescriptionSession
//! [`SessionBuilder::warm_start`]: crate::session::SessionBuilder::warm_start

use crate::error::{Error, Result};
use faircap_causal::{CateEngineState, Dag, Estimate};
use faircap_table::{CmpOp, DataFrame, FnvHasher, Mask, Pattern, Predicate, Value};
use std::fmt::Write as _;

/// Serialized-cache bundle of one session. Produced by
/// [`PrescriptionSession::snapshot`](crate::session::PrescriptionSession::snapshot),
/// consumed by
/// [`SessionBuilder::warm_start`](crate::session::SessionBuilder::warm_start).
#[derive(Debug, Clone, Default)]
pub struct SessionSnapshot {
    /// Outcome attribute of the originating session (validated on restore).
    pub outcome: String,
    /// Row count of the originating session's frame (validated on restore).
    pub n_rows: usize,
    /// Fingerprint of the originating session's DAG
    /// ([`dag_fingerprint`]; validated on restore — adjustment sets are
    /// DAG-derived, so a changed DAG invalidates the whole snapshot).
    pub dag_fp: u64,
    /// Fingerprint of the originating session's data contents
    /// ([`data_fingerprint`]; validated on restore — treated masks and
    /// estimates are data-derived).
    pub data_fp: u64,
    /// The engine cache state: adjustments, treated masks, estimates.
    pub state: CateEngineState,
}

/// Order-sensitive fingerprint of a frame's column names and full contents.
/// One pass over every cell — microseconds to low milliseconds at this
/// workload's scale, paid once per snapshot/restore.
///
/// Computed with the in-repo stable [`FnvHasher`], never `DefaultHasher`:
/// these fingerprints are persisted inside snapshots, so they must be
/// identical across processes, platforms, and Rust toolchain versions.
pub fn data_fingerprint(df: &DataFrame) -> u64 {
    let mut h = FnvHasher::new();
    h.write_u64_stable(df.n_rows() as u64);
    for name in df.names() {
        h.write_str_stable(name);
        let col = df.column(name).expect("iterating the frame's own names");
        for row in 0..df.n_rows() {
            write_value_stable(&mut h, &col.get(row));
        }
    }
    h.finish64()
}

/// Feed one cell value into a stable digest: a one-byte type tag followed
/// by a fixed-width (or length-prefixed) encoding, so values of different
/// types can never collide byte-wise.
fn write_value_stable(h: &mut FnvHasher, value: &Value) {
    match value {
        Value::Null => h.write_u8_stable(0),
        Value::Int(v) => {
            h.write_u8_stable(1);
            h.write_i64_stable(*v);
        }
        Value::Float(v) => {
            h.write_u8_stable(2);
            h.write_u64_stable(v.to_bits());
        }
        Value::Bool(b) => {
            h.write_u8_stable(3);
            h.write_u8_stable(u8::from(*b));
        }
        Value::Str(s) => {
            h.write_u8_stable(4);
            h.write_str_stable(s);
        }
    }
}

/// Fingerprint of a DAG's node and edge structure (via its DOT rendering,
/// which lists nodes and edges deterministically), using the same stable
/// [`FnvHasher`] as [`data_fingerprint`].
pub fn dag_fingerprint(dag: &Dag) -> u64 {
    let mut h = FnvHasher::new();
    h.write_str_stable(&dag.to_dot());
    h.finish64()
}

/// Current snapshot format version (the `v2` of the header line).
///
/// v1 → v2: every persisted fingerprint (group, DAG, data) moved from
/// `DefaultHasher` — whose output is only stable within one Rust compiler
/// release — to the in-repo FNV-1a, so snapshots survive toolchain
/// upgrades. v1 snapshots are refused with a typed error rather than
/// silently degrading to partial warm starts.
pub const SNAPSHOT_VERSION: u32 = 2;

const HEADER: &str = "faircap-snapshot";

impl SessionSnapshot {
    /// Serialize to the versioned text format described in the
    /// [module docs](self).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER} v{SNAPSHOT_VERSION}");
        let _ = writeln!(out, "outcome {}", esc(&self.outcome));
        let _ = writeln!(out, "rows {}", self.n_rows);
        let _ = writeln!(out, "dag {:x}", self.dag_fp);
        let _ = writeln!(out, "data {:x}", self.data_fp);
        let _ = writeln!(out, "adjustments {}", self.state.adjustments.len());
        for (treatment, adjustment) in &self.state.adjustments {
            let mut line = format!("a {}", treatment.len());
            for attr in treatment {
                let _ = write!(line, " {}", esc(attr));
            }
            match adjustment {
                None => line.push_str(" -"),
                Some(attrs) => {
                    let _ = write!(line, " {}", attrs.len());
                    for attr in attrs {
                        let _ = write!(line, " {}", esc(attr));
                    }
                }
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "treated {}", self.state.treated.len());
        for (pattern, mask) in &self.state.treated {
            let mut line = String::from("t");
            push_pattern(&mut line, pattern);
            let _ = write!(line, " {}", mask.len());
            for word in mask.as_words() {
                let _ = write!(line, " {word:x}");
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "estimates {}", self.state.estimates.len());
        for (name, group_fp, pattern, estimate) in &self.state.estimates {
            let mut line = format!("e {} {group_fp:x}", esc(name));
            push_pattern(&mut line, pattern);
            match estimate {
                None => line.push_str(" -"),
                Some(e) => {
                    let _ = write!(
                        line,
                        " {:x} {:x} {:x} {:x} {} {}",
                        e.cate.to_bits(),
                        e.std_err.to_bits(),
                        e.t_stat.to_bits(),
                        e.p_value.to_bits(),
                        e.n_treated,
                        e.n_control
                    );
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Parse the text format; rejects unknown versions and malformed input
    /// with [`Error::Snapshot`].
    pub fn decode(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| snap_err("empty snapshot"))?;
        let version = header
            .strip_prefix(HEADER)
            .map(str::trim)
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| snap_err(format!("not a faircap snapshot (header `{header}`)")))?;
        if version != SNAPSHOT_VERSION {
            let hint = if version < SNAPSHOT_VERSION {
                "; pre-v2 snapshots used toolchain-dependent fingerprints — re-solve and re-save to regenerate"
            } else {
                ""
            };
            return Err(snap_err(format!(
                "snapshot format v{version} is not supported (this build reads v{SNAPSHOT_VERSION}{hint})"
            )));
        }

        let outcome_line = next_line(&mut lines, "outcome")?;
        let outcome = unesc(field(&outcome_line, "outcome")?)?;
        let rows_line = next_line(&mut lines, "rows")?;
        let n_rows: usize = parse_num(field(&rows_line, "rows")?, "row count")?;
        let dag_line = next_line(&mut lines, "dag fingerprint")?;
        let dag_fp = parse_bits(field(&dag_line, "dag")?, "dag fingerprint")?;
        let data_line = next_line(&mut lines, "data fingerprint")?;
        let data_fp = parse_bits(field(&data_line, "data")?, "data fingerprint")?;

        let mut snapshot = SessionSnapshot {
            outcome,
            n_rows,
            dag_fp,
            data_fp,
            state: CateEngineState::default(),
        };

        let n: usize = section_count(&mut lines, "adjustments")?;
        for _ in 0..n {
            let line = next_line(&mut lines, "adjustment record")?;
            let mut toks = Tokens::new(&line, "adjustment record");
            toks.literal("a")?;
            let n_treat: usize = toks.num("treatment-attr count")?;
            let treatment: Vec<String> = (0..n_treat)
                .map(|_| toks.string("treatment attr"))
                .collect::<Result<_>>()?;
            let adjustment = match toks.raw("adjustment-set count")? {
                "-" => None,
                count => {
                    let n_adj: usize = parse_num(count, "adjustment-set count")?;
                    Some(
                        (0..n_adj)
                            .map(|_| toks.string("adjustment attr"))
                            .collect::<Result<Vec<String>>>()?,
                    )
                }
            };
            snapshot.state.adjustments.push((treatment, adjustment));
        }

        let n: usize = section_count(&mut lines, "treated")?;
        for _ in 0..n {
            let line = next_line(&mut lines, "treated-mask record")?;
            let mut toks = Tokens::new(&line, "treated-mask record");
            toks.literal("t")?;
            let pattern = toks.pattern()?;
            let mask = toks.mask()?;
            snapshot.state.treated.push((pattern, mask));
        }

        let n: usize = section_count(&mut lines, "estimates")?;
        for _ in 0..n {
            let line = next_line(&mut lines, "estimate record")?;
            let mut toks = Tokens::new(&line, "estimate record");
            toks.literal("e")?;
            let name = toks.string("estimator name")?;
            let group_fp = u64::from_str_radix(toks.raw("group fingerprint")?, 16)
                .map_err(|e| snap_err(format!("group fingerprint: {e}")))?;
            let pattern = toks.pattern()?;
            let estimate = match toks.raw("estimate")? {
                "-" => None,
                first => Some(Estimate {
                    cate: f64::from_bits(parse_bits(first, "cate")?),
                    std_err: f64::from_bits(toks.bits("std_err")?),
                    t_stat: f64::from_bits(toks.bits("t_stat")?),
                    p_value: f64::from_bits(toks.bits("p_value")?),
                    n_treated: toks.num("n_treated")?,
                    n_control: toks.num("n_control")?,
                }),
            };
            snapshot
                .state
                .estimates
                .push((name, group_fp, pattern, estimate));
        }

        if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
            return Err(snap_err(format!("trailing content `{extra}`")));
        }
        Ok(snapshot)
    }
}

fn snap_err(msg: impl Into<String>) -> Error {
    Error::Snapshot(msg.into())
}

fn next_line<'a>(lines: &mut std::str::Lines<'a>, what: &str) -> Result<String> {
    lines
        .next()
        .map(str::to_owned)
        .ok_or_else(|| snap_err(format!("truncated snapshot: missing {what}")))
}

/// Second whitespace-separated field of a `key value` line, checking `key`.
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(key) {
        return Err(snap_err(format!("expected `{key} …`, got `{line}`")));
    }
    parts
        .next()
        .ok_or_else(|| snap_err(format!("`{key}` line has no value")))
}

fn section_count(lines: &mut std::str::Lines<'_>, key: &str) -> Result<usize> {
    let line = next_line(lines, key)?;
    parse_num(field(&line, key)?, key)
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T>
where
    T::Err: std::fmt::Display,
{
    tok.parse()
        .map_err(|e| snap_err(format!("bad {what} `{tok}`: {e}")))
}

fn parse_bits(tok: &str, what: &str) -> Result<u64> {
    u64::from_str_radix(tok, 16).map_err(|e| snap_err(format!("bad {what} bits `{tok}`: {e}")))
}

/// Append a pattern as ` {n} ({attr} {op} {value})*`.
fn push_pattern(line: &mut String, pattern: &Pattern) {
    let _ = write!(line, " {}", pattern.len());
    for pred in pattern.predicates() {
        let _ = write!(
            line,
            " {} {} {}",
            esc(&pred.attr),
            op_token(pred.op),
            value_token(&pred.value)
        );
    }
}

fn op_token(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn parse_op(tok: &str) -> Result<CmpOp> {
    Ok(match tok {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(snap_err(format!("unknown comparison op `{other}`"))),
    })
}

fn value_token(value: &Value) -> String {
    match value {
        Value::Null => "-".into(),
        Value::Int(v) => format!("i{v}"),
        Value::Float(v) => format!("f{:x}", v.to_bits()),
        Value::Bool(b) => (if *b { "b1" } else { "b0" }).into(),
        Value::Str(s) => format!("s{}", esc(s)),
    }
}

fn parse_value(tok: &str) -> Result<Value> {
    if tok == "-" {
        return Ok(Value::Null);
    }
    if !tok.is_char_boundary(1) {
        return Err(snap_err(format!("unknown value token `{tok}`")));
    }
    let body = &tok[1..];
    Ok(match tok.as_bytes()[0] {
        b'i' => Value::Int(parse_num(body, "int value")?),
        b'f' => Value::Float(f64::from_bits(parse_bits(body, "float value")?)),
        b'b' => Value::Bool(body == "1"),
        b's' => Value::Str(unesc(body)?),
        _ => return Err(snap_err(format!("unknown value token `{tok}`"))),
    })
}

/// Percent-escape so a string survives whitespace tokenization. The
/// decoder splits on *Unicode* whitespace (`split_whitespace`), so every
/// `char::is_whitespace` character must be escaped — the common ASCII four
/// get short two-digit escapes, any other whitespace (NBSP, em-space, …)
/// gets `%u<hex>;`. The empty string is encoded as `%e` (and a literal
/// `%e` round-trips because `%` itself is always escaped).
fn esc(s: &str) -> String {
    if s.is_empty() {
        return "%e".into();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other if other.is_whitespace() => {
                let _ = write!(out, "%u{:x};", other as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn unesc(s: &str) -> Result<String> {
    if s == "%e" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        if chars.peek() == Some(&'u') {
            chars.next();
            let hex: String = chars.by_ref().take_while(|&c| c != ';').collect();
            let cp = u32::from_str_radix(&hex, 16)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| snap_err(format!("bad escape `%u{hex};` in `{s}`")))?;
            out.push(cp);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match pair.as_str() {
            "25" => out.push('%'),
            "20" => out.push(' '),
            "09" => out.push('\t'),
            "0A" => out.push('\n'),
            "0D" => out.push('\r'),
            other => return Err(snap_err(format!("bad escape `%{other}` in `{s}`"))),
        }
    }
    Ok(out)
}

/// Whitespace token reader over one record line.
struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
    what: &'a str,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str, what: &'a str) -> Self {
        Tokens {
            iter: line.split_whitespace(),
            what,
        }
    }

    fn raw(&mut self, field: &str) -> Result<&'a str> {
        self.iter
            .next()
            .ok_or_else(|| snap_err(format!("{}: missing {field}", self.what)))
    }

    fn literal(&mut self, expected: &str) -> Result<()> {
        let tok = self.raw("record tag")?;
        if tok != expected {
            return Err(snap_err(format!(
                "{}: expected `{expected}`, got `{tok}`",
                self.what
            )));
        }
        Ok(())
    }

    fn string(&mut self, field: &str) -> Result<String> {
        unesc(self.raw(field)?)
    }

    fn num<T: std::str::FromStr>(&mut self, field: &str) -> Result<T>
    where
        T::Err: std::fmt::Display,
    {
        parse_num(self.raw(field)?, field)
    }

    fn bits(&mut self, field: &str) -> Result<u64> {
        parse_bits(self.raw(field)?, field)
    }

    fn pattern(&mut self) -> Result<Pattern> {
        let n: usize = self.num("predicate count")?;
        let mut preds = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = self.string("predicate attr")?;
            let op = parse_op(self.raw("predicate op")?)?;
            let value = parse_value(self.raw("predicate value")?)?;
            preds.push(Predicate::new(&attr, op, value));
        }
        Ok(Pattern::new(preds))
    }

    fn mask(&mut self) -> Result<Mask> {
        let len: usize = self.num("mask length")?;
        let n_words = len.div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(self.bits("mask word")?);
        }
        Mask::from_words(len, words)
            .ok_or_else(|| snap_err(format!("{}: inconsistent mask words", self.what)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionSnapshot {
        let p1 = Pattern::of_eq(&[("training", Value::from("yes mentor"))]);
        let p2 = Pattern::new(vec![
            Predicate::new("age", CmpOp::Ge, Value::Int(30)),
            Predicate::new("score", CmpOp::Lt, Value::Float(0.1)),
            Predicate::eq("remote", Value::Bool(true)),
        ]);
        let est = Estimate {
            cate: 12.345678901234567,
            std_err: 0.25,
            t_stat: 49.3827,
            p_value: 1.2e-300,
            n_treated: 123,
            n_control: 456,
        };
        let degenerate = Estimate {
            cate: 5.0,
            std_err: 0.0,
            t_stat: f64::INFINITY,
            p_value: 0.0,
            n_treated: 10,
            n_control: 10,
        };
        SessionSnapshot {
            outcome: "salary%final\u{00a0}edition".into(),
            n_rows: 130,
            dag_fp: 0x1234_5678_9abc_def0,
            data_fp: 0x0fed_cba9_8765_4321,
            state: CateEngineState {
                adjustments: vec![
                    (
                        vec!["training".into()],
                        Some(vec!["country".into(), "a b".into()]),
                    ),
                    (vec!["x".into(), "y".into()], None),
                ],
                treated: vec![
                    (p1.clone(), Mask::from_indices(130, &[0, 63, 64, 129])),
                    (p2.clone(), Mask::zeros(130)),
                ],
                estimates: vec![
                    ("linear".into(), 0xdead_beef, p1, Some(est)),
                    ("matching".into(), 7, p2, Some(degenerate)),
                    ("linear".into(), 42, Pattern::empty(), None),
                ],
            },
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let snap = sample();
        let text = snap.encode();
        let back = SessionSnapshot::decode(&text).unwrap();
        assert_eq!(back.outcome, snap.outcome);
        assert_eq!(back.n_rows, snap.n_rows);
        assert_eq!(back.dag_fp, snap.dag_fp);
        assert_eq!(back.data_fp, snap.data_fp);
        assert_eq!(back.state.adjustments, snap.state.adjustments);
        assert_eq!(back.state.treated, snap.state.treated);
        assert_eq!(back.state.estimates.len(), snap.state.estimates.len());
        for (a, b) in back.state.estimates.iter().zip(&snap.state.estimates) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
            match (&a.3, &b.3) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    // Bit-exact round trip, including infinities.
                    assert_eq!(x.cate.to_bits(), y.cate.to_bits());
                    assert_eq!(x.t_stat.to_bits(), y.t_stat.to_bits());
                    assert_eq!(x.p_value.to_bits(), y.p_value.to_bits());
                    assert_eq!((x.n_treated, x.n_control), (y.n_treated, y.n_control));
                }
                other => panic!("estimate presence mismatch: {other:?}"),
            }
        }
        // Round-tripping again is a fixpoint.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let snap = sample();
        let text = snap.encode().replacen("v2", "v99", 1);
        let err = SessionSnapshot::decode(&text).unwrap_err();
        assert!(matches!(err, Error::Snapshot(_)));
        assert!(err.to_string().contains("v99"), "{err}");
    }

    #[test]
    fn outdated_v1_is_refused_with_regeneration_hint() {
        // A v1 snapshot (pre-FNV fingerprints) must be refused outright —
        // its persisted group/data/DAG fingerprints were DefaultHasher
        // output, valid only for the toolchain that wrote them.
        let text = sample().encode().replacen("v2", "v1", 1);
        let err = SessionSnapshot::decode(&text).unwrap_err();
        assert!(matches!(err, Error::Snapshot(_)));
        assert!(err.to_string().contains("v1"), "{err}");
        assert!(err.to_string().contains("re-save"), "{err}");
    }

    #[test]
    fn fingerprints_are_toolchain_stable_constants() {
        // Pinned digests: if either ever changes, the snapshot format has
        // silently forked and SNAPSHOT_VERSION must be bumped.
        let df = DataFrame::builder()
            .cat("grp", &["a", "b"])
            .float("o", vec![1.5, -2.0])
            .build()
            .unwrap();
        assert_eq!(data_fingerprint(&df), 0x93c9_bd47_487b_79df);
        let dag = Dag::parse_edge_list("grp -> o").unwrap();
        assert_eq!(dag_fingerprint(&dag), 0xfafb_3992_c436_be05);
    }

    #[test]
    fn garbage_is_rejected_with_typed_errors() {
        for bad in [
            "",
            "not a snapshot",
            "faircap-snapshot v2\noutcome o\nrows x",
            "faircap-snapshot v2\noutcome o\nrows 10\nadjustments 1\n",
            "faircap-snapshot v2\noutcome o\nrows 10\nadjustments 0\ntreated 0\nestimates 1\ne linear zz 0 -",
        ] {
            assert!(
                matches!(SessionSnapshot::decode(bad), Err(Error::Snapshot(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn trailing_content_is_rejected() {
        let mut text = sample().encode();
        text.push_str("surprise\n");
        assert!(matches!(
            SessionSnapshot::decode(&text),
            Err(Error::Snapshot(_))
        ));
    }

    #[test]
    fn escaping_round_trips_edge_cases() {
        for s in [
            "",
            " ",
            "%",
            "%e",
            "a b",
            "tab\there",
            "new\nline",
            "%%20",
            "%u00a0;",
            // Non-ASCII whitespace must survive `split_whitespace`
            // tokenization: NBSP, em-space, line separator.
            "nb\u{00a0}sp",
            "em\u{2003}space\u{2028}line",
        ] {
            assert_eq!(unesc(&esc(s)).unwrap(), s, "escape of {s:?}");
            assert!(
                esc(s).split_whitespace().count() <= 1,
                "escaped form of {s:?} must be one token"
            );
        }
    }
}
