//! The long-lived engine API: [`FairCap::builder`] →
//! [`PrescriptionSession`] → [`PrescriptionSession::solve`].
//!
//! The paper's workload is inherently interactive: one Prescription Ruleset
//! Selection instance (data + DAG + outcome + attribute split + protected
//! group) is re-solved many times under different fairness/coverage
//! constraints and estimators (Tables 3–6 all re-solve one dataset this
//! way). A session is built — and validated — once, then
//! [`solve`](PrescriptionSession::solve) is called per constraint
//! combination:
//!
//! * the [`CateEngine`]'s adjustment/treated/estimate caches persist across
//!   solves, so re-solving under a new fairness constraint performs **no
//!   redundant CATE estimation** (observable via
//!   [`PrescriptionSession::cache_stats`]);
//! * grouping-pattern mining output is cached per effective Apriori
//!   parameters;
//! * the estimator is chosen per request ([`SolveRequest::estimator`]), so
//!   comparing estimators does not rebuild the session;
//! * every failure mode is a typed [`Error`] — nothing on the build or
//!   solve path panics on user data.

use crate::algorithm::greedy;
use crate::algorithm::{grouping, mine_all_interventions, InterventionCache};
use crate::config::{CoverageConstraint, FairCapConfig, FairnessConstraint};
use crate::error::{Error, Result};
use crate::report::{SolutionReport, SolveStats, StepTimings};
use crate::snapshot::SessionSnapshot;
use faircap_causal::{CacheStats, CateEngine, Dag, Estimator, EstimatorKind};
use faircap_mining::{FrequentPattern, MiningStats};
use faircap_obs::SpanHandle;
use faircap_table::{CacheCounters, DataFrame, Mask, Pattern, ShardedLruCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lock shards of the grouping-pattern cache. Distinct Apriori parameter
/// sets are few, so a handful of shards suffices.
const GROUPING_CACHE_SHARDS: usize = 4;

/// Lock shards of the intervention-evaluation cache. One entry per
/// (grouping pattern, estimator, lattice parameters), looked up
/// concurrently by the Step-2 workers — shard more aggressively than the
/// grouping cache.
const INTERVENTION_CACHE_SHARDS: usize = 8;

/// Entry point to the engine API.
///
/// ```no_run
/// use faircap_core::{FairCap, SolveRequest};
/// # fn inputs() -> (faircap_table::DataFrame, faircap_causal::Dag, faircap_table::Pattern) { unimplemented!() }
/// let (df, dag, protected) = inputs();
/// let session = FairCap::builder()
///     .data(df)
///     .dag(dag)
///     .outcome("salary")
///     .immutable(["country", "age"])
///     .mutable(["education", "training"])
///     .protected(protected)
///     .build()?;
/// let report = session.solve(&SolveRequest::default())?;
/// println!("{report}");
/// # Ok::<(), faircap_core::Error>(())
/// ```
pub struct FairCap;

impl FairCap {
    /// Start building a [`PrescriptionSession`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }
}

/// Builder for [`PrescriptionSession`]; validates the whole problem
/// instance up front so `build` is the only place construction can fail.
#[derive(Default)]
pub struct SessionBuilder {
    df: Option<Arc<DataFrame>>,
    dag: Option<Arc<Dag>>,
    outcome: Option<String>,
    immutable: Vec<String>,
    mutable: Vec<String>,
    protected: Option<Pattern>,
    warm_start: Option<SessionSnapshot>,
}

impl SessionBuilder {
    /// The database `D`. Accepts an owned frame or a shared `Arc`.
    pub fn data(mut self, df: impl Into<Arc<DataFrame>>) -> Self {
        self.df = Some(df.into());
        self
    }

    /// The causal DAG `G_D`. Accepts an owned DAG or a shared `Arc`.
    pub fn dag(mut self, dag: impl Into<Arc<Dag>>) -> Self {
        self.dag = Some(dag.into());
        self
    }

    /// Outcome attribute `O` (numeric or boolean column).
    pub fn outcome(mut self, outcome: impl Into<String>) -> Self {
        self.outcome = Some(outcome.into());
        self
    }

    /// Immutable attributes `I` (grouping-pattern vocabulary).
    pub fn immutable<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.immutable = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Mutable attributes `M` (intervention-pattern vocabulary).
    pub fn mutable<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.mutable = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Protected-group pattern `P_p`.
    pub fn protected(mut self, pattern: Pattern) -> Self {
        self.protected = Some(pattern);
        self
    }

    /// Warm-start the session from a [`SessionSnapshot`] taken on an
    /// earlier session over the same data and outcome (see
    /// [`PrescriptionSession::snapshot`]). The snapshot's adjustment sets,
    /// treated masks, and estimates are imported into the engine caches, so
    /// the first solve behaves like a re-solve: a solve repeating the
    /// snapshotted workload performs **zero** estimate-cache misses.
    ///
    /// `build` fails with [`Error::Snapshot`] when the snapshot's outcome
    /// or row count disagrees with the session being built.
    pub fn warm_start(mut self, snapshot: SessionSnapshot) -> Self {
        self.warm_start = Some(snapshot);
        self
    }

    /// Validate the instance and assemble the session.
    pub fn build(self) -> Result<PrescriptionSession> {
        let df = self.df.ok_or(Error::MissingField("data"))?;
        let dag = self.dag.ok_or(Error::MissingField("dag"))?;
        let outcome = self.outcome.ok_or(Error::MissingField("outcome"))?;
        let protected = self.protected.ok_or(Error::MissingField("protected"))?;

        for (role, attrs) in [("immutable", &self.immutable), ("mutable", &self.mutable)] {
            for a in attrs {
                if !df.has_column(a) {
                    return Err(Error::UnknownAttribute {
                        role,
                        name: a.clone(),
                    });
                }
            }
        }
        for a in &self.immutable {
            if self.mutable.contains(a) {
                return Err(Error::ConflictingRoles {
                    name: a.clone(),
                    roles: ("immutable", "mutable"),
                });
            }
        }
        for (role, attrs) in [("immutable", &self.immutable), ("mutable", &self.mutable)] {
            if attrs.contains(&outcome) {
                return Err(Error::ConflictingRoles {
                    name: outcome.clone(),
                    roles: (role, "outcome"),
                });
            }
        }
        // Validates outcome existence and type — before the DAG-membership
        // check, so a missing column is reported as the missing column
        // rather than as a DAG problem.
        let engine = CateEngine::new(Arc::clone(&df), Arc::clone(&dag), &outcome)?;
        if !dag.has_node(&outcome) {
            return Err(Error::OutcomeNotInDag { outcome });
        }
        // Validates the protected pattern's columns; an empty match is fine
        // (protected metrics then degrade to 0, as in the paper's Eq. 5).
        let protected_mask = protected.coverage(&df)?;

        if let Some(snapshot) = self.warm_start {
            if snapshot.outcome != outcome {
                return Err(Error::Snapshot(format!(
                    "snapshot was taken for outcome `{}`, session outcome is `{outcome}`",
                    snapshot.outcome
                )));
            }
            if snapshot.n_rows != df.n_rows() {
                return Err(Error::Snapshot(format!(
                    "snapshot was taken over {} rows, session data has {}",
                    snapshot.n_rows,
                    df.n_rows()
                )));
            }
            // Adjustment sets are DAG-derived and treated masks / estimates
            // are data-derived: importing either under a changed DAG or
            // changed data would silently produce wrong causal answers, so
            // a mismatched snapshot is refused outright.
            if snapshot.dag_fp != crate::snapshot::dag_fingerprint(&dag) {
                return Err(Error::Snapshot(
                    "snapshot was taken under a different causal DAG".into(),
                ));
            }
            if snapshot.data_fp != crate::snapshot::data_fingerprint(&df) {
                return Err(Error::Snapshot(
                    "snapshot was taken over different data contents".into(),
                ));
            }
            engine.import_state(snapshot.state);
        }

        Ok(PrescriptionSession {
            df,
            dag,
            outcome,
            immutable: self.immutable,
            mutable: self.mutable,
            protected,
            protected_mask,
            engine,
            groupings: ShardedLruCache::unbounded(GROUPING_CACHE_SHARDS),
            interventions: ShardedLruCache::unbounded(INTERVENTION_CACHE_SHARDS),
            hot: SolveHotAccum::default(),
        })
    }
}

/// One solve invocation: the constraint system plus algorithm knobs, and an
/// optional estimator override.
///
/// `config` carries the constraints (`fairness`, `coverage`), the rule
/// budget (`max_rules`, i.e. the `k` of the greedy phase), and every other
/// knob of [`FairCapConfig`]. `estimator` — when set — overrides
/// `config.estimator` with an arbitrary [`Estimator`] implementation,
/// allowing per-request estimator selection without rebuilding the session.
///
/// # Examples
///
/// Requests are built fluently; the same session can serve each of these
/// without re-estimating anything it already estimated:
///
/// ```
/// use faircap_causal::EstimatorKind;
/// use faircap_core::{FairnessConstraint, FairnessScope, SolveRequest};
///
/// let fair_aipw = SolveRequest::default()
///     .fairness(FairnessConstraint::StatisticalParity {
///         scope: FairnessScope::Group,
///         epsilon: 10_000.0,
///     })
///     .max_rules(5)
///     .estimator_kind(EstimatorKind::Aipw);
/// assert_eq!(fair_aipw.config.max_rules, 5);
/// assert_eq!(fair_aipw.config.estimator, EstimatorKind::Aipw);
/// ```
#[derive(Clone)]
pub struct SolveRequest {
    /// Constraints and algorithm knobs.
    pub config: FairCapConfig,
    /// Estimator override; `None` uses `config.estimator`.
    pub estimator: Option<Arc<dyn Estimator>>,
    /// Step-2 executor worker count. `None` falls back to the
    /// `FAIRCAP_WORKERS` environment variable, then to
    /// `available_parallelism` (see [`crate::exec::resolve_workers`]).
    pub workers: Option<usize>,
    /// LRU bound on the session's CATE estimate cache, applied before the
    /// solve runs. `None` leaves the current bound (unbounded by default).
    pub estimate_cache_bound: Option<usize>,
    /// LRU bound on the session's grouping-pattern cache, applied before
    /// the solve runs. `None` leaves the current bound (unbounded by
    /// default).
    pub grouping_cache_bound: Option<usize>,
    /// LRU bound on the session's intervention-evaluation cache, applied
    /// before the solve runs. `None` leaves the current bound (unbounded
    /// by default).
    pub intervention_cache_bound: Option<usize>,
    /// Whether this solve may read and populate the session's mining
    /// caches (grouping patterns and intervention evaluations). On by
    /// default; benchmarks turn it off to measure the uncached path.
    pub use_solve_cache: bool,
    /// Whether the caller wants the span tree of this solve echoed back
    /// (the wire-level `trace: true` field). The session itself only
    /// records spans when [`SolveRequest::span`] is set; this flag tells
    /// the serving layer to embed the finished tree in the response.
    pub trace: bool,
    /// Tracing parent: when set, the solve records `step1_grouping` /
    /// `step2_interventions` / `step3_greedy` child spans (and, beneath
    /// Step 2, per-group evaluation and per-estimate spans) under this
    /// handle. `None` (the default) traces nothing.
    pub span: Option<SpanHandle>,
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            config: FairCapConfig::default(),
            estimator: None,
            workers: None,
            estimate_cache_bound: None,
            grouping_cache_bound: None,
            intervention_cache_bound: None,
            use_solve_cache: true,
            trace: false,
            span: None,
        }
    }
}

impl SolveRequest {
    /// A request with default (unconstrained) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the fairness constraint.
    pub fn fairness(mut self, fairness: FairnessConstraint) -> Self {
        self.config.fairness = fairness;
        self
    }

    /// Set the coverage constraint.
    pub fn coverage(mut self, coverage: CoverageConstraint) -> Self {
        self.config.coverage = coverage;
        self
    }

    /// Cap the number of selected rules (the greedy `k`).
    pub fn max_rules(mut self, k: usize) -> Self {
        self.config.max_rules = k;
        self
    }

    /// Select one of the built-in estimators.
    pub fn estimator_kind(mut self, kind: EstimatorKind) -> Self {
        self.config.estimator = kind;
        self.estimator = None;
        self
    }

    /// Plug in a custom estimator for this request.
    pub fn estimator(mut self, estimator: Arc<dyn Estimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Pin the Step-2 executor to `n` worker threads for this request.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Bound the estimate cache to at most `n` entries (LRU eviction).
    pub fn estimate_cache_bound(mut self, n: usize) -> Self {
        self.estimate_cache_bound = Some(n);
        self
    }

    /// Bound the grouping-pattern cache to at most `n` entries (LRU
    /// eviction).
    pub fn grouping_cache_bound(mut self, n: usize) -> Self {
        self.grouping_cache_bound = Some(n);
        self
    }

    /// Bound the intervention-evaluation cache to at most `n` entries (LRU
    /// eviction).
    pub fn intervention_cache_bound(mut self, n: usize) -> Self {
        self.intervention_cache_bound = Some(n);
        self
    }

    /// Enable or disable the session's mining caches for this solve.
    pub fn use_solve_cache(mut self, on: bool) -> Self {
        self.use_solve_cache = on;
        self
    }

    /// Ask the serving layer to echo this solve's span tree back in the
    /// response (wire `trace: true`). Has no effect on the session itself;
    /// pair with [`SolveRequest::span`] to actually record spans.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Record this solve's step spans under `span`.
    pub fn span(mut self, span: SpanHandle) -> Self {
        self.span = Some(span);
        self
    }
}

impl From<FairCapConfig> for SolveRequest {
    fn from(config: FairCapConfig) -> Self {
        SolveRequest {
            config,
            ..SolveRequest::default()
        }
    }
}

impl std::fmt::Debug for SolveRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveRequest")
            .field("config", &self.config)
            .field(
                "estimator",
                &self.estimator.as_ref().map(|e| e.name().to_owned()),
            )
            .field("workers", &self.workers)
            .field("estimate_cache_bound", &self.estimate_cache_bound)
            .field("grouping_cache_bound", &self.grouping_cache_bound)
            .field("intervention_cache_bound", &self.intervention_cache_bound)
            .field("use_solve_cache", &self.use_solve_cache)
            .field("trace", &self.trace)
            .field("span", &self.span.is_some())
            .finish()
    }
}

/// Cache key for grouping-pattern mining output: the effective Apriori
/// parameters after §5.4's threshold raising and protected-support filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GroupingKey {
    support_bits: u64,
    max_len: usize,
    protected_need: usize,
}

impl GroupingKey {
    fn of(config: &FairCapConfig, protected: &Mask) -> GroupingKey {
        let mut min_support = config.apriori_threshold;
        let mut protected_need = 0;
        if let CoverageConstraint::Rule {
            theta,
            theta_protected,
        } = config.coverage
        {
            min_support = min_support.max(theta);
            protected_need = (theta_protected * protected.count() as f64).ceil() as usize;
        }
        GroupingKey {
            support_bits: min_support.to_bits(),
            max_len: config.max_group_len,
            protected_need,
        }
    }
}

/// Cumulative solve-path counters over a session's lifetime, in the style
/// of the causal engine's `HotStats`: where solve wall-clock went and how
/// much candidate work the mining/selection steps performed. Snapshot via
/// [`PrescriptionSession::solve_hot_stats`]; surfaced by the serving
/// layer's `/v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveHotStats {
    /// Completed solves.
    pub solves: u64,
    /// Nanoseconds in Step 1 (grouping-pattern mining, cache included).
    pub mine_ns: u64,
    /// Nanoseconds in Step 2 (intervention mining, cache included).
    pub intervene_ns: u64,
    /// Nanoseconds in Step 3 (greedy selection).
    pub select_ns: u64,
    /// Mining candidates generated (Apriori + lattice, all solves).
    pub candidates: u64,
    /// Mining candidates pruned before evaluation.
    pub pruned: u64,
    /// Mining candidates materialized / evaluated.
    pub evaluated: u64,
    /// Greedy candidate-score evaluations.
    pub greedy_evaluations: u64,
    /// Greedy stale-heap-entry re-evaluations.
    pub greedy_reevaluations: u64,
}

/// Atomic accumulator behind [`SolveHotStats`] (solves run on `&self`,
/// possibly concurrently).
#[derive(Default)]
struct SolveHotAccum {
    solves: AtomicU64,
    mine_ns: AtomicU64,
    intervene_ns: AtomicU64,
    select_ns: AtomicU64,
    candidates: AtomicU64,
    pruned: AtomicU64,
    evaluated: AtomicU64,
    greedy_evaluations: AtomicU64,
    greedy_reevaluations: AtomicU64,
}

impl SolveHotAccum {
    fn record(&self, timings: &StepTimings, stats: &SolveStats) {
        let mut mining = stats.grouping;
        mining.merge(&stats.lattice);
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.mine_ns
            .fetch_add(timings.grouping.as_nanos() as u64, Ordering::Relaxed);
        self.intervene_ns
            .fetch_add(timings.intervention.as_nanos() as u64, Ordering::Relaxed);
        self.select_ns
            .fetch_add(timings.greedy.as_nanos() as u64, Ordering::Relaxed);
        self.candidates
            .fetch_add(mining.candidates, Ordering::Relaxed);
        self.pruned.fetch_add(mining.pruned(), Ordering::Relaxed);
        self.evaluated
            .fetch_add(mining.evaluated, Ordering::Relaxed);
        self.greedy_evaluations
            .fetch_add(stats.greedy.evaluations, Ordering::Relaxed);
        self.greedy_reevaluations
            .fetch_add(stats.greedy.reevaluations, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SolveHotStats {
        SolveHotStats {
            solves: self.solves.load(Ordering::Relaxed),
            mine_ns: self.mine_ns.load(Ordering::Relaxed),
            intervene_ns: self.intervene_ns.load(Ordering::Relaxed),
            select_ns: self.select_ns.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            greedy_evaluations: self.greedy_evaluations.load(Ordering::Relaxed),
            greedy_reevaluations: self.greedy_reevaluations.load(Ordering::Relaxed),
        }
    }
}

/// A validated, long-lived Prescription Ruleset Selection instance.
///
/// Owns the data, the DAG, the [`CateEngine`] (with its adjustment /
/// treated-mask / estimate caches), and the grouping-pattern mining cache.
/// Build once via [`FairCap::builder`], then call
/// [`solve`](Self::solve) repeatedly — each call may change constraints,
/// estimator, and rule budget while reusing every cache the previous calls
/// warmed up. All methods take `&self`; the session is `Sync` and can serve
/// concurrent solves.
///
/// # Examples
///
/// Build a session from an in-memory frame and DAG, then solve:
///
/// ```
/// use faircap_causal::Dag;
/// use faircap_core::{FairCap, SolveRequest};
/// use faircap_table::{DataFrame, Pattern, Value};
///
/// // 40 rows: one immutable attribute (`grp`), one mutable treatment.
/// let n = 40;
/// let grp: Vec<&str> = (0..n).map(|i| if i % 4 == 0 { "p" } else { "np" }).collect();
/// let treat: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "yes" } else { "no" }).collect();
/// let outcome: Vec<f64> = (0..n)
///     .map(|i| {
///         let base = if i % 4 == 0 { 40.0 } else { 50.0 };
///         let lift = if i % 2 == 0 { 10.0 } else { 0.0 };
///         base + lift + (i % 5) as f64 * 0.1 // variation so variances are non-zero
///     })
///     .collect();
/// let df = DataFrame::builder()
///     .cat("grp", &grp)
///     .cat("treat", &treat)
///     .float("outcome", outcome)
///     .build()
///     .unwrap();
/// let dag = Dag::parse_edge_list("grp -> outcome\ntreat -> outcome").unwrap();
///
/// let session = FairCap::builder()
///     .data(df)
///     .dag(dag)
///     .outcome("outcome")
///     .immutable(["grp"])
///     .mutable(["treat"])
///     .protected(Pattern::of_eq(&[("grp", Value::from("p"))]))
///     .build()?;
/// let report = session.solve(&SolveRequest::default())?;
/// assert!(report.size() <= 20);
/// # Ok::<(), faircap_core::Error>(())
/// ```
pub struct PrescriptionSession {
    df: Arc<DataFrame>,
    dag: Arc<Dag>,
    outcome: String,
    immutable: Vec<String>,
    mutable: Vec<String>,
    protected: Pattern,
    protected_mask: Mask,
    engine: CateEngine,
    groupings: ShardedLruCache<GroupingKey, Arc<Vec<FrequentPattern>>>,
    interventions: InterventionCache,
    hot: SolveHotAccum,
}

impl std::fmt::Debug for PrescriptionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrescriptionSession")
            .field("n_rows", &self.df.n_rows())
            .field("outcome", &self.outcome)
            .field("immutable", &self.immutable)
            .field("mutable", &self.mutable)
            .field("protected", &self.protected.to_string())
            .field("cache_stats", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

impl PrescriptionSession {
    /// The database `D`.
    pub fn df(&self) -> &DataFrame {
        &self.df
    }

    /// The causal DAG `G_D`.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Outcome attribute `O`.
    pub fn outcome(&self) -> &str {
        &self.outcome
    }

    /// Immutable attributes `I`.
    pub fn immutable(&self) -> &[String] {
        &self.immutable
    }

    /// Mutable attributes `M`.
    pub fn mutable(&self) -> &[String] {
        &self.mutable
    }

    /// Protected-group pattern `P_p`.
    pub fn protected(&self) -> &Pattern {
        &self.protected
    }

    /// Mask of protected rows (precomputed at build time).
    pub fn protected_mask(&self) -> &Mask {
        &self.protected_mask
    }

    /// The underlying CATE engine (shared caches, hit counters).
    pub fn engine(&self) -> &CateEngine {
        &self.engine
    }

    /// Estimate-cache hit/miss counters accumulated over all solves,
    /// aggregated over estimators.
    ///
    /// # Examples
    ///
    /// A constraint-only re-solve is served entirely from cache:
    ///
    /// ```no_run
    /// # use faircap_core::{FairCap, SolveRequest};
    /// # fn session() -> faircap_core::PrescriptionSession { unimplemented!() }
    /// let session = session();
    /// session.solve(&SolveRequest::default())?;
    /// let warm = session.cache_stats();
    /// session.solve(&SolveRequest::default().max_rules(3))?;
    /// assert_eq!(session.cache_stats().misses, warm.misses);
    /// # Ok::<(), faircap_core::Error>(())
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Estimate-cache counters broken down per estimator name — an
    /// estimator sweep on one session can attribute hits and misses to
    /// each estimator it used. See
    /// [`CateEngine::cache_stats_by_estimator`].
    pub fn cache_stats_by_estimator(&self) -> std::collections::BTreeMap<String, CacheStats> {
        self.engine.cache_stats_by_estimator()
    }

    /// Hit/miss/eviction counters of the grouping-pattern cache (Step-1
    /// output per effective Apriori parameter set).
    pub fn grouping_cache_stats(&self) -> CacheCounters {
        self.groupings.counters()
    }

    /// Hit/miss/eviction counters of the intervention-evaluation cache
    /// (Step-2 phase-1 output per grouping pattern and estimator).
    pub fn intervention_cache_stats(&self) -> CacheCounters {
        self.interventions.counters()
    }

    /// Cumulative solve-path counters (per-step wall-clock, mining
    /// candidate pipeline, greedy heap activity) over all solves on this
    /// session.
    pub fn solve_hot_stats(&self) -> SolveHotStats {
        self.hot.snapshot()
    }

    /// Capture the session's warmed caches — adjustment sets, treated
    /// masks, and all CATE estimates — as a [`SessionSnapshot`] that can be
    /// serialized ([`SessionSnapshot::encode`]) and restored into a new
    /// session over the same data via
    /// [`SessionBuilder::warm_start`]. A restored session re-solving the
    /// same workload performs zero estimate-cache misses.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            outcome: self.outcome.clone(),
            n_rows: self.df.n_rows(),
            dag_fp: crate::snapshot::dag_fingerprint(&self.dag),
            data_fp: crate::snapshot::data_fingerprint(&self.df),
            state: self.engine.export_state(),
        }
    }

    /// Solve the instance under one constraint/estimator combination.
    ///
    /// Reuses every cache warmed by previous solves on this session; a
    /// repeat solve that only changes the fairness constraint performs no
    /// new CATE estimation at all.
    pub fn solve(&self, request: &SolveRequest) -> Result<SolutionReport> {
        let config = &request.config;
        validate_config(config)?;
        if let Some(bound) = request.estimate_cache_bound {
            self.engine.set_estimate_cache_capacity(bound);
        }
        if let Some(bound) = request.grouping_cache_bound {
            self.groupings.set_capacity(bound);
        }
        if let Some(bound) = request.intervention_cache_bound {
            self.interventions.set_capacity(bound);
        }
        let estimator: &dyn Estimator = request.estimator.as_deref().unwrap_or(&config.estimator);
        let query = self.engine.with_estimator(estimator);
        let span = request.span.as_ref();

        // ---- Step 1: grouping patterns (§5.1), cached per parameters. ----
        let t0 = Instant::now();
        let step1_span = span.map(|h| h.child("step1_grouping"));
        let (groups, grouping_stats) = self.grouping_patterns(config, request.use_solve_cache)?;
        drop(step1_span);
        let grouping_time = t0.elapsed();

        // ---- Step 2: intervention mining (§5.2), work-stealing fan-out
        // across groups, phase-1 evaluations cached per group. ----
        let t1 = Instant::now();
        let step2_span = span.map(|h| h.child("step2_interventions"));
        let step2_handle = step2_span.as_ref().map(|s| s.handle());
        let query = query.with_span(step2_handle.clone());
        let step2 = mine_all_interventions(
            &query,
            &groups,
            &self.protected_mask,
            &self.mutable,
            config,
            request.workers,
            request
                .use_solve_cache
                .then_some((&self.interventions, estimator.name())),
            step2_handle.as_ref(),
        );
        drop(step2_span);
        let n_candidates = step2.rules.len();
        let intervention_time = t1.elapsed();

        // ---- Step 3: greedy selection (§5.3). ----
        let t2 = Instant::now();
        let step3_span = span.map(|h| h.child("step3_greedy"));
        let (outcome, greedy_stats) = greedy::greedy_select_with_stats(
            step2.rules,
            config,
            self.df.n_rows(),
            &self.protected_mask,
        );
        drop(step3_span);
        let greedy_time = t2.elapsed();

        let timings = StepTimings {
            grouping: grouping_time,
            intervention: intervention_time,
            greedy: greedy_time,
        };
        let stats = SolveStats {
            grouping: grouping_stats,
            lattice: step2.lattice,
            greedy: greedy_stats,
            intervention_cache_hits: step2.cache_hits,
            intervention_cache_misses: step2.cache_misses,
        };
        self.hot.record(&timings, &stats);

        Ok(SolutionReport {
            label: config.label(),
            rules: outcome.selected,
            summary: outcome.summary,
            constraints_met: outcome.constraints_met,
            n_grouping_patterns: groups.len(),
            n_candidates,
            timings,
            stats,
            exec: step2.exec,
        })
    }

    /// Step-1 output for the request's effective Apriori parameters,
    /// mining at most once per distinct parameter set. The returned stats
    /// describe work performed by **this** call — zero on a cache hit.
    fn grouping_patterns(
        &self,
        config: &FairCapConfig,
        use_cache: bool,
    ) -> Result<(Arc<Vec<FrequentPattern>>, MiningStats)> {
        let key = GroupingKey::of(config, &self.protected_mask);
        if use_cache {
            if let Some(hit) = self.groupings.get(&key) {
                return Ok((hit, MiningStats::default()));
            }
        }
        let (mined, stats) = grouping::mine_grouping_patterns_with_stats(
            &self.df,
            &self.immutable,
            &self.protected_mask,
            config,
        )?;
        let mined = Arc::new(mined);
        if use_cache {
            self.groupings.insert(key, Arc::clone(&mined));
        }
        Ok((mined, stats))
    }
}

fn validate_config(config: &FairCapConfig) -> Result<()> {
    let unit = 0.0..=1.0;
    if !config.apriori_threshold.is_finite() || !unit.contains(&config.apriori_threshold) {
        return Err(Error::InvalidRequest(format!(
            "apriori_threshold must be in [0, 1], got {}",
            config.apriori_threshold
        )));
    }
    if !config.alpha.is_finite() || !unit.contains(&config.alpha) {
        return Err(Error::InvalidRequest(format!(
            "alpha must be in [0, 1], got {}",
            config.alpha
        )));
    }
    match config.coverage {
        CoverageConstraint::None => {}
        CoverageConstraint::Group {
            theta,
            theta_protected,
        }
        | CoverageConstraint::Rule {
            theta,
            theta_protected,
        } => {
            for (name, v) in [("theta", theta), ("theta_protected", theta_protected)] {
                if !v.is_finite() || !unit.contains(&v) {
                    return Err(Error::InvalidRequest(format!(
                        "coverage {name} must be in [0, 1], got {v}"
                    )));
                }
            }
        }
    }
    match config.fairness {
        FairnessConstraint::None => {}
        FairnessConstraint::StatisticalParity { epsilon, .. } => {
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(Error::InvalidRequest(format!(
                    "statistical-parity epsilon must be finite and non-negative, got {epsilon}"
                )));
            }
        }
        FairnessConstraint::BoundedGroupLoss { tau, .. } => {
            if !tau.is_finite() {
                return Err(Error::InvalidRequest(format!(
                    "bounded-group-loss tau must be finite, got {tau}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;
    use crate::config::FairnessScope;
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_causal::CausalError;
    use faircap_table::{TableError, Value};

    /// One immutable (segment), protected subgroup, two binary treatments
    /// with planted unfair/fair effects.
    fn fixture() -> (DataFrame, Dag, Pattern) {
        fixture_with_seed(23)
    }

    fn fixture_with_seed(seed: u64) -> (DataFrame, Dag, Pattern) {
        let scm = Scm::new()
            .categorical("segment", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "big",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "fair",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "outcome",
                &["segment", "grp", "big", "fair"],
                Box::new(|row, rng| {
                    let p = row.str("grp") == "p";
                    let mut v = 50.0;
                    if row.str("segment") == "a" {
                        v += 5.0;
                    }
                    if row.str("big") == "yes" {
                        v += if p { 6.0 } else { 30.0 };
                    }
                    if row.str("fair") == "yes" {
                        v += if p { 11.0 } else { 12.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 4.0))
                }),
            )
            .unwrap();
        let df = scm.sample(5000, seed).unwrap();
        let dag = scm.dag();
        (df, dag, Pattern::of_eq(&[("grp", Value::from("p"))]))
    }

    fn session() -> PrescriptionSession {
        let (df, dag, prot) = fixture();
        FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .immutable(["segment", "grp"])
            .mutable(["big", "fair"])
            .protected(prot)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_unconstrained() {
        let s = session();
        let report = s.solve(&SolveRequest::default()).unwrap();
        assert!(!report.rules.is_empty());
        assert!(report.summary.expected > 0.0);
        assert!(report.n_grouping_patterns > 0);
        // Unconstrained: the big unfair treatment should dominate.
        assert!(
            report.summary.unfairness > 10.0,
            "unconstrained unfairness {}",
            report.summary.unfairness
        );
    }

    #[test]
    fn resolving_under_new_constraint_reuses_estimates() {
        let s = session();
        let unconstrained = s.solve(&SolveRequest::default()).unwrap();
        let after_first = s.cache_stats();
        assert!(after_first.misses > 0);

        let fair = s
            .solve(
                &SolveRequest::default().fairness(FairnessConstraint::StatisticalParity {
                    scope: FairnessScope::Group,
                    epsilon: 5.0,
                }),
            )
            .unwrap();
        let after_second = s.cache_stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "constraint-only re-solve must not estimate anything new"
        );
        // Stronger than estimate-cache hits: the intervention cache replays
        // whole phase-1 evaluations, so the re-solve never reaches the
        // estimate cache at all.
        assert_eq!(
            after_second.hits, after_first.hits,
            "fully cached re-solve performs no estimate lookups"
        );
        let icache = s.intervention_cache_stats();
        assert!(icache.hits > 0, "re-solve must hit the intervention cache");

        assert!(fair.constraints_met, "group SP must be satisfiable here");
        assert!(fair.summary.unfairness.abs() <= 5.0);
        // Fairness costs utility (Table 4's headline phenomenon).
        assert!(fair.summary.expected <= unconstrained.summary.expected + 1e-9);
        assert!(fair.summary.unfairness.abs() < unconstrained.summary.unfairness.abs());
    }

    #[test]
    fn end_to_end_group_coverage() {
        let s = session();
        let report = s
            .solve(
                &SolveRequest::default().coverage(CoverageConstraint::Group {
                    theta: 0.9,
                    theta_protected: 0.9,
                }),
            )
            .unwrap();
        assert!(report.constraints_met);
        assert!(report.summary.coverage >= 0.9);
        assert!(report.summary.coverage_protected >= 0.9);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let s = session();
        let mut serial_cfg = FairCapConfig::default();
        serial_cfg.parallel = false;
        let mut parallel_cfg = FairCapConfig::default();
        parallel_cfg.parallel = true;
        let a = s.solve(&SolveRequest::from(serial_cfg)).unwrap();
        let b = s.solve(&SolveRequest::from(parallel_cfg)).unwrap();
        let ra: Vec<String> = a.rules.iter().map(|r| r.to_string()).collect();
        let rb: Vec<String> = b.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn per_request_estimator_without_rebuild() {
        let s = session();
        let lin = s
            .solve(&SolveRequest::default().estimator_kind(EstimatorKind::Linear))
            .unwrap();
        let strat = s
            .solve(&SolveRequest::default().estimator_kind(EstimatorKind::Stratified))
            .unwrap();
        assert!(!lin.rules.is_empty() && !strat.rules.is_empty());
        // A custom estimator object routes through the same engine.
        let custom: Arc<dyn Estimator> = Arc::new(EstimatorKind::Linear);
        let via_custom = s.solve(&SolveRequest::default().estimator(custom)).unwrap();
        assert_eq!(
            lin.summary, via_custom.summary,
            "Arc<dyn Estimator> must match the built-in path"
        );
    }

    #[test]
    fn aipw_and_matching_estimators_solve() {
        let s = session();
        for kind in [EstimatorKind::Aipw, EstimatorKind::Matching] {
            let report = s
                .solve(&SolveRequest::default().estimator_kind(kind))
                .unwrap();
            assert!(!report.rules.is_empty(), "{kind:?} selected no rules");
            assert!(report.summary.expected > 0.0, "{kind:?}");
        }
        // The sweep's cache traffic is attributable per estimator name.
        let per = s.cache_stats_by_estimator();
        assert!(per["aipw"].misses > 0);
        assert!(per["matching"].misses > 0);
        assert_eq!(
            per.values().map(|s| s.misses).sum::<u64>(),
            s.cache_stats().misses
        );
    }

    #[test]
    fn timings_are_populated() {
        let s = session();
        let report = s.solve(&SolveRequest::default()).unwrap();
        let t = &report.timings;
        assert!(t.grouping.as_nanos() > 0);
        assert!(t.intervention.as_nanos() > 0);
        assert_eq!(t.total(), t.grouping + t.intervention + t.greedy);
    }

    #[test]
    fn builder_rejects_missing_fields() {
        let (df, dag, prot) = fixture();
        let err = FairCap::builder()
            .data(df.clone())
            .dag(dag.clone())
            .protected(prot.clone())
            .build()
            .unwrap_err();
        assert_eq!(err, Error::MissingField("outcome"));
        let err = FairCap::builder().build().unwrap_err();
        assert_eq!(err, Error::MissingField("data"));
    }

    #[test]
    fn builder_rejects_unknown_attributes() {
        let (df, dag, prot) = fixture();
        let err = FairCap::builder()
            .data(df.clone())
            .dag(dag.clone())
            .outcome("outcome")
            .immutable(["segment", "ghost"])
            .mutable(["big"])
            .protected(prot.clone())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::UnknownAttribute { role: "immutable", ref name } if name == "ghost"
        ));
        // A column missing from the data is reported as the missing column,
        // even if it is also absent from the DAG.
        let err = FairCap::builder()
            .data(df.clone())
            .dag(dag)
            .outcome("no_such_outcome")
            .protected(prot.clone())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Table(TableError::UnknownColumn(ref c)) if c == "no_such_outcome"
        ));
        // A real column that the DAG does not model is a DAG problem.
        let mut tiny_dag = Dag::new();
        tiny_dag.ensure_node("segment");
        let err = FairCap::builder()
            .data(df)
            .dag(tiny_dag)
            .outcome("outcome")
            .protected(prot)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::OutcomeNotInDag { .. }));
    }

    #[test]
    fn builder_rejects_conflicting_roles() {
        let (df, dag, prot) = fixture();
        let err = FairCap::builder()
            .data(df.clone())
            .dag(dag.clone())
            .outcome("outcome")
            .immutable(["segment", "big"])
            .mutable(["big"])
            .protected(prot.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ConflictingRoles { ref name, .. } if name == "big"));
        let err = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .mutable(["outcome"])
            .protected(prot)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ConflictingRoles { .. }));
    }

    #[test]
    fn builder_rejects_bad_protected_pattern() {
        let (df, dag, _) = fixture();
        let err = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("outcome")
            .protected(Pattern::of_eq(&[("ghost", Value::from("x"))]))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Table(TableError::UnknownColumn(ref c)) if c == "ghost"
        ));
    }

    #[test]
    fn builder_rejects_categorical_outcome() {
        let (df, dag, prot) = fixture();
        let err = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("segment")
            .protected(prot)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Causal(CausalError::InvalidOutcome { .. })
        ));
    }

    #[test]
    fn solve_rejects_out_of_range_config() {
        let s = session();
        let mut cfg = FairCapConfig::default();
        cfg.apriori_threshold = f64::NAN;
        assert!(matches!(
            s.solve(&SolveRequest::from(cfg)),
            Err(Error::InvalidRequest(_))
        ));
        let mut cfg = FairCapConfig::default();
        cfg.coverage = CoverageConstraint::Group {
            theta: 1.5,
            theta_protected: 0.5,
        };
        assert!(matches!(
            s.solve(&SolveRequest::from(cfg)),
            Err(Error::InvalidRequest(_))
        ));
    }

    #[test]
    fn grouping_cache_reused_across_constraint_changes() {
        let s = session();
        s.solve(&SolveRequest::default()).unwrap();
        assert_eq!(s.groupings.len(), 1);
        s.solve(
            &SolveRequest::default().fairness(FairnessConstraint::BoundedGroupLoss {
                scope: FairnessScope::Group,
                tau: 0.0,
            }),
        )
        .unwrap();
        assert_eq!(s.groupings.len(), 1, "same key → no re-mine");
        assert!(s.grouping_cache_stats().hits >= 1);
        let mut cfg = FairCapConfig::default();
        cfg.coverage = CoverageConstraint::Rule {
            theta: 0.2,
            theta_protected: 0.1,
        };
        s.solve(&SolveRequest::from(cfg)).unwrap();
        assert_eq!(s.groupings.len(), 2, "rule coverage → new key");
    }

    #[test]
    fn grouping_cache_bound_evicts_lru() {
        let s = session();
        // Three distinct grouping keys under a bound of 1.
        for theta in [0.15, 0.2, 0.25] {
            let mut cfg = FairCapConfig::default();
            cfg.coverage = CoverageConstraint::Rule {
                theta,
                theta_protected: 0.0,
            };
            s.solve(&SolveRequest::from(cfg).grouping_cache_bound(1))
                .unwrap();
            assert!(s.groupings.len() <= 1, "bound violated");
        }
        assert_eq!(s.grouping_cache_stats().evictions, 2);
    }

    #[test]
    fn intervention_cache_equivalence_and_bypass() {
        let s = session();
        let cold = s.solve(&SolveRequest::default()).unwrap();
        assert_eq!(cold.stats.intervention_cache_hits, 0);
        assert!(cold.stats.intervention_cache_misses > 0);
        assert!(cold.stats.lattice.evaluated > 0);

        // Constraint-only re-solve: all groups replay from the cache, no
        // lattice work — and the ruleset matches an uncached re-solve
        // bit-for-bit.
        let fair = SolveRequest::default().fairness(FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 5.0,
        });
        let warm = s.solve(&fair).unwrap();
        assert_eq!(warm.stats.intervention_cache_misses, 0);
        assert_eq!(
            warm.stats.intervention_cache_hits,
            warm.n_grouping_patterns as u64
        );
        assert_eq!(warm.stats.lattice, faircap_mining::MiningStats::default());

        let uncached = s.solve(&fair.clone().use_solve_cache(false)).unwrap();
        assert_eq!(uncached.stats.intervention_cache_hits, 0);
        assert_eq!(uncached.stats.intervention_cache_misses, 0);
        assert!(uncached.stats.lattice.evaluated > 0);
        let a: Vec<String> = warm.rules.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = uncached.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b, "cached and uncached solves must agree exactly");
        assert_eq!(warm.summary, uncached.summary);

        // A different estimator is a different key: misses again.
        let strat = s
            .solve(&SolveRequest::default().estimator_kind(EstimatorKind::Stratified))
            .unwrap();
        assert!(strat.stats.intervention_cache_misses > 0);
    }

    #[test]
    fn intervention_cache_bound_evicts() {
        let s = session();
        let report = s
            .solve(&SolveRequest::default().intervention_cache_bound(1))
            .unwrap();
        assert!(report.n_grouping_patterns > 1);
        let counters = s.intervention_cache_stats();
        assert!(counters.entries <= 1, "bound violated");
        assert!(counters.evictions > 0);
    }

    #[test]
    fn solve_hot_stats_accumulate() {
        let s = session();
        assert_eq!(s.solve_hot_stats(), SolveHotStats::default());
        let r1 = s.solve(&SolveRequest::default()).unwrap();
        let after_one = s.solve_hot_stats();
        assert_eq!(after_one.solves, 1);
        assert!(after_one.intervene_ns > 0);
        assert!(after_one.candidates > 0);
        assert_eq!(
            after_one.evaluated,
            r1.stats.grouping.evaluated + r1.stats.lattice.evaluated
        );
        assert_eq!(after_one.greedy_evaluations, r1.stats.greedy.evaluations);
        s.solve(&SolveRequest::default().max_rules(3)).unwrap();
        let after_two = s.solve_hot_stats();
        assert_eq!(after_two.solves, 2);
        assert!(after_two.select_ns >= after_one.select_ns);
    }

    #[test]
    fn estimate_cache_bound_is_enforced_during_solve() {
        let s = session();
        let bound = 8;
        s.solve(&SolveRequest::default().estimate_cache_bound(bound))
            .unwrap();
        let stats = s.cache_stats();
        assert!(
            stats.entries <= bound,
            "estimate cache held {} entries over bound {bound}",
            stats.entries
        );
        assert!(stats.evictions > 0, "a full solve must overflow 8 entries");
        // Unbounded sessions keep everything.
        let fresh = session();
        fresh.solve(&SolveRequest::default()).unwrap();
        assert!(fresh.cache_stats().entries > bound);
        assert_eq!(fresh.cache_stats().evictions, 0);
    }

    #[test]
    fn parallel_solve_reports_exec_stats() {
        let s = session();
        let report = s.solve(&SolveRequest::default().workers(3)).unwrap();
        let stats = report.exec.expect("parallel solve has exec stats");
        assert_eq!(stats.tasks, report.n_grouping_patterns);
        assert!(stats.workers <= 3);
        assert!(stats.utilization() > 0.0);
        let mut serial = FairCapConfig::default();
        serial.parallel = false;
        let report = s.solve(&SolveRequest::from(serial)).unwrap();
        assert!(report.exec.is_none());
    }

    #[test]
    fn snapshot_warm_start_solves_without_misses() {
        let (df, dag, prot) = fixture();
        let build = |df: &DataFrame, dag: &Dag| {
            FairCap::builder()
                .data(df.clone())
                .dag(dag.clone())
                .outcome("outcome")
                .immutable(["segment", "grp"])
                .mutable(["big", "fair"])
                .protected(prot.clone())
        };
        let cold = build(&df, &dag).build().unwrap();
        let report_cold = cold.solve(&SolveRequest::default()).unwrap();
        let snapshot = cold.snapshot();
        assert_eq!(snapshot.n_rows, df.n_rows());
        assert!(!snapshot.state.estimates.is_empty());

        // Serialization round trip, then restore into a fresh session.
        let decoded = SessionSnapshot::decode(&snapshot.encode()).unwrap();
        let warm = build(&df, &dag).warm_start(decoded).build().unwrap();
        let report_warm = warm.solve(&SolveRequest::default()).unwrap();
        let stats = warm.cache_stats();
        assert_eq!(stats.misses, 0, "warm solve must be all cache hits");
        assert!(stats.hits > 0);
        let a: Vec<String> = report_cold.rules.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = report_warm.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b, "warm solve must reproduce the cold ruleset");
        assert_eq!(report_cold.summary, report_warm.summary);
    }

    #[test]
    fn warm_start_rejects_mismatched_snapshot() {
        let s = session();
        s.solve(&SolveRequest::default()).unwrap();
        let mut snapshot = s.snapshot();
        snapshot.n_rows += 1;
        let (df, dag, prot) = fixture();
        let err = FairCap::builder()
            .data(df.clone())
            .dag(dag.clone())
            .outcome("outcome")
            .immutable(["segment", "grp"])
            .mutable(["big", "fair"])
            .protected(prot.clone())
            .warm_start(snapshot)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Snapshot(_)), "{err}");
        let mut snapshot = s.snapshot();
        snapshot.outcome = "other".into();
        let err = FairCap::builder()
            .data(df.clone())
            .dag(dag.clone())
            .outcome("outcome")
            .immutable(["segment", "grp"])
            .mutable(["big", "fair"])
            .protected(prot.clone())
            .warm_start(snapshot)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Snapshot(_)), "{err}");
        // A changed DAG invalidates the snapshot (adjustment sets are
        // DAG-derived) …
        let mut other_dag = dag.clone();
        other_dag.ensure_node("extra");
        other_dag.add_edge_by_name("extra", "outcome").unwrap();
        let err = FairCap::builder()
            .data(df.clone())
            .dag(other_dag)
            .outcome("outcome")
            .immutable(["segment", "grp"])
            .mutable(["big", "fair"])
            .protected(prot.clone())
            .warm_start(s.snapshot())
            .build()
            .unwrap_err();
        assert!(
            matches!(err, Error::Snapshot(ref msg) if msg.contains("DAG")),
            "{err}"
        );
        // … and so does changed data with the same shape (treated masks and
        // estimates are data-derived): same SCM, different sampling seed.
        let (df2, dag2, prot2) = fixture_with_seed(29);
        let err = FairCap::builder()
            .data(df2)
            .dag(dag2)
            .outcome("outcome")
            .immutable(["segment", "grp"])
            .mutable(["big", "fair"])
            .protected(prot2)
            .warm_start(s.snapshot())
            .build()
            .unwrap_err();
        assert!(
            matches!(err, Error::Snapshot(ref msg) if msg.contains("data")),
            "{err}"
        );
    }
}
