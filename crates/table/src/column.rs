//! Typed columns.
//!
//! Columns are dense vectors with an optional validity mask. Categorical
//! columns are dictionary-encoded: the column stores `u32` codes into a
//! per-column dictionary of distinct strings, so predicate evaluation compares
//! integers rather than strings.

use crate::mask::Mask;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// A dictionary-encoded categorical column.
#[derive(Debug, Clone, PartialEq)]
pub struct CatColumn {
    /// Per-row dictionary codes.
    codes: Vec<u32>,
    /// Distinct values; `codes[i]` indexes into this.
    dict: Vec<String>,
    /// Reverse lookup from value to code.
    index: HashMap<String, u32>,
}

impl CatColumn {
    /// Build from string-ish values, constructing the dictionary on the fly.
    pub fn from_values<S: AsRef<str>>(values: &[S]) -> Self {
        let mut col = CatColumn {
            codes: Vec::with_capacity(values.len()),
            dict: Vec::new(),
            index: HashMap::new(),
        };
        for v in values {
            let code = col.intern(v.as_ref());
            col.codes.push(code);
        }
        col
    }

    /// Intern `value` and return its code.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&c) = self.index.get(value) {
            return c;
        }
        let c = self.dict.len() as u32;
        self.dict.push(value.to_owned());
        self.index.insert(value.to_owned(), c);
        c
    }

    /// Code for `value`, if present in the dictionary.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Value for `code`.
    pub fn value_of(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values seen.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Raw code slice.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Dictionary slice.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Take the rows selected by `mask` into a new column (dictionary shared).
    fn take(&self, mask: &Mask) -> CatColumn {
        let codes: Vec<u32> = mask.iter_ones().map(|i| self.codes[i]).collect();
        CatColumn {
            codes,
            dict: self.dict.clone(),
            index: self.index.clone(),
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded categorical strings.
    Cat(CatColumn),
}

impl Column {
    /// Physical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Bool(_) => DataType::Bool,
            Column::Cat(_) => DataType::Cat,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Cat(c) => c.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Categorical view of the column, or `None` for other types.
    ///
    /// Callers that know the column's name should prefer
    /// [`DataFrame::cat_column`](crate::dataframe::DataFrame::cat_column),
    /// whose error names the offending column.
    pub fn as_cat(&self) -> Option<&CatColumn> {
        match self {
            Column::Cat(c) => Some(c),
            _ => None,
        }
    }

    /// Value at row `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Cat(c) => Value::Str(c.value_of(c.codes()[i]).to_owned()),
        }
    }

    /// Numeric view of row `i` (ints, floats, bools as 0/1).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        match self {
            Column::Int(v) => Some(v[i] as f64),
            Column::Float(v) => Some(v[i]),
            Column::Bool(v) => Some(if v[i] { 1.0 } else { 0.0 }),
            Column::Cat(_) => None,
        }
    }

    /// Distinct values: dictionary order (first appearance) for categorical
    /// columns, ascending order for numeric and boolean columns.
    pub fn unique(&self) -> Vec<Value> {
        match self {
            Column::Cat(c) => c.dict.iter().map(|s| Value::Str(s.clone())).collect(),
            _ => {
                // Numeric/bool uniques come back in ascending order, which is
                // what binning and deterministic iteration both want.
                let seen: std::collections::BTreeSet<Value> =
                    (0..self.len()).map(|i| self.get(i)).collect();
                seen.into_iter().collect()
            }
        }
    }

    /// Rows selected by `mask`, as a new column.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.len()`.
    pub fn take(&self, mask: &Mask) -> Column {
        assert_eq!(mask.len(), self.len(), "mask/column length mismatch");
        match self {
            Column::Int(v) => Column::Int(mask.iter_ones().map(|i| v[i]).collect()),
            Column::Float(v) => Column::Float(mask.iter_ones().map(|i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(mask.iter_ones().map(|i| v[i]).collect()),
            Column::Cat(c) => Column::Cat(c.take(mask)),
        }
    }

    /// Mean of the selected rows; `None` for categorical columns or an empty
    /// selection.
    pub fn mean(&self, mask: &Mask) -> Option<f64> {
        let n = mask.count();
        if n == 0 {
            return None;
        }
        let sum: f64 = match self {
            Column::Int(v) => mask.iter_ones().map(|i| v[i] as f64).sum(),
            Column::Float(v) => mask.iter_ones().map(|i| v[i]).sum(),
            Column::Bool(v) => mask.iter_ones().filter(|&i| v[i]).count() as f64,
            Column::Cat(_) => return None,
        };
        Some(sum / n as f64)
    }

    /// Sum and sum-of-squares of the selected rows, for variance computations.
    pub fn sum_sumsq(&self, mask: &Mask) -> Option<(f64, f64)> {
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        match self {
            Column::Int(v) => {
                for i in mask.iter_ones() {
                    let x = v[i] as f64;
                    sum += x;
                    sumsq += x * x;
                }
            }
            Column::Float(v) => {
                for i in mask.iter_ones() {
                    sum += v[i];
                    sumsq += v[i] * v[i];
                }
            }
            Column::Bool(v) => {
                for i in mask.iter_ones() {
                    if v[i] {
                        sum += 1.0;
                        sumsq += 1.0;
                    }
                }
            }
            Column::Cat(_) => return None,
        }
        Some((sum, sumsq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_column_interns() {
        let c = CatColumn::from_values(&["a", "b", "a", "c", "b"]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.code_of("a"), Some(0));
        assert_eq!(c.code_of("c"), Some(2));
        assert_eq!(c.code_of("zzz"), None);
        assert_eq!(c.value_of(1), "b");
        assert_eq!(c.codes(), &[0, 1, 0, 2, 1]);
    }

    #[test]
    fn column_get_and_types() {
        let c = Column::Int(vec![1, 2, 3]);
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.get(1), Value::Int(2));
        let c = Column::Cat(CatColumn::from_values(&["x", "y"]));
        assert_eq!(c.get(0), Value::from("x"));
        assert_eq!(c.get_f64(0), None);
        let c = Column::Bool(vec![true, false]);
        assert_eq!(c.get_f64(0), Some(1.0));
    }

    #[test]
    fn take_selects_rows() {
        let c = Column::Float(vec![1.0, 2.0, 3.0, 4.0]);
        let m = Mask::from_indices(4, &[1, 3]);
        assert_eq!(c.take(&m), Column::Float(vec![2.0, 4.0]));
        let c = Column::Cat(CatColumn::from_values(&["a", "b", "c", "d"]));
        let cc = c.take(&m);
        let cc = cc.as_cat().expect("take preserves the categorical type");
        assert_eq!(cc.len(), 2);
        assert_eq!(cc.value_of(cc.codes()[0]), "b");
        assert_eq!(cc.value_of(cc.codes()[1]), "d");
    }

    #[test]
    fn as_cat_is_fallible_not_panicking() {
        assert!(Column::Int(vec![1]).as_cat().is_none());
        assert!(Column::Cat(CatColumn::from_values(&["x"]))
            .as_cat()
            .is_some());
    }

    #[test]
    fn mean_over_mask() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        let m = Mask::from_indices(4, &[0, 3]);
        assert_eq!(c.mean(&m), Some(25.0));
        assert_eq!(c.mean(&Mask::zeros(4)), None);
        let b = Column::Bool(vec![true, true, false, false]);
        assert_eq!(b.mean(&Mask::ones(4)), Some(0.5));
        let cat = Column::Cat(CatColumn::from_values(&["a"; 4]));
        assert_eq!(cat.mean(&Mask::ones(4)), None);
    }

    #[test]
    fn unique_first_appearance_order() {
        let c = Column::Cat(CatColumn::from_values(&["b", "a", "b", "c"]));
        assert_eq!(
            c.unique(),
            vec![Value::from("b"), Value::from("a"), Value::from("c")]
        );
        let c = Column::Int(vec![3, 1, 3, 2]);
        // numeric unique is sorted-set based; order is ascending by value
        assert_eq!(
            c.unique(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn sum_sumsq() {
        let c = Column::Float(vec![1.0, 2.0, 3.0]);
        let (s, ss) = c.sum_sumsq(&Mask::ones(3)).unwrap();
        assert_eq!(s, 6.0);
        assert_eq!(ss, 14.0);
    }
}
