//! Minimal CSV reader/writer with type inference.
//!
//! Supports RFC-4180-style quoting (`"` escaping by doubling), a header row,
//! and per-column inference: a column whose values all parse as `i64` becomes
//! `Int`, else all-`f64` becomes `Float`, else all `true`/`false` becomes
//! `Bool`, otherwise `Cat`. Empty cells are only permitted in categorical
//! columns (as the literal empty string); numeric inference treats a column
//! containing empty cells as categorical.

use crate::column::{CatColumn, Column};
use crate::dataframe::DataFrame;
use crate::error::{Result, TableError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parse one CSV record, honoring quotes. Returns the fields.
fn parse_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(TableError::Csv(format!(
                            "unexpected quote mid-field in: {line}"
                        )));
                    }
                }
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv(format!("unterminated quote in: {line}")));
    }
    fields.push(field);
    Ok(fields)
}

/// Read a frame from any reader. First record is the header.
pub fn read_csv_from<R: Read>(reader: R) -> Result<DataFrame> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => parse_record(&h?)?,
        None => return Err(TableError::Csv("empty input".into())),
    };
    let n_cols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let rec = parse_record(&line)?;
        if rec.len() != n_cols {
            return Err(TableError::Csv(format!(
                "record {} has {} fields, expected {}",
                lineno + 2,
                rec.len(),
                n_cols
            )));
        }
        for (col, cell) in cells.iter_mut().zip(rec) {
            col.push(cell);
        }
    }
    let mut b = DataFrame::builder();
    for (name, values) in header.iter().zip(&cells) {
        b = b.column(name, infer_column(values));
    }
    b.build()
}

/// Read a frame from a file path.
pub fn read_csv<P: AsRef<Path>>(path: P) -> Result<DataFrame> {
    read_csv_from(std::fs::File::open(path)?)
}

fn infer_column(values: &[String]) -> Column {
    if !values.is_empty() && values.iter().all(|v| v.parse::<i64>().is_ok()) {
        return Column::Int(values.iter().map(|v| v.parse().unwrap()).collect());
    }
    if !values.is_empty() && values.iter().all(|v| v.parse::<f64>().is_ok()) {
        return Column::Float(values.iter().map(|v| v.parse().unwrap()).collect());
    }
    if !values.is_empty() && values.iter().all(|v| v == "true" || v == "false") {
        return Column::Bool(values.iter().map(|v| v == "true").collect());
    }
    Column::Cat(CatColumn::from_values(values))
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Write a frame as CSV to any writer.
pub fn write_csv_to<W: Write>(df: &DataFrame, mut w: W) -> Result<()> {
    let header: Vec<String> = df.names().iter().map(|n| quote_field(n)).collect();
    writeln!(w, "{}", header.join(","))?;
    for r in 0..df.n_rows() {
        let mut row = Vec::with_capacity(df.n_cols());
        for c in 0..df.n_cols() {
            row.push(quote_field(&df.column_at(c).get(r).to_string()));
        }
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Write a frame as CSV to a file path.
pub fn write_csv<P: AsRef<Path>>(df: &DataFrame, path: P) -> Result<()> {
    write_csv_to(df, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    #[test]
    fn roundtrip_inference() {
        let csv = "name,age,score,active\nalice,30,1.5,true\nbob,25,2.25,false\n";
        let df = read_csv_from(csv.as_bytes()).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.dtype("name").unwrap(), DataType::Cat);
        assert_eq!(df.dtype("age").unwrap(), DataType::Int);
        assert_eq!(df.dtype("score").unwrap(), DataType::Float);
        assert_eq!(df.dtype("active").unwrap(), DataType::Bool);
        assert_eq!(df.get(1, "age").unwrap(), Value::Int(25));

        let mut out = Vec::new();
        write_csv_to(&df, &mut out).unwrap();
        let df2 = read_csv_from(out.as_slice()).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn quoted_fields() {
        let csv = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n";
        let df = read_csv_from(csv.as_bytes()).unwrap();
        assert_eq!(df.get(0, "a").unwrap(), Value::from("hello, world"));
        assert_eq!(df.get(0, "b").unwrap(), Value::from("say \"hi\""));
        // and they survive a roundtrip
        let mut out = Vec::new();
        write_csv_to(&df, &mut out).unwrap();
        assert_eq!(read_csv_from(out.as_slice()).unwrap(), df);
    }

    #[test]
    fn ragged_record_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv_from(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TableError::Csv(_)));
        assert!(err.to_string().contains("record 3"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "a\n\"oops\n";
        assert!(read_csv_from(csv.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv_from("".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\n1\n\n2\n";
        let df = read_csv_from(csv.as_bytes()).unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn int_like_strings_with_empty_become_cat() {
        let csv = "a\n1\n\n3\n";
        // middle row blank → skipped entirely; now force an empty cell
        let df = read_csv_from(csv.as_bytes()).unwrap();
        assert_eq!(df.dtype("a").unwrap(), DataType::Int);
        let csv = "a,b\n1,x\n,y\n";
        let df = read_csv_from(csv.as_bytes()).unwrap();
        assert_eq!(df.dtype("a").unwrap(), DataType::Cat);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("faircap_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let df = DataFrame::builder()
            .cat("c", &["x", "y"])
            .int("n", vec![1, 2])
            .build()
            .unwrap();
        write_csv(&df, &path).unwrap();
        let df2 = read_csv(&path).unwrap();
        assert_eq!(df, df2);
    }
}
