//! Conjunctive patterns (Definition 4.1) and their coverage (Definition 4.2).
//!
//! A [`Pattern`] is a conjunction of [`Predicate`]s, kept sorted by attribute
//! so that structurally equal patterns compare and hash equal regardless of
//! construction order. The empty pattern covers every row.

use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::mask::Mask;
use crate::predicate::Predicate;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A conjunction of predicates over distinct positions.
///
/// Invariant: predicates are sorted by `(attr, op, value)` and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Pattern {
    predicates: Vec<Predicate>,
}

impl Pattern {
    /// The empty pattern, which covers all rows.
    pub fn empty() -> Self {
        Pattern::default()
    }

    /// Build from predicates; sorts and deduplicates.
    pub fn new(mut predicates: Vec<Predicate>) -> Self {
        predicates.sort();
        predicates.dedup();
        Pattern { predicates }
    }

    /// Convenience constructor for a conjunction of equality predicates.
    pub fn of_eq(pairs: &[(&str, Value)]) -> Self {
        Pattern::new(
            pairs
                .iter()
                .map(|(a, v)| Predicate::eq(a, v.clone()))
                .collect(),
        )
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The predicates, sorted.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Attribute names mentioned (sorted, deduplicated).
    pub fn attributes(&self) -> Vec<&str> {
        let mut attrs: Vec<&str> = self.predicates.iter().map(|p| p.attr.as_str()).collect();
        attrs.dedup();
        attrs
    }

    /// New pattern with `pred` added.
    pub fn with(&self, pred: Predicate) -> Pattern {
        let mut preds = self.predicates.clone();
        preds.push(pred);
        Pattern::new(preds)
    }

    /// Conjunction of two patterns.
    pub fn and(&self, other: &Pattern) -> Pattern {
        let mut preds = self.predicates.clone();
        preds.extend_from_slice(&other.predicates);
        Pattern::new(preds)
    }

    /// All sub-patterns obtained by dropping exactly one predicate — the
    /// parents in the pattern lattice. The empty pattern has no parents.
    pub fn parents(&self) -> Vec<Pattern> {
        (0..self.predicates.len())
            .map(|i| {
                let mut preds = self.predicates.clone();
                preds.remove(i);
                Pattern { predicates: preds }
            })
            .collect()
    }

    /// Mask of rows covered by the pattern (Definition 4.2).
    pub fn coverage(&self, df: &DataFrame) -> Result<Mask> {
        let mut m = Mask::ones(df.n_rows());
        for p in &self.predicates {
            m.and_inplace(&p.eval(df)?);
            if m.none() {
                break;
            }
        }
        Ok(m)
    }

    /// Whether one row satisfies all predicates.
    pub fn matches_row(&self, df: &DataFrame, row: usize) -> Result<bool> {
        for p in &self.predicates {
            if !p.matches_row(df, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// True iff `other` contains every predicate of `self` (so `self` is a
    /// syntactic generalization and covers a superset of rows).
    pub fn is_subpattern_of(&self, other: &Pattern) -> bool {
        self.predicates.iter().all(|p| other.predicates.contains(p))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("⊤");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromIterator<Predicate> for Pattern {
    fn from_iter<T: IntoIterator<Item = Predicate>>(iter: T) -> Self {
        Pattern::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn df() -> DataFrame {
        DataFrame::builder()
            .cat("country", &["US", "IN", "US", "DE", "IN", "US"])
            .cat("role", &["dev", "dev", "qa", "dev", "mgr", "dev"])
            .int("age", vec![25, 31, 40, 29, 22, 35])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_pattern_covers_all() {
        let p = Pattern::empty();
        assert!(p.is_empty());
        assert_eq!(p.coverage(&df()).unwrap().count(), 6);
        assert_eq!(p.to_string(), "⊤");
    }

    #[test]
    fn construction_order_invariant() {
        let a = Pattern::new(vec![
            Predicate::eq("role", Value::from("dev")),
            Predicate::eq("country", Value::from("US")),
        ]);
        let b = Pattern::new(vec![
            Predicate::eq("country", Value::from("US")),
            Predicate::eq("role", Value::from("dev")),
        ]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn conjunction_coverage_is_intersection() {
        let d = df();
        let us = Pattern::of_eq(&[("country", Value::from("US"))]);
        let dev = Pattern::of_eq(&[("role", Value::from("dev"))]);
        let both = us.and(&dev);
        let m_us = us.coverage(&d).unwrap();
        let m_dev = dev.coverage(&d).unwrap();
        assert_eq!(both.coverage(&d).unwrap(), &m_us & &m_dev);
        assert_eq!(both.coverage(&d).unwrap().to_indices(), vec![0, 5]);
    }

    #[test]
    fn with_extends() {
        let p = Pattern::of_eq(&[("country", Value::from("US"))]).with(Predicate::new(
            "age",
            CmpOp::Ge,
            Value::Int(30),
        ));
        assert_eq!(p.len(), 2);
        assert_eq!(p.coverage(&df()).unwrap().to_indices(), vec![2, 5]);
    }

    #[test]
    fn dedup_in_constructor() {
        let p = Pattern::new(vec![
            Predicate::eq("a", Value::Int(1)),
            Predicate::eq("a", Value::Int(1)),
        ]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn parents_drop_one_predicate() {
        let p = Pattern::of_eq(&[("country", Value::from("US")), ("role", Value::from("dev"))]);
        let parents = p.parents();
        assert_eq!(parents.len(), 2);
        for parent in &parents {
            assert_eq!(parent.len(), 1);
            assert!(parent.is_subpattern_of(&p));
        }
        assert!(Pattern::empty().parents().is_empty());
    }

    #[test]
    fn subpattern_implies_coverage_superset() {
        let d = df();
        let gen = Pattern::of_eq(&[("role", Value::from("dev"))]);
        let spec = gen.with(Predicate::eq("country", Value::from("US")));
        assert!(gen.is_subpattern_of(&spec));
        let m_gen = gen.coverage(&d).unwrap();
        let m_spec = spec.coverage(&d).unwrap();
        assert!(m_spec.is_subset(&m_gen));
    }

    #[test]
    fn matches_row_consistent_with_coverage() {
        let d = df();
        let p = Pattern::of_eq(&[("country", Value::from("IN"))]).with(Predicate::new(
            "age",
            CmpOp::Lt,
            Value::Int(30),
        ));
        let m = p.coverage(&d).unwrap();
        for r in 0..d.n_rows() {
            assert_eq!(m.get(r), p.matches_row(&d, r).unwrap());
        }
    }

    #[test]
    fn display_joins_with_wedge() {
        let p = Pattern::of_eq(&[("country", Value::from("US")), ("role", Value::from("dev"))]);
        assert_eq!(p.to_string(), "country = US ∧ role = dev");
    }

    #[test]
    fn attributes_deduped() {
        let p = Pattern::new(vec![
            Predicate::new("age", CmpOp::Ge, Value::Int(20)),
            Predicate::new("age", CmpOp::Lt, Value::Int(30)),
            Predicate::eq("role", Value::from("dev")),
        ]);
        assert_eq!(p.attributes(), vec!["age", "role"]);
    }
}
