//! Single-attribute comparison predicates (Definition 4.1 of the paper).
//!
//! A predicate is `attr op value` with `op ∈ {=, ≠, <, >, ≤, ≥}`. Evaluating a
//! predicate against a frame produces a row [`Mask`]. Null semantics follow
//! SQL: a null cell never satisfies a predicate.

use crate::column::Column;
use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::mask::Mask;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering result.
    fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Symbol used when rendering rules.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// `attr op value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant compared against.
    pub value: Value,
}

impl Predicate {
    /// Construct an arbitrary predicate.
    pub fn new(attr: &str, op: CmpOp, value: Value) -> Self {
        Predicate {
            attr: attr.to_owned(),
            op,
            value,
        }
    }

    /// Shorthand for equality predicates, the common case in patterns.
    pub fn eq(attr: &str, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Eq, value)
    }

    /// Shorthand for inequality predicates.
    pub fn ne(attr: &str, value: Value) -> Self {
        Predicate::new(attr, CmpOp::Ne, value)
    }

    /// Evaluate against a frame, producing the mask of satisfying rows.
    pub fn eval(&self, df: &DataFrame) -> Result<Mask> {
        let col = df.column(&self.attr)?;
        Ok(self.eval_column(col, df.n_rows()))
    }

    /// Evaluate against a single column of known length.
    ///
    /// Categorical columns are compared through dictionary codes: an `Eq`
    /// against a value missing from the dictionary is all-false, `Ne`
    /// all-true, without any per-row string comparison.
    pub fn eval_column(&self, col: &Column, n_rows: usize) -> Mask {
        debug_assert_eq!(col.len(), n_rows);
        let mut m = Mask::zeros(n_rows);
        match (col, &self.value) {
            (Column::Cat(c), Value::Str(s)) if self.op == CmpOp::Eq || self.op == CmpOp::Ne => {
                match (c.code_of(s), self.op) {
                    (Some(code), CmpOp::Eq) => {
                        for (i, &cd) in c.codes().iter().enumerate() {
                            if cd == code {
                                m.set(i, true);
                            }
                        }
                    }
                    (Some(code), _) => {
                        for (i, &cd) in c.codes().iter().enumerate() {
                            if cd != code {
                                m.set(i, true);
                            }
                        }
                    }
                    (None, CmpOp::Eq) => {}
                    (None, _) => m = Mask::ones(n_rows),
                }
            }
            (Column::Int(v), _) => {
                for (i, &x) in v.iter().enumerate() {
                    if self.op.matches(Value::Int(x).cmp(&self.value)) {
                        m.set(i, true);
                    }
                }
            }
            (Column::Float(v), _) => {
                for (i, &x) in v.iter().enumerate() {
                    if self.op.matches(Value::Float(x).cmp(&self.value)) {
                        m.set(i, true);
                    }
                }
            }
            (Column::Bool(v), _) => {
                for (i, &x) in v.iter().enumerate() {
                    if self.op.matches(Value::Bool(x).cmp(&self.value)) {
                        m.set(i, true);
                    }
                }
            }
            (Column::Cat(c), _) => {
                // Ordered comparison on strings, or comparison against a
                // non-string constant (never matches for Eq).
                for (i, &cd) in c.codes().iter().enumerate() {
                    let v = Value::Str(c.value_of(cd).to_owned());
                    if self.op.matches(v.cmp(&self.value)) {
                        m.set(i, true);
                    }
                }
            }
        }
        m
    }

    /// Whether a single row of a frame satisfies the predicate.
    pub fn matches_row(&self, df: &DataFrame, row: usize) -> Result<bool> {
        let v = df.get(row, &self.attr)?;
        if v.is_null() {
            return Ok(false);
        }
        Ok(self.op.matches(v.cmp(&self.value)))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::builder()
            .cat("role", &["dev", "qa", "dev", "mgr"])
            .int("age", vec![25, 31, 40, 29])
            .float("salary", vec![120.0, 30.0, 150.0, 90.0])
            .bool("remote", vec![true, false, true, false])
            .build()
            .unwrap()
    }

    #[test]
    fn eq_on_categorical() {
        let p = Predicate::eq("role", Value::from("dev"));
        assert_eq!(p.eval(&df()).unwrap().to_indices(), vec![0, 2]);
    }

    #[test]
    fn ne_on_categorical() {
        let p = Predicate::ne("role", Value::from("dev"));
        assert_eq!(p.eval(&df()).unwrap().to_indices(), vec![1, 3]);
    }

    #[test]
    fn eq_missing_dictionary_value() {
        let p = Predicate::eq("role", Value::from("intern"));
        assert!(p.eval(&df()).unwrap().none());
        let p = Predicate::ne("role", Value::from("intern"));
        assert_eq!(p.eval(&df()).unwrap().count(), 4);
    }

    #[test]
    fn numeric_range_ops() {
        let d = df();
        let p = Predicate::new("age", CmpOp::Ge, Value::Int(30));
        assert_eq!(p.eval(&d).unwrap().to_indices(), vec![1, 2]);
        let p = Predicate::new("salary", CmpOp::Lt, Value::Float(100.0));
        assert_eq!(p.eval(&d).unwrap().to_indices(), vec![1, 3]);
        // int column vs float constant
        let p = Predicate::new("age", CmpOp::Gt, Value::Float(29.5));
        assert_eq!(p.eval(&d).unwrap().to_indices(), vec![1, 2]);
    }

    #[test]
    fn bool_predicates() {
        let p = Predicate::eq("remote", Value::Bool(true));
        assert_eq!(p.eval(&df()).unwrap().to_indices(), vec![0, 2]);
    }

    #[test]
    fn matches_row_agrees_with_eval() {
        let d = df();
        let preds = [
            Predicate::eq("role", Value::from("qa")),
            Predicate::new("age", CmpOp::Le, Value::Int(29)),
            Predicate::new("salary", CmpOp::Gt, Value::Float(100.0)),
        ];
        for p in &preds {
            let m = p.eval(&d).unwrap();
            for r in 0..d.n_rows() {
                assert_eq!(m.get(r), p.matches_row(&d, r).unwrap(), "pred {p} row {r}");
            }
        }
    }

    #[test]
    fn unknown_column_errors() {
        let p = Predicate::eq("nope", Value::Int(1));
        assert!(p.eval(&df()).is_err());
    }

    #[test]
    fn display_format() {
        let p = Predicate::new("age", CmpOp::Ge, Value::Int(30));
        assert_eq!(p.to_string(), "age ≥ 30");
    }
}
