//! # faircap-table
//!
//! Columnar in-memory table substrate for the FairCap reproduction.
//!
//! The paper's reference implementation sits on pandas; this crate provides
//! the equivalent layer from scratch:
//!
//! * [`DataFrame`] — dictionary-encoded columnar frames with typed columns
//!   ([`Column`]) and cheap row filtering through bitset [`Mask`]s.
//! * [`Predicate`] / [`Pattern`] — the paper's Definition 4.1 conjunctive
//!   patterns, with [`Pattern::coverage`] implementing Definition 4.2.
//! * [`csv`] — CSV I/O with type inference, used by examples and the
//!   benchmark harness to persist generated datasets.
//! * [`stats`] — special functions and hypothesis tests (Welch t, χ², G²)
//!   shared by the CATE estimators and the PC discovery algorithm.
//! * [`cache`] — the sharded, bounded LRU cache backing the CATE estimate
//!   cache (`faircap-causal`) and the grouping-pattern cache
//!   (`faircap-core`).
//!
//! ```
//! use faircap_table::{DataFrame, Pattern, Value};
//!
//! let df = DataFrame::builder()
//!     .cat("country", &["US", "IN", "US"])
//!     .int("age", vec![25, 31, 40])
//!     .build()
//!     .unwrap();
//! let p = Pattern::of_eq(&[("country", Value::from("US"))]);
//! assert_eq!(p.coverage(&df).unwrap().count(), 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod column;
pub mod csv;
pub mod dataframe;
pub mod error;
pub mod fnv;
pub mod mask;
pub mod pattern;
pub mod predicate;
pub mod stats;
pub mod value;

pub use cache::{CacheCounters, ShardedLruCache};
pub use column::{CatColumn, Column};
pub use dataframe::{DataFrame, DataFrameBuilder};
pub use error::{Result, TableError};
pub use fnv::FnvHasher;
pub use mask::{Mask, MaskView};
pub use pattern::Pattern;
pub use predicate::{CmpOp, Predicate};
pub use value::{DataType, Value};
