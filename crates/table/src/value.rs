//! Scalar values and data types.
//!
//! A [`Value`] is one cell of a table: an integer, float, boolean, categorical
//! string, or null. Values are the currency of predicates ([`crate::Predicate`])
//! and of row access.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Booleans.
    Bool,
    /// Dictionary-encoded categorical strings.
    Cat,
}

impl DataType {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Cat => "categorical",
        }
    }

    /// Whether the type is ordered numerically (ints and floats).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scalar cell.
///
/// `Value` implements a total order that is only meaningful within a type:
/// numeric values compare numerically across `Int`/`Float`, strings compare
/// lexicographically, and `Null` sorts first. Cross-type comparisons between
/// non-numeric kinds fall back to a stable arbitrary order so that values can
/// be used as BTreeMap keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Categorical string.
    Str(String),
}

impl Value {
    /// The type this value naturally belongs to; `None` for nulls.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Str(_) => Some(DataType::Cat),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats as `f64`, bools as 0/1, otherwise `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// String view for categorical values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different kinds stably.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            // Hash the bit pattern; consistent with `total_cmp` equality for
            // the canonical floats we produce (no distinct NaN payloads).
            Value::Float(v) => v.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(-1.0) < Value::Int(0));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn string_order_is_lexicographic() {
        assert!(Value::from("apple") < Value::from("banana"));
        assert_eq!(Value::from("x"), Value::from("x"));
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::from("hi").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_round_trip_readable() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("US").to_string(), "US");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn hash_consistent_with_eq_for_int_float() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        // Same-kind equal values hash equal.
        assert_eq!(h(&Value::from("a")), h(&Value::from("a")));
        assert_eq!(h(&Value::Int(5)), h(&Value::Int(5)));
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Cat.is_numeric());
        assert_eq!(DataType::Cat.name(), "categorical");
    }
}
