//! A stable, in-repo FNV-1a hasher for persistent fingerprints.
//!
//! `std::collections::hash_map::DefaultHasher` is only specified to be
//! deterministic *within one compiler release* — its algorithm (SipHash
//! with fixed keys today) is explicitly allowed to change between Rust
//! versions. Any fingerprint that leaves the process (the session snapshot
//! format's group/data/DAG fingerprints) must therefore not depend on it:
//! a toolchain upgrade would silently degrade every existing snapshot to a
//! partial warm start.
//!
//! [`FnvHasher`] is the 64-bit Fowler–Noll–Vo 1a function, implemented
//! here so its output is fixed forever:
//!
//! * the byte-stream digest depends only on the fed bytes;
//! * all multi-byte integer feeds use little-endian encoding explicitly,
//!   so the digest is also identical across platforms;
//! * strings are fed as `length ‖ bytes` ([`FnvHasher::write_str_stable`])
//!   so concatenation ambiguities (`"ab","c"` vs `"a","bc"`) cannot
//!   collide.
//!
//! It also implements [`std::hash::Hasher`] for drop-in use with in-process
//! hash maps, but persistent fingerprints should stick to the explicit
//! `*_stable` feeding methods: the `Hash` **trait**'s mapping from values
//! to `write` calls is itself not guaranteed stable across std versions.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a digest. See the [module docs](self) for why
/// this exists next to `DefaultHasher`.
///
/// # Examples
///
/// ```
/// use faircap_table::fnv::{fnv1a, FnvHasher};
///
/// let mut h = FnvHasher::new();
/// h.write_bytes(b"faircap");
/// assert_eq!(h.finish64(), fnv1a(b"faircap"));
/// // The digest is a constant of the algorithm, not of the toolchain.
/// assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET_BASIS)
    }
}

impl FnvHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut state = self.0;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.0 = state;
    }

    /// Feed one byte.
    pub fn write_u8_stable(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feed a `u64` as its 8 little-endian bytes (platform-independent).
    pub fn write_u64_stable(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed an `i64` as its 8 little-endian two's-complement bytes.
    pub fn write_i64_stable(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a string as `length ‖ UTF-8 bytes`, making consecutive string
    /// feeds unambiguous.
    pub fn write_str_stable(&mut self, s: &str) {
        self.write_u64_stable(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    pub fn finish64(&self) -> u64 {
        self.0
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.write_bytes(bytes);
    }

    // Fix the integer feeds to little-endian so even trait-based use is
    // platform-independent (the default impls feed native-endian bytes).
    fn write_u64(&mut self, v: u64) {
        self.write_u64_stable(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64_stable(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u8_stable(v);
    }
}

/// One-shot FNV-1a digest of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::new();
    h.write_bytes(bytes);
    h.finish64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = FnvHasher::new();
        h.write_bytes(b"foo");
        h.write_bytes(b"bar");
        assert_eq!(h.finish64(), fnv1a(b"foobar"));
    }

    #[test]
    fn string_feed_is_length_prefixed() {
        let digest = |parts: &[&str]| {
            let mut h = FnvHasher::new();
            for p in parts {
                h.write_str_stable(p);
            }
            h.finish64()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
        assert_ne!(digest(&["ab"]), digest(&["ab", ""]));
    }

    #[test]
    fn integer_feeds_are_little_endian() {
        let mut h = FnvHasher::new();
        h.write_u64_stable(0x0102_0304_0506_0708);
        assert_eq!(
            h.finish64(),
            fnv1a(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }

    #[test]
    fn hasher_trait_matches_stable_methods() {
        use std::hash::Hasher;
        let mut a = FnvHasher::new();
        Hasher::write_u64(&mut a, 42);
        let mut b = FnvHasher::new();
        b.write_u64_stable(42);
        assert_eq!(a.finish(), b.finish64());
    }
}
