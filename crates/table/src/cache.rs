//! A sharded, bounded, LRU-evicting concurrent cache.
//!
//! [`ShardedLruCache`] is the shared caching substrate of the workspace:
//! the CATE estimate cache in `faircap-causal` and the grouping-pattern
//! cache in `faircap-core` are both instances of it. Keys are distributed
//! over `N` independently locked shards by hash, so concurrent solve
//! workers contend on `1/N`-th of the cache instead of a single mutex; a
//! global capacity bounds the total entry count, with least-recently-used
//! eviction (exact within a shard, approximate across shards — see
//! [`ShardedLruCache::insert`]).
//!
//! Hit / miss / eviction counters are maintained per shard and summed on
//! demand ([`ShardedLruCache::counters`]), so reading statistics never
//! serializes the hot path. Recency is a single cache-wide atomic clock,
//! which keeps last-use ticks comparable across shards (needed when
//! [`set_capacity`](ShardedLruCache::set_capacity) shrinks the cache and
//! must evict globally-oldest entries first).

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Outcome of a [`ShardedLruCache::insert`].
#[derive(Debug)]
pub struct Inserted<K, V> {
    /// The key already existed: its value was replaced and the entry count
    /// did not grow. Lets callers maintain derived per-scope entry
    /// counters exactly, even under racing duplicate inserts.
    pub replaced: bool,
    /// Entries evicted to respect the capacity bound.
    pub evicted: Vec<(K, V)>,
}

/// Aggregate hit/miss/eviction counters of a [`ShardedLruCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
}

struct Shard<K, V> {
    map: HashMap<K, (V, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    /// Remove and return this shard's least-recently-used entry.
    fn evict_lru(&mut self) -> Option<(K, V)> {
        let lru_key = self
            .map
            .iter()
            .min_by_key(|(_, (_, tick))| *tick)
            .map(|(k, _)| k.clone())?;
        let (value, _) = self.map.remove(&lru_key)?;
        self.evictions += 1;
        Some((lru_key, value))
    }
}

/// A concurrent cache with hash-sharded locking, a global entry bound, and
/// LRU eviction. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use faircap_table::cache::ShardedLruCache;
///
/// let cache: ShardedLruCache<u32, String> = ShardedLruCache::new(2, 1);
/// cache.insert(1, "one".into());
/// cache.insert(2, "two".into());
/// assert_eq!(cache.get(&1).as_deref(), Some("one")); // 1 is now most recent
/// cache.insert(3, "three".into());                   // bound 2 → evicts LRU (2)
/// assert_eq!(cache.get(&2), None);
/// assert_eq!(cache.len(), 2);
/// let c = cache.counters();
/// assert_eq!((c.hits, c.misses, c.evictions), (1, 1, 1));
/// ```
pub struct ShardedLruCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    shard_bits: u32,
    capacity: AtomicUsize,
    entries: AtomicUsize,
    tick: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache holding at most `capacity` entries across `n_shards` lock
    /// shards. `n_shards` is rounded up to a power of two (minimum 1).
    pub fn new(capacity: usize, n_shards: usize) -> Self {
        let n = n_shards.max(1).next_power_of_two();
        ShardedLruCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_bits: n.trailing_zeros(),
            capacity: AtomicUsize::new(capacity),
            entries: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
        }
    }

    /// An effectively unbounded cache (capacity `usize::MAX`).
    pub fn unbounded(n_shards: usize) -> Self {
        Self::new(usize::MAX, n_shards)
    }

    /// Number of lock shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Entries currently held across all shards.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        // Use the high bits for shard selection so the map (which consumes
        // the low bits) and the shard index stay decorrelated.
        let idx = (h.finish() >> (64 - self.shard_bits.max(1) as u64)) as usize;
        idx & (self.shards.len() - 1)
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        &self.shards[self.shard_index(key)]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a key, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock();
        let found = shard.map.get_mut(key).map(|(value, last_used)| {
            *last_used = tick;
            value.clone()
        });
        match found {
            Some(_) => shard.hits += 1,
            None => shard.misses += 1,
        }
        found
    }

    /// Whether a key is present, without counting a hit/miss or refreshing
    /// recency. Used by bulk imports to distinguish inserts from
    /// replacements without skewing the observability counters.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_of(key).lock().map.contains_key(key)
    }

    /// Insert (or replace) an entry, evicting least-recently-used entries
    /// while the cache is over capacity.
    ///
    /// The insert shard's lock is released before any eviction, so no two
    /// shard locks are ever held at once. To keep steady-state eviction
    /// cheap, a full cache prefers evicting the LRU entry of the shard just
    /// inserted into (an `O(shard)` scan) and only falls back to the
    /// globally ordered sweep when that shard holds at most the fresh entry
    /// itself — which only happens while the cache is sparse, exactly when
    /// the global sweep is cheap. Cross-shard LRU order is therefore
    /// approximate at steady state (exact for a single-shard cache and for
    /// [`set_capacity`](Self::set_capacity) shrinks). Under concurrent
    /// inserts the bound can be overshot transiently, but every inserting
    /// thread evicts until the bound holds again. An unbounded cache (the
    /// default) never evicts.
    pub fn insert(&self, key: K, value: V) -> Inserted<K, V> {
        let tick = self.next_tick();
        let shard_idx = self.shard_index(&key);
        let replaced;
        {
            let mut shard = self.shards[shard_idx].lock();
            replaced = shard.map.insert(key, (value, tick)).is_some();
            if !replaced {
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
        }
        let evicted = self.enforce_capacity(self.capacity(), Some(shard_idx));
        Inserted { replaced, evicted }
    }

    /// Change the entry bound, immediately evicting globally
    /// least-recently-used entries if the cache is over the new bound.
    /// Returns everything evicted.
    pub fn set_capacity(&self, capacity: usize) -> Vec<(K, V)> {
        self.capacity.store(capacity, Ordering::Relaxed);
        self.enforce_capacity(capacity, None)
    }

    /// Evict until at most `capacity` entries remain, preferring the LRU
    /// entry of `prefer_shard` while it holds other entries besides the
    /// freshest one. Locks one shard at a time.
    fn enforce_capacity(&self, capacity: usize, prefer_shard: Option<usize>) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        while self.entries.load(Ordering::Relaxed) > capacity {
            if let Some(i) = prefer_shard {
                let mut shard = self.shards[i].lock();
                if shard.map.len() > 1 {
                    if let Some(pair) = shard.evict_lru() {
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        evicted.push(pair);
                        continue;
                    }
                }
            }
            // Global sweep: find the shard holding the oldest entry, then
            // evict from it. Ticks are globally comparable because they
            // come from one cache-wide clock.
            let mut oldest: Option<(usize, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock();
                if let Some(min) = shard.map.values().map(|(_, t)| *t).min() {
                    if oldest.is_none_or(|(_, best)| min < best) {
                        oldest = Some((i, min));
                    }
                }
            }
            let Some((i, _)) = oldest else { break };
            let mut shard = self.shards[i].lock();
            if let Some(pair) = shard.evict_lru() {
                self.entries.fetch_sub(1, Ordering::Relaxed);
                evicted.push(pair);
            }
        }
        evicted
    }

    /// Visit every entry (shard by shard). Used to export cache contents
    /// for snapshots; recency is not refreshed.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for (k, (v, _)) in shard.map.iter() {
                f(k, v);
            }
        }
    }

    /// Drop every entry (counters are retained).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let n = shard.map.len();
            shard.map.clear();
            self.entries.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Hit/miss/eviction counters summed over all shards.
    pub fn counters(&self) -> CacheCounters {
        let mut c = CacheCounters {
            entries: self.len(),
            ..CacheCounters::default()
        };
        for shard in self.shards.iter() {
            let shard = shard.lock();
            c.hits += shard.hits;
            c.misses += shard.misses;
            c.evictions += shard.evictions;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bound_is_respected() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(8, 4);
        for i in 0..100 {
            cache.insert(i, i * 10);
            assert!(
                cache.len() <= 8,
                "len {} exceeds bound after {i}",
                cache.len()
            );
        }
        assert_eq!(cache.len(), 8);
        let c = cache.counters();
        assert_eq!(c.evictions, 92);
        assert_eq!(c.entries, 8);
    }

    #[test]
    fn evicts_lru_first_single_shard() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(3, 1);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(3, 3);
        // Touch 1 and 2 so 3 is the LRU.
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&2).is_some());
        let ins = cache.insert(4, 4);
        assert!(!ins.replaced);
        assert_eq!(ins.evicted.len(), 1);
        assert_eq!(ins.evicted[0].0, 3, "LRU entry must go first");
        assert!(cache.get(&3).is_none());
        assert!(cache.get(&1).is_some() && cache.get(&2).is_some() && cache.get(&4).is_some());
    }

    #[test]
    fn replacement_does_not_grow_or_evict() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        assert!(!cache.insert(1, 10).replaced);
        let ins = cache.insert(1, 11);
        assert!(ins.replaced, "second insert of the same key replaces");
        assert!(ins.evicted.is_empty());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&1), Some(11));
    }

    #[test]
    fn counters_consistent_across_shards() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::unbounded(8);
        for i in 0..200 {
            cache.insert(i, i);
        }
        for i in 0..100 {
            assert_eq!(cache.get(&i), Some(i)); // hits
        }
        for i in 200..250 {
            assert_eq!(cache.get(&i), None); // misses
        }
        let c = cache.counters();
        assert_eq!(c.hits, 100);
        assert_eq!(c.misses, 50);
        assert_eq!(c.evictions, 0);
        assert_eq!(c.entries, 200);
        assert_eq!(cache.len(), 200);
    }

    #[test]
    fn shrinking_capacity_evicts_globally_oldest() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::unbounded(4);
        for i in 0..20 {
            cache.insert(i, i);
        }
        // Refresh the first ten so the second ten are oldest.
        for i in 0..10 {
            cache.get(&i);
        }
        let evicted = cache.set_capacity(10);
        assert_eq!(evicted.len(), 10);
        assert_eq!(cache.len(), 10);
        for (k, _) in &evicted {
            assert!(*k >= 10, "refreshed entry {k} evicted before older ones");
        }
        for i in 0..10 {
            assert!(cache.get(&i).is_some());
        }
    }

    #[test]
    fn capacity_zero_holds_nothing() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(0, 2);
        let ins = cache.insert(1, 1);
        assert_eq!(ins.evicted.len(), 1);
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&1).is_none());
    }

    #[test]
    fn for_each_visits_every_entry() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::unbounded(4);
        for i in 0..17 {
            cache.insert(i, i + 100);
        }
        let mut seen = Vec::new();
        cache.for_each(|k, v| seen.push((*k, *v)));
        seen.sort_unstable();
        assert_eq!(seen.len(), 17);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!((k, v), (i as u32, i as u32 + 100));
        }
    }

    #[test]
    fn concurrent_inserts_respect_bound() {
        let cache: Arc<ShardedLruCache<u64, u64>> = Arc::new(ShardedLruCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500 {
                        let k = t * 1_000 + i;
                        cache.insert(k, k);
                        cache.get(&k);
                    }
                });
            }
        });
        assert!(cache.len() <= 64, "len {}", cache.len());
        let c = cache.counters();
        assert_eq!(c.entries as u64 + c.evictions, 2_000);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::unbounded(2);
        cache.insert(1, 1);
        cache.get(&1);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters().hits, 1);
    }
}
