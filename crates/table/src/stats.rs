//! Statistical special functions and hypothesis tests.
//!
//! Everything here is implemented from scratch (no external math crates):
//! log-gamma (Lanczos), the regularized incomplete gamma and beta functions,
//! normal / chi-square / Student-t tail probabilities, Welch's t-test, and the
//! chi-square and G² independence tests used by the PC causal-discovery
//! algorithm.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments, which is ample for p-values.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from Godfrey / Numerical Recipes (g = 7).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized incomplete beta `I_x(a, b)` via the Lentz continued fraction.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation for faster convergence. Both branches
    // evaluate the continued fraction directly (`ln_front` is symmetric
    // under `(a, b, x) → (b, a, 1−x)`): a recursive `1 − beta_inc(b, a,
    // 1−x)` here recurses forever when `x` lands exactly on the threshold,
    // since the flipped argument then fails its threshold test too.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Standard normal CDF `Φ(x)`, via the error function identity
/// `Φ(x) = (1 + erf(x/√2)) / 2` with `erf` from the incomplete gamma.
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let erf = if z >= 0.0 {
        gamma_p(0.5, z * z)
    } else {
        -gamma_p(0.5, z * z)
    };
    0.5 * (1.0 + erf)
}

/// Survival function of the chi-square distribution with `k` degrees of
/// freedom: `P(X ≥ x)`.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi2_sf requires k > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// Two-sided p-value for a Student-t statistic with `df` degrees of freedom.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_sf requires df > 0");
    let t = t.abs();
    if !t.is_finite() {
        return 0.0;
    }
    // P(|T| >= t) = I_{df/(df+t^2)}(df/2, 1/2)
    beta_inc(df / 2.0, 0.5, df / (df + t * t))
}

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Test statistic (t or chi-square/G²).
    pub statistic: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// p-value.
    pub p_value: f64,
}

/// Welch's unequal-variance t-test from sufficient statistics.
///
/// `mean`, `var` (sample variance, n−1 denominator), `n` for each arm.
/// Returns `None` when either arm has fewer than 2 observations or both
/// variances are zero.
pub fn welch_t_test(
    mean1: f64,
    var1: f64,
    n1: usize,
    mean2: f64,
    var2: f64,
    n2: usize,
) -> Option<TestResult> {
    if n1 < 2 || n2 < 2 {
        return None;
    }
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let se2 = var1 / n1f + var2 / n2f;
    if se2 <= 0.0 {
        return None;
    }
    let t = (mean1 - mean2) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((var1 / n1f).powi(2) / (n1f - 1.0) + (var2 / n2f).powi(2) / (n2f - 1.0));
    Some(TestResult {
        statistic: t,
        df,
        p_value: t_sf_two_sided(t, df),
    })
}

/// Chi-square test of independence on an `r × c` contingency table given in
/// row-major order. Returns `None` for degenerate tables (a zero margin).
pub fn chi2_independence(table: &[u64], rows: usize, cols: usize) -> Option<TestResult> {
    contingency_test(table, rows, cols, false)
}

/// G² (log-likelihood ratio) test of independence on an `r × c` table.
pub fn g2_independence(table: &[u64], rows: usize, cols: usize) -> Option<TestResult> {
    contingency_test(table, rows, cols, true)
}

fn contingency_test(table: &[u64], rows: usize, cols: usize, g2: bool) -> Option<TestResult> {
    assert_eq!(table.len(), rows * cols, "table shape mismatch");
    let mut row_sum = vec![0u64; rows];
    let mut col_sum = vec![0u64; cols];
    let mut total = 0u64;
    for r in 0..rows {
        for c in 0..cols {
            let v = table[r * cols + c];
            row_sum[r] += v;
            col_sum[c] += v;
            total += v;
        }
    }
    if total == 0 {
        return None;
    }
    // Degrees of freedom use only non-empty rows/columns, matching the
    // standard treatment of structural zeros in CI testing.
    let eff_rows = row_sum.iter().filter(|&&s| s > 0).count();
    let eff_cols = col_sum.iter().filter(|&&s| s > 0).count();
    if eff_rows < 2 || eff_cols < 2 {
        return None;
    }
    let df = ((eff_rows - 1) * (eff_cols - 1)) as f64;
    let mut stat = 0.0;
    for r in 0..rows {
        for c in 0..cols {
            if row_sum[r] == 0 || col_sum[c] == 0 {
                continue;
            }
            let expected = row_sum[r] as f64 * col_sum[c] as f64 / total as f64;
            let observed = table[r * cols + c] as f64;
            if g2 {
                if observed > 0.0 {
                    stat += 2.0 * observed * (observed / expected).ln();
                }
            } else {
                let d = observed - expected;
                stat += d * d / expected;
            }
        }
    }
    Some(TestResult {
        statistic: stat,
        df,
        p_value: chi2_sf(stat, df),
    })
}

/// Sample mean and variance (n−1 denominator) of a slice.
pub fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len();
    if n == 0 {
        return (f64::NAN, f64::NAN);
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let ss: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    (mean, ss / (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // ln Γ(10.3): cross-checked against Stirling's series
        // (10.3−0.5)·ln 10.3 − 10.3 + ln(2π)/2 + 1/(12·10.3) ≈ 13.48204.
        assert!(close(ln_gamma(10.3), 13.482_036_786_138_4, 1e-10));
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.7), (5.0, 9.0), (10.0, 3.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!(close(p + q, 1.0, 1e-12), "a={a} x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        assert!(close(gamma_p(1.0, 2.0), 1.0 - (-2.0f64).exp(), 1e-12));
        // chi2 cdf with k=2 at x=2 → P(1,1)
        assert!(close(gamma_p(1.0, 1.0), 1.0 - (-1.0f64).exp(), 1e-12));
    }

    #[test]
    fn chi2_sf_reference_values() {
        // scipy.stats.chi2.sf(3.84, 1) ≈ 0.050043521248705147
        assert!(close(chi2_sf(3.84, 1.0), 0.050_043_521_248_705, 1e-9));
        // For k = 2, the chi-square SF is exactly e^{−x/2}.
        assert!(close(chi2_sf(5.99, 2.0), (-2.995f64).exp(), 1e-12));
        // sf at 0 is 1
        assert_eq!(chi2_sf(0.0, 4.0), 1.0);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-12));
        // Φ(1.96) ≈ 0.9750021048517795
        assert!(close(normal_cdf(1.96), 0.975_002_104_851_779, 1e-9));
        assert!(close(normal_cdf(-1.96), 1.0 - 0.975_002_104_851_779, 1e-9));
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn beta_inc_reference_values() {
        // I_x(1,1) = x
        assert!(close(beta_inc(1.0, 1.0, 0.3), 0.3, 1e-12));
        // I_x(2,2) = 3x² − 2x³
        let x: f64 = 0.4;
        assert!(close(
            beta_inc(2.0, 2.0, x),
            3.0 * x * x - 2.0 * x * x * x,
            1e-12
        ));
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_at_the_symmetry_threshold_terminates() {
        // x exactly at (a+1)/(a+b+2) used to recurse forever through the
        // reflection identity (caught live: a German-credit solve produced
        // a t-statistic landing exactly on the threshold). I_0.5(1,1) = 0.5
        // is the simplest instance: the threshold is (1+1)/(1+1+2) = 0.5.
        assert!(close(beta_inc(1.0, 1.0, 0.5), 0.5, 1e-12));
        // Symmetric-parameter midpoints are always exactly the threshold.
        for ab in [0.5, 1.0, 2.5, 7.0] {
            assert!(close(beta_inc(ab, ab, 0.5), 0.5, 1e-10), "a = b = {ab}");
        }
        // And the t-distribution shape (a = df/2, b = 1/2) at its threshold.
        let (a, b) = (4.5, 0.5);
        let x = (a + 1.0) / (a + b + 2.0);
        let v = beta_inc(a, b, x);
        assert!(v.is_finite() && (0.0..=1.0).contains(&v));
        // Continuity across the threshold.
        let eps = 1e-9;
        assert!(close(beta_inc(a, b, x - eps), v, 1e-6));
        assert!(close(beta_inc(a, b, x + eps), v, 1e-6));
    }

    #[test]
    fn t_two_sided_reference_values() {
        // Verified against direct Simpson integration of the t-density
        // (see `t_two_sided_matches_numeric_integration`).
        assert!(close(t_sf_two_sided(2.0, 10.0), 0.073_388_034_770_25, 1e-9));
        // symmetric in sign
        assert!(close(
            t_sf_two_sided(-2.0, 10.0),
            t_sf_two_sided(2.0, 10.0),
            1e-14
        ));
        // large df approaches the normal: p(1.96, big) ≈ 0.05
        assert!(close(t_sf_two_sided(1.96, 1e6), 0.05, 1e-3));
    }

    #[test]
    fn welch_t_test_basic() {
        // Equal distributions → small |t|, p near 1.
        let r = welch_t_test(10.0, 4.0, 50, 10.0, 4.0, 50).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(close(r.p_value, 1.0, 1e-9));
        // Clearly separated means → tiny p.
        let r = welch_t_test(10.0, 1.0, 100, 12.0, 1.0, 100).unwrap();
        assert!(r.p_value < 1e-9);
        assert!(r.statistic < 0.0);
        // Degenerate inputs.
        assert!(welch_t_test(1.0, 0.0, 1, 2.0, 0.0, 50).is_none());
        assert!(welch_t_test(1.0, 0.0, 10, 1.0, 0.0, 10).is_none());
    }

    #[test]
    fn welch_df_matches_reference() {
        // Hand computation: se² = 4/30 + 9/40 = 0.3583…,
        // t = −1/√se² = −1.670538…, Welch–Satterthwaite df = 67.18776.
        let r = welch_t_test(10.0, 4.0, 30, 11.0, 9.0, 40).unwrap();
        assert!(close(r.statistic, -1.670_538_139, 1e-7));
        assert!(close(r.df, 67.187_759, 1e-5));
    }

    #[test]
    fn t_two_sided_matches_numeric_integration() {
        // Independent check of beta_inc: integrate the t-density tail with
        // Simpson's rule and compare to the closed form.
        for &(t, df) in &[(1.0f64, 5.0f64), (2.0, 10.0), (2.5, 30.0)] {
            let c = (ln_gamma((df + 1.0) / 2.0)
                - ln_gamma(df / 2.0)
                - 0.5 * (df * std::f64::consts::PI).ln())
            .exp();
            let dens = |x: f64| c * (1.0 + x * x / df).powf(-(df + 1.0) / 2.0);
            let (a, b, n) = (t, 150.0, 200_000usize);
            let h = (b - a) / n as f64;
            let mut s = dens(a) + dens(b);
            for i in 1..n {
                let x = a + i as f64 * h;
                s += if i % 2 == 1 { 4.0 } else { 2.0 } * dens(x);
            }
            let numeric = 2.0 * s * h / 3.0;
            assert!(
                close(t_sf_two_sided(t, df), numeric, 1e-7),
                "t={t} df={df}: {} vs {numeric}",
                t_sf_two_sided(t, df)
            );
        }
    }

    #[test]
    fn chi2_independence_independent_table() {
        // Perfectly proportional table → statistic 0, p = 1.
        let t = [10, 20, 30, 60];
        let r = chi2_independence(&t, 2, 2).unwrap();
        assert!(r.statistic.abs() < 1e-9);
        assert!(close(r.p_value, 1.0, 1e-9));
    }

    #[test]
    fn chi2_independence_dependent_table() {
        let t = [50, 5, 5, 50];
        let r = chi2_independence(&t, 2, 2).unwrap();
        assert!(r.p_value < 1e-9);
        assert_eq!(r.df, 1.0);
        let g = g2_independence(&t, 2, 2).unwrap();
        assert!(g.p_value < 1e-9);
    }

    #[test]
    fn contingency_degenerate_margins() {
        // One empty row → cannot test.
        let t = [0, 0, 5, 5];
        assert!(chi2_independence(&t, 2, 2).is_none());
        let t = [0, 0, 0, 0];
        assert!(chi2_independence(&t, 2, 2).is_none());
    }

    #[test]
    fn g2_zero_cells_do_not_nan() {
        let t = [10, 0, 0, 10];
        let r = g2_independence(&t, 2, 2).unwrap();
        assert!(r.statistic.is_finite());
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn mean_var_basic() {
        let (m, v) = mean_var(&[1.0, 2.0, 3.0, 4.0]);
        assert!(close(m, 2.5, 1e-12));
        assert!(close(v, 5.0 / 3.0, 1e-12));
        let (m, v) = mean_var(&[7.0]);
        assert_eq!(m, 7.0);
        assert_eq!(v, 0.0);
        assert!(mean_var(&[]).0.is_nan());
    }
}
