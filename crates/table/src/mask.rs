//! Fixed-length row bitmasks.
//!
//! A [`Mask`] selects a subset of the rows of a frame. Pattern evaluation,
//! coverage computation, and group-by all produce masks; set algebra on masks
//! (`&`, `|`, `!`, difference) is word-parallel over `u64` blocks.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

const BITS: usize = 64;

/// A fixed-length bitset over row indices `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Mask {
    words: Vec<u64>,
    len: usize,
}

impl Mask {
    /// All-zeros mask of length `len`.
    pub fn zeros(len: usize) -> Self {
        Mask {
            words: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// All-ones mask of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut m = Mask {
            words: vec![u64::MAX; len.div_ceil(BITS)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Build from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut m = Mask::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                m.set(i, true);
            }
        }
        m
    }

    /// Build a mask of length `len` with the given indices set.
    ///
    /// Indices outside `0..len` are ignored.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut m = Mask::zeros(len);
        for &i in indices {
            if i < len {
                m.set(i, true);
            }
        }
        m
    }

    /// Number of rows this mask ranges over (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask ranges over zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        (self.words[i / BITS] >> (i % BITS)) & 1 == 1
    }

    /// Set bit `i` to `v`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        let (w, b) = (i / BITS, i % BITS);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if at least one bit is set.
    pub fn any(&self) -> bool {
        !self.none()
    }

    /// Fraction of rows selected; 0 for an empty mask.
    pub fn fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_inplace(&mut self, other: &Mask) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_inplace(&mut self, other: &Mask) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place set difference `self \ other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn andnot_inplace(&mut self, other: &Mask) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Set difference `self \ other` as a new mask.
    pub fn andnot(&self, other: &Mask) -> Mask {
        let mut m = self.clone();
        m.andnot_inplace(other);
        m
    }

    /// Size of the intersection without materializing it.
    pub fn intersect_count(&self, other: &Mask) -> usize {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Size of the union without materializing it.
    pub fn union_count(&self, other: &Mask) -> usize {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// True iff every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &Mask) -> bool {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over indices of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            mask: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect set-bit indices into a vector.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.count());
        v.extend(self.iter_ones());
        v
    }

    /// The backing `u64` words, least-significant bit = row 0. Exposed for
    /// serialization (session snapshots persist treated-row masks verbatim).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// A borrowed word-level [`MaskView`] — the entry point of the fused
    /// mask-and-accumulate kernels, which iterate set *words* instead of
    /// set rows.
    pub fn view(&self) -> MaskView<'_> {
        MaskView {
            words: &self.words,
            len: self.len,
        }
    }

    /// Rebuild a mask from its length and backing words (the inverse of
    /// [`Self::as_words`]). Returns `None` when `words` has the wrong
    /// length for `len`; bits beyond `len` in the last word are cleared.
    pub fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != len.div_ceil(BITS) {
            return None;
        }
        let mut m = Mask { words, len };
        m.clear_tail();
        Some(m)
    }

    fn clear_tail(&mut self) {
        let tail = self.len % BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    fn check_len(&self, other: &Mask) {
        assert_eq!(
            self.len, other.len,
            "mask length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// A borrowed, word-granular view of a [`Mask`].
///
/// Hot loops that touch every selected row (design-matrix assembly, fused
/// gathers) pay per-*row* overhead if they walk [`Mask::iter_ones`]; the
/// view exposes the backing words directly so kernels can skip unselected
/// 64-row spans in one comparison and decode set bits with
/// `trailing_zeros` inside a register. Bits at or beyond `len` are
/// guaranteed zero (masks clear their tail word on every mutation).
#[derive(Debug, Clone, Copy)]
pub struct MaskView<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> MaskView<'a> {
    /// Number of rows covered (set *and* unset).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words, least-significant bit = lowest row.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Popcount of set rows — one `count_ones` per word, no per-bit work.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Invoke `f(word_index, word)` for every *non-zero* word, in
    /// ascending word order. Row `i` is set iff
    /// `word_index * 64 + bit == i` for some set `bit` of `word`; zero
    /// words (64 unselected rows) are skipped without calling `f`.
    pub fn for_each_set_word(&self, mut f: impl FnMut(usize, u64)) {
        for (wi, &word) in self.words.iter().enumerate() {
            if word != 0 {
                f(wi, word);
            }
        }
    }
}

/// Iterator over set-bit indices; see [`Mask::iter_ones`].
pub struct OnesIter<'a> {
    mask: &'a Mask,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_idx];
        }
    }
}

impl BitAnd for &Mask {
    type Output = Mask;
    fn bitand(self, rhs: &Mask) -> Mask {
        let mut m = self.clone();
        m.and_inplace(rhs);
        m
    }
}

impl BitOr for &Mask {
    type Output = Mask;
    fn bitor(self, rhs: &Mask) -> Mask {
        let mut m = self.clone();
        m.or_inplace(rhs);
        m
    }
}

impl BitAndAssign<&Mask> for Mask {
    fn bitand_assign(&mut self, rhs: &Mask) {
        self.and_inplace(rhs);
    }
}

impl BitOrAssign<&Mask> for Mask {
    fn bitor_assign(&mut self, rhs: &Mask) {
        self.or_inplace(rhs);
    }
}

impl Not for &Mask {
    type Output = Mask;
    fn not(self) -> Mask {
        let mut m = Mask {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        m.clear_tail();
        m
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask({}/{} set)", self.count(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Mask::zeros(100);
        assert_eq!(z.count(), 0);
        assert!(z.none());
        let o = Mask::ones(100);
        assert_eq!(o.count(), 100);
        assert!(o.any());
        // tail bits beyond len must not be set
        let o65 = Mask::ones(65);
        assert_eq!(o65.count(), 65);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Mask::zeros(130);
        m.set(0, true);
        m.set(64, true);
        m.set(129, true);
        assert!(m.get(0) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(128));
        assert_eq!(m.count(), 3);
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Mask::zeros(10).get(10);
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::from_indices(10, &[1, 3, 5, 7]);
        let b = Mask::from_indices(10, &[3, 4, 5]);
        assert_eq!((&a & &b).to_indices(), vec![3, 5]);
        assert_eq!((&a | &b).to_indices(), vec![1, 3, 4, 5, 7]);
        assert_eq!(a.andnot(&b).to_indices(), vec![1, 7]);
        assert_eq!((!&b).count(), 7);
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union_count(&b), 5);
    }

    #[test]
    fn subset_relation() {
        let a = Mask::from_indices(10, &[2, 4]);
        let b = Mask::from_indices(10, &[1, 2, 4, 8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(Mask::zeros(10).is_subset(&a));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let idx = vec![0, 63, 64, 65, 127, 128, 199];
        let m = Mask::from_indices(200, &idx);
        assert_eq!(m.to_indices(), idx);
    }

    #[test]
    fn from_bools_matches() {
        let bools = [true, false, true, true, false];
        let m = Mask::from_bools(&bools);
        assert_eq!(m.to_indices(), vec![0, 2, 3]);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn fraction() {
        let m = Mask::from_indices(8, &[0, 1]);
        assert!((m.fraction() - 0.25).abs() < 1e-12);
        assert_eq!(Mask::zeros(0).fraction(), 0.0);
    }

    #[test]
    fn from_indices_ignores_out_of_range() {
        let m = Mask::from_indices(4, &[0, 9, 3]);
        assert_eq!(m.to_indices(), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = Mask::zeros(4);
        a.and_inplace(&Mask::zeros(5));
    }

    #[test]
    fn words_round_trip() {
        let m = Mask::from_indices(130, &[0, 63, 64, 129]);
        let words = m.as_words().to_vec();
        let back = Mask::from_words(130, words).unwrap();
        assert_eq!(back, m);
        // Wrong word count is rejected; tail bits are cleared.
        assert!(Mask::from_words(130, vec![0; 2]).is_none());
        let noisy = Mask::from_words(65, vec![u64::MAX, u64::MAX]).unwrap();
        assert_eq!(noisy.count(), 65);
    }

    #[test]
    fn not_clears_tail() {
        let m = Mask::zeros(70);
        let inv = !&m;
        assert_eq!(inv.count(), 70);
        let inv2 = !&inv;
        assert_eq!(inv2.count(), 0);
    }

    #[test]
    fn view_visits_exactly_the_set_rows() {
        let m = Mask::from_indices(200, &[1, 63, 64, 65, 130, 199]);
        let view = m.view();
        assert_eq!(view.len(), 200);
        assert_eq!(view.count(), m.count());
        let mut rows = Vec::new();
        view.for_each_set_word(|wi, word| {
            assert_ne!(word, 0, "zero words must be skipped");
            let mut w = word;
            while w != 0 {
                rows.push(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        });
        assert_eq!(rows, m.to_indices());
    }

    #[test]
    fn view_of_empty_and_full_masks() {
        assert!(Mask::zeros(0).view().is_empty());
        let mut calls = 0;
        Mask::zeros(128).view().for_each_set_word(|_, _| calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(Mask::ones(70).view().count(), 70);
    }
}
