//! Error types for the table substrate.

use std::fmt;

/// Errors raised by table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Referenced a column that does not exist.
    UnknownColumn(String),
    /// A column was added whose length differs from the frame's row count.
    LengthMismatch {
        /// Column that failed to attach.
        column: String,
        /// Length of the offending column.
        expected: usize,
        /// Row count of the frame.
        actual: usize,
    },
    /// Two columns with the same name were inserted.
    DuplicateColumn(String),
    /// Operation applied to a column of an incompatible type.
    TypeMismatch {
        /// Column involved.
        column: String,
        /// What the operation needed.
        expected: &'static str,
        /// What the column actually is.
        actual: &'static str,
    },
    /// Malformed CSV input.
    Csv(String),
    /// An I/O failure while reading or writing CSV.
    Io(String),
    /// A mask whose length does not match the frame it is applied to.
    MaskLength {
        /// Length of the supplied mask.
        mask: usize,
        /// Row count of the frame.
        rows: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TableError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has {expected} rows but the frame has {actual}"
            ),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            TableError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}`: expected a {expected} column, found {actual}"
            ),
            TableError::Csv(msg) => write!(f, "csv parse error: {msg}"),
            TableError::Io(msg) => write!(f, "io error: {msg}"),
            TableError::MaskLength { mask, rows } => {
                write!(f, "mask of length {mask} applied to frame with {rows} rows")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TableError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::UnknownColumn("salary".into());
        assert!(e.to_string().contains("salary"));
        let e = TableError::LengthMismatch {
            column: "x".into(),
            expected: 3,
            actual: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = TableError::TypeMismatch {
            column: "age".into(),
            expected: "numeric",
            actual: "categorical",
        };
        assert!(e.to_string().contains("numeric"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TableError = io.into();
        assert!(matches!(e, TableError::Io(_)));
    }
}
