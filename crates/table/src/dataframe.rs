//! The in-memory columnar frame.

use crate::column::{CatColumn, Column};
use crate::error::{Result, TableError};
use crate::mask::Mask;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::fmt;

/// An immutable-after-build, column-oriented table.
///
/// Built either with [`DataFrame::builder`], from CSV via
/// [`crate::csv::read_csv`], or by filtering an existing frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
    n_rows: usize,
}

impl DataFrame {
    /// Start building a frame.
    pub fn builder() -> DataFrameBuilder {
        DataFrameBuilder { cols: Vec::new() }
    }

    /// An empty frame with zero rows and zero columns.
    pub fn empty() -> DataFrame {
        DataFrame {
            names: Vec::new(),
            columns: Vec::new(),
            by_name: HashMap::new(),
            n_rows: 0,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True if the named column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Fetch a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.by_name
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| TableError::UnknownColumn(name.to_owned()))
    }

    /// Fetch a column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Fetch a categorical column by name; a non-categorical column is a
    /// typed [`TableError::TypeMismatch`] naming the offending column, not
    /// a panic.
    pub fn cat_column(&self, name: &str) -> Result<&CatColumn> {
        let col = self.column(name)?;
        col.as_cat().ok_or_else(|| TableError::TypeMismatch {
            column: name.to_owned(),
            expected: "categorical",
            actual: col.data_type().name(),
        })
    }

    /// Data type of a column.
    pub fn dtype(&self, name: &str) -> Result<DataType> {
        Ok(self.column(name)?.data_type())
    }

    /// Value at `(row, column)`.
    pub fn get(&self, row: usize, name: &str) -> Result<Value> {
        Ok(self.column(name)?.get(row))
    }

    /// New frame containing only the rows selected by `mask`.
    pub fn filter(&self, mask: &Mask) -> Result<DataFrame> {
        if mask.len() != self.n_rows {
            return Err(TableError::MaskLength {
                mask: mask.len(),
                rows: self.n_rows,
            });
        }
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(mask)).collect();
        Ok(DataFrame {
            names: self.names.clone(),
            columns,
            by_name: self.by_name.clone(),
            n_rows: mask.count(),
        })
    }

    /// New frame with only the named columns, in the given order.
    pub fn select<S: AsRef<str>>(&self, names: &[S]) -> Result<DataFrame> {
        let mut b = DataFrame::builder();
        for n in names {
            let n = n.as_ref();
            b = b.column(n, self.column(n)?.clone());
        }
        b.build()
    }

    /// New frame with `column` appended (or replacing an existing column of
    /// the same name).
    pub fn with_column(&self, name: &str, column: Column) -> Result<DataFrame> {
        if column.len() != self.n_rows && self.n_cols() > 0 {
            return Err(TableError::LengthMismatch {
                column: name.to_owned(),
                expected: column.len(),
                actual: self.n_rows,
            });
        }
        let mut out = self.clone();
        if let Some(&i) = out.by_name.get(name) {
            out.columns[i] = column;
        } else {
            out.by_name.insert(name.to_owned(), out.columns.len());
            out.names.push(name.to_owned());
            if out.columns.is_empty() {
                out.n_rows = column.len();
            }
            out.columns.push(column);
        }
        Ok(out)
    }

    /// Mean of a numeric column over `mask`.
    pub fn mean(&self, name: &str, mask: &Mask) -> Result<Option<f64>> {
        let col = self.column(name)?;
        if col.data_type() == DataType::Cat {
            return Err(TableError::TypeMismatch {
                column: name.to_owned(),
                expected: "numeric",
                actual: "categorical",
            });
        }
        Ok(col.mean(mask))
    }

    /// Group rows by the distinct values of a categorical/int/bool column,
    /// restricted to `within`. Returns `(value, mask)` pairs with
    /// deterministic ordering (dictionary order for categorical, ascending
    /// otherwise). Masks are full-length (`n_rows`).
    pub fn group_masks(&self, name: &str, within: &Mask) -> Result<Vec<(Value, Mask)>> {
        let col = self.column(name)?;
        match col {
            Column::Cat(c) => {
                let mut masks: Vec<Mask> = vec![Mask::zeros(self.n_rows); c.cardinality()];
                for i in within.iter_ones() {
                    masks[c.codes()[i] as usize].set(i, true);
                }
                Ok(c.dict()
                    .iter()
                    .zip(masks)
                    .filter(|(_, m)| m.any())
                    .map(|(v, m)| (Value::Str(v.clone()), m))
                    .collect())
            }
            _ => {
                let mut groups: std::collections::BTreeMap<Value, Mask> =
                    std::collections::BTreeMap::new();
                for i in within.iter_ones() {
                    groups
                        .entry(col.get(i))
                        .or_insert_with(|| Mask::zeros(self.n_rows))
                        .set(i, true);
                }
                Ok(groups.into_iter().collect())
            }
        }
    }

    /// Group rows by the joint values of several columns, restricted to
    /// `within`. Returns masks in deterministic (lexicographic value) order.
    pub fn group_masks_multi(&self, names: &[&str], within: &Mask) -> Result<Vec<Mask>> {
        if names.is_empty() {
            return Ok(vec![within.clone()]);
        }
        let cols: Vec<&Column> = names
            .iter()
            .map(|n| self.column(n))
            .collect::<Result<_>>()?;
        let mut groups: std::collections::BTreeMap<Vec<Value>, Mask> =
            std::collections::BTreeMap::new();
        for i in within.iter_ones() {
            let key: Vec<Value> = cols.iter().map(|c| c.get(i)).collect();
            groups
                .entry(key)
                .or_insert_with(|| Mask::zeros(self.n_rows))
                .set(i, true);
        }
        Ok(groups.into_values().collect())
    }

    /// Count of rows where the named column equals `value`, within `mask`.
    pub fn count_eq(&self, name: &str, value: &Value, mask: &Mask) -> Result<usize> {
        let col = self.column(name)?;
        let eq = crate::predicate::Predicate::eq(name, value.clone());
        let m = eq.eval_column(col, self.n_rows);
        Ok(m.intersect_count(mask))
    }

    /// The first `k` rows rendered as an ASCII table (for examples/debugging).
    pub fn head(&self, k: usize) -> String {
        let k = k.min(self.n_rows);
        let mut widths: Vec<usize> = self.names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(k);
        for r in 0..k {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).to_string()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        for (i, n) in self.names.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", n, width = widths[i]));
        }
        out.push('\n');
        for row in cells {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DataFrame[{} rows x {} cols]",
            self.n_rows,
            self.n_cols()
        )
    }
}

/// Builder for [`DataFrame`]; returned by [`DataFrame::builder`].
pub struct DataFrameBuilder {
    cols: Vec<(String, Column)>,
}

impl DataFrameBuilder {
    /// Append a column.
    pub fn column(mut self, name: &str, col: Column) -> Self {
        self.cols.push((name.to_owned(), col));
        self
    }

    /// Append an integer column.
    pub fn int(self, name: &str, values: Vec<i64>) -> Self {
        self.column(name, Column::Int(values))
    }

    /// Append a float column.
    pub fn float(self, name: &str, values: Vec<f64>) -> Self {
        self.column(name, Column::Float(values))
    }

    /// Append a boolean column.
    pub fn bool(self, name: &str, values: Vec<bool>) -> Self {
        self.column(name, Column::Bool(values))
    }

    /// Append a categorical column from string values.
    pub fn cat<S: AsRef<str>>(self, name: &str, values: &[S]) -> Self {
        self.column(name, Column::Cat(CatColumn::from_values(values)))
    }

    /// Finish, validating shape invariants.
    pub fn build(self) -> Result<DataFrame> {
        let n_rows = self.cols.first().map(|(_, c)| c.len()).unwrap_or(0);
        let mut by_name = HashMap::with_capacity(self.cols.len());
        let mut names = Vec::with_capacity(self.cols.len());
        let mut columns = Vec::with_capacity(self.cols.len());
        for (i, (name, col)) in self.cols.into_iter().enumerate() {
            if col.len() != n_rows {
                return Err(TableError::LengthMismatch {
                    column: name,
                    expected: col.len(),
                    actual: n_rows,
                });
            }
            if by_name.insert(name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn(name));
            }
            names.push(name);
            columns.push(col);
        }
        Ok(DataFrame {
            names,
            columns,
            by_name,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::builder()
            .cat("country", &["US", "IN", "US", "DE", "IN"])
            .int("age", vec![25, 31, 40, 29, 22])
            .float("salary", vec![120.0, 30.0, 150.0, 90.0, 25.0])
            .bool("student", vec![false, false, false, true, true])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_shape() {
        let df = sample();
        assert_eq!(df.n_rows(), 5);
        assert_eq!(df.n_cols(), 4);
        assert_eq!(df.names(), &["country", "age", "salary", "student"]);
        assert!(df.has_column("age"));
        assert!(!df.has_column("missing"));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let err = DataFrame::builder()
            .int("a", vec![1, 2])
            .int("b", vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = DataFrame::builder()
            .int("a", vec![1])
            .float("a", vec![2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::DuplicateColumn(_)));
    }

    #[test]
    fn filter_selects_rows() {
        let df = sample();
        let m = Mask::from_indices(5, &[0, 2]);
        let f = df.filter(&m).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.get(0, "country").unwrap(), Value::from("US"));
        assert_eq!(f.get(1, "salary").unwrap(), Value::Float(150.0));
    }

    #[test]
    fn filter_wrong_mask_len() {
        let df = sample();
        assert!(matches!(
            df.filter(&Mask::zeros(3)),
            Err(TableError::MaskLength { .. })
        ));
    }

    #[test]
    fn mean_and_type_enforcement() {
        let df = sample();
        let all = Mask::ones(5);
        assert_eq!(df.mean("salary", &all).unwrap(), Some(83.0));
        assert!(df.mean("country", &all).is_err());
    }

    #[test]
    fn group_masks_categorical() {
        let df = sample();
        let groups = df.group_masks("country", &Mask::ones(5)).unwrap();
        assert_eq!(groups.len(), 3);
        let (v, m) = &groups[0];
        assert_eq!(v, &Value::from("US"));
        assert_eq!(m.to_indices(), vec![0, 2]);
    }

    #[test]
    fn group_masks_respects_within() {
        let df = sample();
        let within = Mask::from_indices(5, &[1, 4]);
        let groups = df.group_masks("country", &within).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, Value::from("IN"));
        assert_eq!(groups[0].1.to_indices(), vec![1, 4]);
    }

    #[test]
    fn group_masks_multi_partitions() {
        let df = sample();
        let groups = df
            .group_masks_multi(&["country", "student"], &Mask::ones(5))
            .unwrap();
        let total: usize = groups.iter().map(|m| m.count()).sum();
        assert_eq!(total, 5);
        // partition: pairwise disjoint
        for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                assert_eq!(groups[i].intersect_count(&groups[j]), 0);
            }
        }
    }

    #[test]
    fn group_masks_multi_empty_names_is_single_group() {
        let df = sample();
        let within = Mask::from_indices(5, &[0, 1]);
        let g = df.group_masks_multi(&[], &within).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], within);
    }

    #[test]
    fn select_and_with_column() {
        let df = sample();
        let s = df.select(&["salary", "age"]).unwrap();
        assert_eq!(s.names(), &["salary", "age"]);
        let w = df
            .with_column("bonus", Column::Float(vec![1.0; 5]))
            .unwrap();
        assert_eq!(w.n_cols(), 5);
        // replacement keeps position
        let r = w.with_column("age", Column::Int(vec![0; 5])).unwrap();
        assert_eq!(r.get(0, "age").unwrap(), Value::Int(0));
        assert_eq!(r.names()[1], "age");
    }

    #[test]
    fn head_renders() {
        let df = sample();
        let s = df.head(2);
        assert!(s.contains("country") && s.contains("US"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn count_eq_counts() {
        let df = sample();
        let n = df
            .count_eq("country", &Value::from("IN"), &Mask::ones(5))
            .unwrap();
        assert_eq!(n, 2);
        let n = df
            .count_eq(
                "country",
                &Value::from("IN"),
                &Mask::from_indices(5, &[0, 1]),
            )
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn cat_column_type_errors_name_the_column() {
        let df = sample();
        assert!(df.cat_column("country").is_ok());
        let err = df.cat_column("age").unwrap_err();
        assert!(matches!(
            err,
            TableError::TypeMismatch { ref column, expected: "categorical", .. } if column == "age"
        ));
        assert!(err.to_string().contains("age"));
        assert!(matches!(
            df.cat_column("ghost").unwrap_err(),
            TableError::UnknownColumn(_)
        ));
    }
}
