//! # faircap-serve
//!
//! A concurrent prescription-serving front end over
//! [`PrescriptionSession`]s: the ROADMAP's "serving v2" item, built
//! dependency-free on `std::net` plus raw readiness syscalls (the
//! environment is offline — no tokio/hyper/mio).
//!
//! ## Architecture
//!
//! ```text
//!                 ┌──────────────────────────────────────────────┐
//!  TCP listener → │ reactor thread (epoll / poll(2)):            │
//!                 │ accept, read, parse HTTP/1.1 keep-alive +    │
//!                 │ pipelining, write; per-conn response slots   │
//!                 └───────┬──────────────────────────▲───────────┘
//!     POST /v1/solve      │ admission + coalescing   │ completions
//!                 ┌───────▼──────────────────────────┴───────────┐
//!                 │ solve pool (max_concurrent_solves workers,   │
//!                 │ solve_queue_depth bounded queue)             │
//!                 └───────┬──────────────────────────────────────┘
//!                         │ RegisteredSession::solve
//!                 ┌───────▼─────────────────────────┐
//!                 │ SessionRegistry (one warm       │
//!                 │ PrescriptionSession per dataset)│
//!                 └─────────────────────────────────┘
//! ```
//!
//! One [`reactor`] thread multiplexes every connection, so a connection
//! costs a map entry — not a thread — and keep-alive clients pay the TCP
//! handshake once. Quick endpoints are answered inline on the reactor;
//! solves are admitted to the bounded [`pool::WorkerPool`] and their
//! responses flow back through the reactor's completion queue:
//!
//! * identical in-flight solve requests **coalesce** ([`coalesce`]): one
//!   underlying solve, its report fanned out to every waiter;
//! * a full solve queue sheds load with **429** (+`Retry-After`);
//! * a draining server answers **503** to new solves;
//! * a solve exceeding the per-request timeout answers **504** (the solve
//!   finishes on its worker and still warms the shared caches);
//! * [`Server::shutdown`] stops accepting, finishes every admitted
//!   request — pipelined and pending ones included — then returns.
//!
//! ## Endpoints
//!
//! | Method | Path           | Purpose                                      |
//! |--------|----------------|----------------------------------------------|
//! | POST   | `/v1/solve`    | JSON [`SolveRequest`] → JSON solution report |
//! | GET    | `/v1/sessions` | Registered sessions and their counters       |
//! | GET    | `/v1/metrics`  | Admission gauges, latencies, cache stats     |
//! | GET    | `/v1/trace`    | Recent/slowest solve traces (`?session=`, `?min_ms=`) |
//! | GET    | `/metrics`     | Prometheus text-format exposition            |
//! | POST   | `/v1/snapshot` | Persist warm caches to the snapshot dir      |
//! | POST   | `/v1/shutdown` | Request a graceful drain                     |
//! | GET    | `/healthz`     | Liveness probe                               |
//!
//! ## Observability
//!
//! Every solve can be traced end to end (`docs/observability.md`): send
//! `"trace": true` in the solve body (or an `X-Faircap-Trace-Id` header,
//! or set `FAIRCAP_TRACE=1` server-wide) and the solve runs with a span
//! tree — queue wait, Step 1/2/3, per-group and per-estimate spans — that
//! is echoed in the response (`trace` field + `X-Faircap-Trace-Id`
//! header) and retained in a bounded ring served from `GET /v1/trace`
//! (the slowest traces are sticky). Traced requests bypass coalescing so
//! the spans describe a real underlying solve. Latency accounting uses
//! log-bucketed histograms ([`metrics::LatencyRecorder`]) exposed both as
//! JSON summaries on `/v1/metrics` and as Prometheus `_bucket` series on
//! `GET /metrics`.
//!
//! JSON schemas are documented in `docs/serving.md`; the request/report
//! wire format lives in `faircap_core::wire` so rulesets served over HTTP
//! are bit-identical to direct [`PrescriptionSession::solve`] calls.
//!
//! [`PrescriptionSession`]: faircap_core::PrescriptionSession
//! [`PrescriptionSession::solve`]: faircap_core::PrescriptionSession::solve
//! [`SolveRequest`]: faircap_core::SolveRequest

#![warn(missing_docs)]

pub mod client;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod reactor;

pub use client::{ClientConnection, ClientResponse, ServeClient};
pub use reactor::PollerKind;

use coalesce::{Attach, Coalescer};
use faircap_core::wire::{solution_report_to_json, solve_request_from_json};
use faircap_core::{Error, Json, RegisteredSession, SessionRegistry};
use faircap_obs::{FinishedTrace, HistogramSnapshot, PromText, Trace, TraceRing};
use http::{ParseError, Request, Response};
use metrics::{ConnGauges, LatencyRecorder, ServerMetrics};
use pool::{SubmitError, WorkerPool};
use reactor::{
    App, Completion, Completions, Dispatch, ReactorHandle, ReactorOptions, ReactorPhase,
};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Recent finished traces retained for `GET /v1/trace`.
const TRACE_RING_RECENT: usize = 64;
/// Slowest finished traces retained beyond the recent ring.
const TRACE_RING_SLOW: usize = 8;

/// Server configuration: bind address, solve-pool sizes, connection
/// limits, and the snapshot directory for warm boots.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Solve worker threads — the max-concurrent-solves budget.
    pub max_concurrent_solves: usize,
    /// Bound on admitted-but-not-started solves (overflow answers 429).
    pub solve_queue_depth: usize,
    /// Per-request solve timeout (exceeding answers 504).
    pub solve_timeout: Duration,
    /// Where `POST /v1/snapshot` persists warm caches (`<dir>/<name>.fc`).
    pub snapshot_dir: Option<PathBuf>,
    /// Open-connection cap; excess connections get an immediate 503.
    pub max_connections: usize,
    /// Keep-alive connections with no outstanding requests are closed
    /// after this long.
    pub idle_timeout: Duration,
    /// Readiness backend. [`PollerKind::Auto`] honors the `FAIRCAP_POLLER`
    /// environment variable, then picks the platform default.
    pub poller: PollerKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_concurrent_solves: 2,
            solve_queue_depth: 16,
            solve_timeout: Duration::from_secs(120),
            snapshot_dir: None,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(30),
            poller: PollerKind::Auto,
        }
    }
}

struct Inner {
    registry: Arc<SessionRegistry>,
    config: ServeConfig,
    metrics: ServerMetrics,
    gauges: Arc<ConnGauges>,
    solve_pool: WorkerPool,
    coalescer: Coalescer,
    completions: Arc<Completions>,
    started: Instant,
    poller_name: &'static str,
    traces: TraceRing,
    /// `FAIRCAP_TRACE` was set at boot: trace every solve server-wide
    /// (bypassing coalescing), so slow solves always land in the ring.
    trace_all: bool,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running server. Dropping it performs a graceful [`shutdown`].
///
/// [`shutdown`]: Server::shutdown
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    reactor: ReactorHandle,
}

impl Server {
    /// Bind and start serving `registry` under `config`. Returns once the
    /// listener is accepting; everything else happens on the reactor
    /// thread and the solve pool.
    pub fn start(config: ServeConfig, registry: Arc<SessionRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let kind = match config.poller {
            PollerKind::Auto => PollerKind::from_env(),
            explicit => explicit,
        };
        let poller_name = match kind {
            PollerKind::Poll => "poll",
            PollerKind::Epoll => "epoll",
            PollerKind::Auto => {
                if cfg!(target_os = "linux") {
                    "epoll"
                } else {
                    "poll"
                }
            }
        };
        let completions = Completions::new()?;
        let gauges = Arc::new(ConnGauges::default());
        let options = ReactorOptions {
            poller: kind,
            max_connections: config.max_connections,
            idle_timeout: config.idle_timeout,
            pending_timeout: config.solve_timeout,
        };
        let inner = Arc::new(Inner {
            solve_pool: WorkerPool::new(
                "faircap-solve",
                config.max_concurrent_solves,
                config.solve_queue_depth,
            ),
            metrics: ServerMetrics::default(),
            gauges: Arc::clone(&gauges),
            coalescer: Coalescer::new(),
            completions: Arc::clone(&completions),
            started: Instant::now(),
            poller_name,
            traces: TraceRing::new(TRACE_RING_RECENT, TRACE_RING_SLOW),
            trace_all: std::env::var("FAIRCAP_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            registry,
            config,
        });
        let reactor = reactor::spawn(listener, Arc::clone(&inner), completions, options, gauges)?;
        Ok(Server {
            inner,
            addr,
            reactor,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server fronts.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.inner.registry
    }

    /// A [`ServeClient`] bound to this server.
    pub fn client(&self) -> ServeClient {
        ServeClient::new(self.addr)
    }

    /// Whether a graceful shutdown has been requested (via
    /// [`request_shutdown`](Self::request_shutdown) or `POST /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_flag.lock().expect("shutdown flag lock")
    }

    /// Ask the server to shut down; unblocks
    /// [`wait_for_shutdown_request`](Self::wait_for_shutdown_request).
    /// New solve requests are refused with 503 from this point on; quick
    /// endpoints keep answering until [`shutdown`](Self::shutdown).
    pub fn request_shutdown(&self) {
        request_shutdown(&self.inner);
    }

    /// Block until someone requests a shutdown, then return (the caller —
    /// typically the CLI — performs the actual [`shutdown`](Self::shutdown)).
    pub fn wait_for_shutdown_request(&self) {
        let mut flag = self.inner.shutdown_flag.lock().expect("shutdown flag lock");
        while !*flag {
            flag = self.inner.shutdown_cv.wait(flag).expect("shutdown cv wait");
        }
    }

    /// Graceful shutdown: close the listener, finish every admitted
    /// request (pipelined and in-solve ones included), flush, then join
    /// the reactor and the solve pool. Idempotent.
    pub fn shutdown(&self) {
        // The reactor drains first — its pending slots need live solve
        // workers to complete — then the pool.
        self.reactor.shutdown();
        self.inner.solve_pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn request_shutdown(inner: &Inner) {
    let mut flag = inner.shutdown_flag.lock().expect("shutdown flag lock");
    *flag = true;
    inner.shutdown_cv.notify_all();
}

impl Inner {
    fn draining(&self) -> bool {
        *self.shutdown_flag.lock().expect("shutdown flag lock")
    }

    /// Admission for `POST /v1/solve`: validate, coalesce, submit.
    fn dispatch_solve(self: &Arc<Self>, request: &Request, waiter: u64) -> Dispatch {
        let body_text = match request.body_utf8() {
            Ok(text) if !text.trim().is_empty() => text,
            Ok(_) => "{}",
            Err(e) => return Dispatch::Immediate(Response::error(400, e.to_string())),
        };
        let body = match Json::parse(body_text) {
            Ok(body) => body,
            Err(e) => {
                return Dispatch::Immediate(Response::error(400, format!("invalid JSON body: {e}")))
            }
        };
        let entry = match resolve_session(self, &body) {
            Ok(entry) => entry,
            Err(response) => return Dispatch::Immediate(response),
        };
        let solve_request = match solve_request_from_json(&body) {
            Ok(r) => r,
            Err(e) => return Dispatch::Immediate(Response::error(400, e.to_string())),
        };
        if self.draining() {
            ServerMetrics::bump(&self.metrics.rejected_shutdown);
            return Dispatch::Immediate(Response::error(503, "server is draining for shutdown"));
        }

        // Tracing: opt in per request (`"trace": true` in the body or an
        // `X-Faircap-Trace-Id` header) or server-wide (`FAIRCAP_TRACE`).
        let header_id = request
            .header("x-faircap-trace-id")
            .and_then(Trace::parse_id);
        let traced = solve_request.trace || header_id.is_some() || self.trace_all;
        let trace = traced.then(|| match header_id {
            Some(id) => Trace::with_id(id),
            None => Trace::new(entry.name()),
        });

        // Coalesce: identical in-flight (session, request) pairs share one
        // underlying solve. `attach`/`abort` both run here on the reactor
        // thread, so a leader's failed submission can never strand a
        // follower. Traced solves never coalesce: their spans must
        // describe a real underlying solve, not an attach to someone
        // else's.
        let key = if traced {
            None
        } else {
            coalesce::fingerprint(entry.name(), &solve_request)
        };
        if let Some(key) = &key {
            match self.coalescer.attach(key.clone(), waiter) {
                Attach::Attached => {
                    ServerMetrics::bump(&self.metrics.coalesce_hits);
                    entry.record_coalesced();
                    return Dispatch::Pending;
                }
                Attach::Leader => {}
            }
        }

        // The root and queue-wait spans open here on the reactor thread,
        // so the queue-wait span measures exactly the time between
        // admission and a pool worker picking the job up.
        let root = trace.as_ref().map(|t| t.root("request"));
        let queue_span = root.as_ref().map(|r| r.child("queue_wait"));
        let queued_at = Instant::now();
        let embed = solve_request.trace;
        let job_inner = Arc::clone(self);
        let job_key = key.clone();
        let job_entry = Arc::clone(&entry);
        let job_trace = trace.clone();
        let submitted = self.solve_pool.try_submit(move || {
            job_inner.metrics.queue_wait.record(queued_at.elapsed());
            drop(queue_span);
            let solve_span = root.as_ref().map(|r| r.child("solve"));
            let solve_request = match &solve_span {
                Some(s) => solve_request.span(s.handle()),
                None => solve_request,
            };
            let result = job_entry.solve(&solve_request);
            drop(solve_span);
            let response = match result {
                Ok(report) => {
                    let respond_span = root.as_ref().map(|r| r.child("respond"));
                    let mut doc =
                        vec![("session".to_owned(), Json::Str(job_entry.name().to_owned()))];
                    match solution_report_to_json(&report) {
                        Json::Obj(fields) => doc.extend(fields),
                        other => doc.push(("report".to_owned(), other)),
                    }
                    drop(respond_span);
                    drop(root);
                    if let Some(trace) = &job_trace {
                        let finished = trace.finish(job_entry.name());
                        if embed {
                            doc.push(("trace".to_owned(), finished_trace_json(&finished)));
                        }
                        job_inner.traces.push(finished);
                    }
                    Response::json(200, &Json::Obj(doc))
                }
                Err(e) => {
                    drop(root);
                    if let Some(trace) = &job_trace {
                        job_inner.traces.push(trace.finish(job_entry.name()));
                    }
                    let status = match e {
                        Error::InvalidRequest(_) => 422,
                        _ => 500,
                    };
                    Response::error(status, e.to_string())
                }
            };
            let response = match &job_trace {
                Some(trace) => response.with_header("x-faircap-trace-id", trace.id_hex()),
                None => response,
            };
            let waiters = match &job_key {
                Some(k) => job_inner.coalescer.take(k),
                None => vec![waiter],
            };
            job_inner
                .completions
                .complete(Completion { waiters, response });
        });
        match submitted {
            Ok(()) => Dispatch::Pending,
            Err(SubmitError::QueueFull) => {
                if let Some(key) = &key {
                    self.coalescer.abort(key);
                }
                ServerMetrics::bump(&self.metrics.rejected_queue_full);
                Dispatch::Immediate(
                    Response::error(
                        429,
                        format!(
                            "solve queue is full ({} queued, {} in flight); retry shortly",
                            self.solve_pool.queue_depth(),
                            self.solve_pool.in_flight()
                        ),
                    )
                    .with_header("retry-after", "1"),
                )
            }
            Err(SubmitError::ShuttingDown) => {
                if let Some(key) = &key {
                    self.coalescer.abort(key);
                }
                ServerMetrics::bump(&self.metrics.rejected_shutdown);
                Dispatch::Immediate(Response::error(503, "server is draining for shutdown"))
            }
        }
    }
}

impl App for Inner {
    fn handle(self: &Arc<Self>, request: &Request, waiter: u64) -> Dispatch {
        ServerMetrics::bump(&self.metrics.http_requests);
        // Routes are the path with any query string stripped; only
        // `/v1/trace` currently reads the query.
        let (route, query) = match request.path.split_once('?') {
            Some((route, query)) => (route, Some(query)),
            None => (request.path.as_str(), None),
        };
        match (request.method.as_str(), route) {
            ("POST", "/v1/solve") => self.dispatch_solve(request, waiter),
            ("GET", "/healthz") => Dispatch::Immediate(Response::json(
                200,
                &Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    (
                        "uptime_ms".into(),
                        Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
                    ),
                ]),
            )),
            ("GET", "/v1/sessions") => Dispatch::Immediate(sessions_response(self)),
            ("GET", "/v1/metrics") => Dispatch::Immediate(metrics_response(self)),
            ("GET", "/v1/trace") => Dispatch::Immediate(trace_response(self, query)),
            ("GET", "/metrics") => Dispatch::Immediate(prometheus_response(self)),
            ("POST", "/v1/snapshot") => Dispatch::Immediate(snapshot_response(self, request)),
            ("POST", "/v1/shutdown") => {
                request_shutdown(self);
                Dispatch::Immediate(Response::json(
                    200,
                    &Json::Obj(vec![("draining".into(), Json::Bool(true))]),
                ))
            }
            (
                _,
                "/v1/solve" | "/v1/snapshot" | "/v1/shutdown" | "/v1/sessions" | "/v1/metrics"
                | "/v1/trace" | "/metrics",
            ) => Dispatch::Immediate(Response::error(
                405,
                format!("method {} not allowed here", request.method),
            )),
            (_, path) => {
                Dispatch::Immediate(Response::error(404, format!("no such endpoint `{path}`")))
            }
        }
    }

    fn on_phase(&self, phase: ReactorPhase, took: Duration) {
        let recorder = match phase {
            ReactorPhase::Read => &self.metrics.reactor_read,
            ReactorPhase::Dispatch => &self.metrics.request_latency,
            ReactorPhase::Write => &self.metrics.reactor_write,
        };
        recorder.record(took);
    }

    fn on_timeout(&self, _waiter: u64) -> Response {
        ServerMetrics::bump(&self.metrics.timeouts);
        Response::error(
            504,
            format!(
                "solve exceeded the {:?} request timeout; it keeps running and will warm the caches",
                self.config.solve_timeout
            ),
        )
    }

    fn on_parse_error(&self, error: &ParseError) -> Response {
        ServerMetrics::bump(&self.metrics.http_errors);
        match error {
            ParseError::BodyTooLarge(_) => Response::error(413, error.to_string()),
            ParseError::Malformed(_) => Response::error(400, error.to_string()),
        }
    }

    fn on_delivered(&self, status: u16, waited: Duration) {
        // Delivered-response accounting: a coalesced fan-out of one
        // underlying solve counts once per served request (per-session
        // counters track underlying solves).
        if status == 200 {
            ServerMetrics::bump(&self.metrics.solves_ok);
            self.metrics.solve_latency.record(waited);
        } else {
            ServerMetrics::bump(&self.metrics.solves_err);
        }
    }
}

/// Resolve the target session: the body's `session` field, or the sole
/// registered session when the field is absent.
fn resolve_session(inner: &Inner, body: &Json) -> Result<Arc<RegisteredSession>, Response> {
    match body.get("session") {
        Some(Json::Str(name)) => inner.registry.get(name).ok_or_else(|| {
            Response::error(
                404,
                format!(
                    "no session `{name}` (registered: {})",
                    inner.registry.names().join(", ")
                ),
            )
        }),
        Some(_) => Err(Response::error(400, "`session` must be a string")),
        None => inner.registry.single().ok_or_else(|| {
            Response::error(
                400,
                format!(
                    "{} sessions registered; specify `session` (one of: {})",
                    inner.registry.len(),
                    inner.registry.names().join(", ")
                ),
            )
        }),
    }
}

fn snapshot_response(inner: &Inner, request: &Request) -> Response {
    let Some(dir) = &inner.config.snapshot_dir else {
        return Response::error(
            400,
            "no snapshot directory configured (start the server with --snapshot-dir)",
        );
    };
    let body_text = match request.body_utf8() {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => "{}",
        Err(e) => return Response::error(400, e.to_string()),
    };
    let body = match Json::parse(body_text) {
        Ok(body) => body,
        Err(e) => return Response::error(400, format!("invalid JSON body: {e}")),
    };
    let entries = match body.get("session") {
        Some(Json::Str(name)) => match inner.registry.get(name) {
            Some(entry) => vec![entry],
            None => return Response::error(404, format!("no session `{name}`")),
        },
        Some(_) => return Response::error(400, "`session` must be a string"),
        None => inner.registry.entries(),
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Response::error(500, format!("creating {}: {e}", dir.display()));
    }
    let mut written = Vec::new();
    for entry in entries {
        let path = dir.join(format!("{}.fc", entry.name()));
        let encoded = entry.session().snapshot().encode();
        if let Err(e) = std::fs::write(&path, &encoded) {
            return Response::error(500, format!("writing {}: {e}", path.display()));
        }
        written.push(Json::Obj(vec![
            ("session".into(), Json::Str(entry.name().to_owned())),
            ("path".into(), Json::Str(path.display().to_string())),
            ("bytes".into(), Json::Num(encoded.len() as f64)),
        ]));
    }
    Response::json(
        200,
        &Json::Obj(vec![("snapshots".into(), Json::Arr(written))]),
    )
}

fn cache_stats_json(hits: u64, misses: u64, entries: usize, evictions: u64) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Num(hits as f64)),
        ("misses".into(), Json::Num(misses as f64)),
        ("entries".into(), Json::Num(entries as f64)),
        ("evictions".into(), Json::Num(evictions as f64)),
    ])
}

fn session_json(entry: &RegisteredSession) -> Json {
    let session = entry.session();
    let stats = session.cache_stats();
    let grouping = session.grouping_cache_stats();
    let interventions = session.intervention_cache_stats();
    let solve_hot = session.solve_hot_stats();
    let hot = session.engine().hot_stats();
    let match_index = session.engine().match_index_cache_stats();
    let by_estimator: Vec<(String, Json)> = session
        .cache_stats_by_estimator()
        .into_iter()
        .map(|(name, s)| {
            (
                name,
                cache_stats_json(s.hits, s.misses, s.entries, s.evictions),
            )
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(entry.name().to_owned())),
        ("rows".into(), Json::Num(session.df().n_rows() as f64)),
        ("outcome".into(), Json::Str(session.outcome().to_owned())),
        ("solves_ok".into(), Json::Num(entry.solves_ok() as f64)),
        ("solves_err".into(), Json::Num(entry.solves_err() as f64)),
        (
            "solves_coalesced".into(),
            Json::Num(entry.solves_coalesced() as f64),
        ),
        // Warm-boot provenance: which snapshot the session restored from
        // and how long the restore took; `null` for a cold boot.
        (
            "warm_boot".into(),
            entry
                .warm_boot()
                .map(|w| {
                    Json::Obj(vec![
                        ("snapshot_path".into(), Json::Str(w.snapshot_path)),
                        ("restore_ms".into(), Json::Num(w.restore_ms)),
                    ])
                })
                .unwrap_or(Json::Null),
        ),
        (
            "estimate_cache".into(),
            cache_stats_json(stats.hits, stats.misses, stats.entries, stats.evictions),
        ),
        (
            "estimate_cache_by_estimator".into(),
            Json::Obj(by_estimator),
        ),
        (
            "grouping_cache".into(),
            cache_stats_json(
                grouping.hits,
                grouping.misses,
                grouping.entries,
                grouping.evictions,
            ),
        ),
        (
            "intervention_cache".into(),
            cache_stats_json(
                interventions.hits,
                interventions.misses,
                interventions.entries,
                interventions.evictions,
            ),
        ),
        (
            "match_index_cache".into(),
            cache_stats_json(
                match_index.hits,
                match_index.misses,
                match_index.entries,
                match_index.evictions,
            ),
        ),
        // Solve-path cost accounting aggregated over every solve on the
        // session: per-step milliseconds, mining candidate pipeline, and
        // greedy heap activity.
        (
            "solve_stats".into(),
            Json::Obj(vec![
                ("solves".into(), Json::Num(solve_hot.solves as f64)),
                ("mine_ms".into(), Json::Num(solve_hot.mine_ns as f64 / 1e6)),
                (
                    "intervene_ms".into(),
                    Json::Num(solve_hot.intervene_ns as f64 / 1e6),
                ),
                (
                    "select_ms".into(),
                    Json::Num(solve_hot.select_ns as f64 / 1e6),
                ),
                ("candidates".into(), Json::Num(solve_hot.candidates as f64)),
                ("pruned".into(), Json::Num(solve_hot.pruned as f64)),
                ("evaluated".into(), Json::Num(solve_hot.evaluated as f64)),
                (
                    "greedy_evaluations".into(),
                    Json::Num(solve_hot.greedy_evaluations as f64),
                ),
                (
                    "greedy_reevaluations".into(),
                    Json::Num(solve_hot.greedy_reevaluations as f64),
                ),
            ]),
        ),
        // Hot-path cost accounting aggregated over every estimation run:
        // per-stage milliseconds (design build / index construction /
        // solve), executor task units, and KD-tree node visits.
        (
            "estimate_timing".into(),
            Json::Obj(vec![
                ("estimates".into(), Json::Num(hot.estimates as f64)),
                (
                    "build_ms".into(),
                    Json::Num(hot.stats.build_ns as f64 / 1e6),
                ),
                (
                    "index_ms".into(),
                    Json::Num(hot.stats.index_ns as f64 / 1e6),
                ),
                (
                    "solve_ms".into(),
                    Json::Num(hot.stats.solve_ns as f64 / 1e6),
                ),
                ("tasks".into(), Json::Num(hot.stats.tasks as f64)),
                (
                    "tree_visits".into(),
                    Json::Num(hot.stats.tree_visits as f64),
                ),
            ]),
        ),
        (
            "exec".into(),
            entry
                .last_exec()
                .map(|e| faircap_core::wire::exec_stats_to_json(&e))
                .unwrap_or(Json::Null),
        ),
    ])
}

fn sessions_response(inner: &Inner) -> Response {
    let sessions: Vec<Json> = inner
        .registry
        .entries()
        .iter()
        .map(|e| session_json(e))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![("sessions".into(), Json::Arr(sessions))]),
    )
}

fn latency_summary_json(recorder: &LatencyRecorder) -> Json {
    match recorder.summary_ms() {
        Some((p50, p90, p99, max)) => Json::Obj(vec![
            ("count".into(), Json::Num(recorder.count() as f64)),
            ("p50_ms".into(), Json::Num(p50)),
            ("p90_ms".into(), Json::Num(p90)),
            ("p99_ms".into(), Json::Num(p99)),
            ("max_ms".into(), Json::Num(max)),
        ]),
        None => Json::Null,
    }
}

fn metrics_response(inner: &Inner) -> Response {
    let m = &inner.metrics;
    let latency = latency_summary_json(&m.solve_latency);
    let queue_wait = latency_summary_json(&m.queue_wait);
    let request_latency = latency_summary_json(&m.request_latency);
    let admission = Json::Obj(vec![
        (
            "max_concurrent_solves".into(),
            Json::Num(inner.solve_pool.workers() as f64),
        ),
        (
            "solve_queue_limit".into(),
            Json::Num(inner.solve_pool.queue_cap() as f64),
        ),
        (
            "queue_depth".into(),
            Json::Num(inner.solve_pool.queue_depth() as f64),
        ),
        (
            "max_queue_depth".into(),
            Json::Num(inner.solve_pool.max_queue_depth() as f64),
        ),
        (
            "in_flight".into(),
            Json::Num(inner.solve_pool.in_flight() as f64),
        ),
        (
            "solve_timeout_ms".into(),
            Json::Num(inner.config.solve_timeout.as_secs_f64() * 1e3),
        ),
        (
            "coalesce_in_flight".into(),
            Json::Num(inner.coalescer.in_flight() as f64),
        ),
    ]);
    let requests = Json::Obj(vec![
        (
            "http_requests".into(),
            Json::Num(ServerMetrics::read(&m.http_requests) as f64),
        ),
        (
            "http_errors".into(),
            Json::Num(ServerMetrics::read(&m.http_errors) as f64),
        ),
        (
            "solves_ok".into(),
            Json::Num(ServerMetrics::read(&m.solves_ok) as f64),
        ),
        (
            "solves_err".into(),
            Json::Num(ServerMetrics::read(&m.solves_err) as f64),
        ),
        (
            "coalesce_hits".into(),
            Json::Num(ServerMetrics::read(&m.coalesce_hits) as f64),
        ),
        (
            "rejected_429".into(),
            Json::Num(ServerMetrics::read(&m.rejected_queue_full) as f64),
        ),
        (
            "rejected_503".into(),
            Json::Num(ServerMetrics::read(&m.rejected_shutdown) as f64),
        ),
        (
            "timeouts_504".into(),
            Json::Num(ServerMetrics::read(&m.timeouts) as f64),
        ),
    ]);
    let connections = Json::Obj(vec![
        ("open".into(), Json::Num(inner.gauges.open() as f64)),
        (
            "accepted".into(),
            Json::Num(ServerMetrics::read(&inner.gauges.accepted) as f64),
        ),
        (
            "closed".into(),
            Json::Num(ServerMetrics::read(&inner.gauges.closed) as f64),
        ),
        (
            "rejected_over_capacity".into(),
            Json::Num(ServerMetrics::read(&inner.gauges.rejected_over_capacity) as f64),
        ),
        ("poller".into(), Json::Str(inner.poller_name.into())),
        (
            "max_connections".into(),
            Json::Num(inner.config.max_connections as f64),
        ),
        (
            "idle_timeout_ms".into(),
            Json::Num(inner.config.idle_timeout.as_secs_f64() * 1e3),
        ),
    ]);
    let sessions: Vec<(String, Json)> = inner
        .registry
        .entries()
        .iter()
        .map(|e| (e.name().to_owned(), session_json(e)))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![
            (
                "uptime_ms".into(),
                Json::Num(inner.started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "uptime_seconds".into(),
                Json::Num(inner.started.elapsed().as_secs_f64()),
            ),
            (
                "version".into(),
                Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
            ),
            ("requests".into(), requests),
            ("admission".into(), admission),
            ("connections".into(), connections),
            ("solve_latency".into(), latency),
            ("queue_wait".into(), queue_wait),
            ("request_latency".into(), request_latency),
            ("sessions".into(), Json::Obj(sessions)),
        ]),
    )
}

/// Render one finished trace as the wire JSON shared by the embedded
/// solve-response `trace` field and `GET /v1/trace`.
fn finished_trace_json(t: &FinishedTrace) -> Json {
    let spans: Vec<Json> = t
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("id".into(), Json::Num(s.id as f64)),
                (
                    "parent".into(),
                    s.parent.map(|p| Json::Num(p as f64)).unwrap_or(Json::Null),
                ),
                ("name".into(), Json::Str(s.name.clone())),
                ("start_ns".into(), Json::Num(s.start_ns as f64)),
                ("end_ns".into(), Json::Num(s.end_ns as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(format!("{:016x}", t.id))),
        ("session".into(), Json::Str(t.session.clone())),
        ("duration_ms".into(), Json::Num(t.duration_ns as f64 / 1e6)),
        ("dropped_spans".into(), Json::Num(t.dropped as f64)),
        ("spans".into(), Json::Arr(spans)),
    ])
}

/// `GET /v1/trace`: recent and slowest traces, filterable with
/// `?session=<name>` and `?min_ms=<float>`.
fn trace_response(inner: &Inner, query: Option<&str>) -> Response {
    let mut session: Option<String> = None;
    let mut min_ms = 0.0f64;
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "session" => session = Some(v.to_owned()),
            "min_ms" => match v.parse::<f64>() {
                Ok(ms) if ms >= 0.0 && ms.is_finite() => min_ms = ms,
                _ => {
                    return Response::error(
                        400,
                        format!("`min_ms` must be a non-negative number, got `{v}`"),
                    )
                }
            },
            other => {
                return Response::error(400, format!("unknown query parameter `{other}`"));
            }
        }
    }
    let traces: Vec<Json> = inner
        .traces
        .snapshot(session.as_deref(), (min_ms * 1e6) as u64)
        .iter()
        .map(finished_trace_json)
        .collect();
    Response::json(200, &Json::Obj(vec![("traces".into(), Json::Arr(traces))]))
}

/// `GET /metrics`: the full server state in Prometheus text format
/// (version 0.0.4). Every family follows the
/// `faircap_<subsystem>_<name>_<unit>` scheme checked by
/// [`faircap_obs::validate_naming`]; the histograms here are the same
/// [`LatencyRecorder`]s summarized on `/v1/metrics`, so percentiles
/// derived from the `_bucket` series agree with the JSON summaries.
fn prometheus_response(inner: &Inner) -> Response {
    let m = &inner.metrics;
    let mut pt = PromText::new();

    // Process identity and uptime.
    pt.family(
        "faircap_build_info",
        "gauge",
        "Build metadata carried in labels; the value is always 1",
    );
    pt.sample(
        "faircap_build_info",
        &[("version", env!("CARGO_PKG_VERSION"))],
        1.0,
    );
    pt.family(
        "faircap_serve_uptime_seconds",
        "gauge",
        "Seconds since the server started",
    );
    pt.sample(
        "faircap_serve_uptime_seconds",
        &[],
        inner.started.elapsed().as_secs_f64(),
    );

    // Server-wide request and connection counters.
    for (name, value, help) in [
        (
            "faircap_serve_http_requests_total",
            ServerMetrics::read(&m.http_requests),
            "HTTP requests accepted and parsed (any endpoint)",
        ),
        (
            "faircap_serve_http_errors_total",
            ServerMetrics::read(&m.http_errors),
            "Requests that failed to parse as HTTP",
        ),
        (
            "faircap_serve_solves_ok_total",
            ServerMetrics::read(&m.solves_ok),
            "Solve responses delivered with status 200",
        ),
        (
            "faircap_serve_solves_err_total",
            ServerMetrics::read(&m.solves_err),
            "Solve responses delivered with an error status",
        ),
        (
            "faircap_serve_coalesce_hits_total",
            ServerMetrics::read(&m.coalesce_hits),
            "Requests attached to an identical in-flight solve",
        ),
        (
            "faircap_serve_rejected_queue_full_total",
            ServerMetrics::read(&m.rejected_queue_full),
            "Solves shed with 429 because the bounded queue was full",
        ),
        (
            "faircap_serve_rejected_shutdown_total",
            ServerMetrics::read(&m.rejected_shutdown),
            "Solves refused with 503 while draining",
        ),
        (
            "faircap_serve_timeouts_total",
            ServerMetrics::read(&m.timeouts),
            "Solves that exceeded the per-request timeout (504)",
        ),
        (
            "faircap_serve_connections_accepted_total",
            ServerMetrics::read(&inner.gauges.accepted),
            "Connections accepted from the listener",
        ),
        (
            "faircap_serve_connections_closed_total",
            ServerMetrics::read(&inner.gauges.closed),
            "Connections fully closed by the reactor",
        ),
        (
            "faircap_serve_connections_rejected_over_capacity_total",
            ServerMetrics::read(&inner.gauges.rejected_over_capacity),
            "Connections answered 503 over the open-connection cap",
        ),
    ] {
        pt.family(name, "counter", help);
        pt.sample(name, &[], value as f64);
    }

    // Admission and connection gauges.
    for (name, value, help) in [
        (
            "faircap_serve_connections_open",
            inner.gauges.open() as f64,
            "Currently open connections",
        ),
        (
            "faircap_serve_queue_depth",
            inner.solve_pool.queue_depth() as f64,
            "Admitted solves waiting for a pool worker",
        ),
        (
            "faircap_serve_queue_depth_max",
            inner.solve_pool.max_queue_depth() as f64,
            "High-water mark of the solve queue",
        ),
        (
            "faircap_serve_in_flight",
            inner.solve_pool.in_flight() as f64,
            "Solves currently running on the pool",
        ),
        (
            "faircap_serve_coalesce_in_flight",
            inner.coalescer.in_flight() as f64,
            "Coalesce groups currently in flight",
        ),
        (
            "faircap_serve_max_concurrent_solves",
            inner.solve_pool.workers() as f64,
            "Configured solve worker count",
        ),
        (
            "faircap_serve_solve_queue_limit",
            inner.solve_pool.queue_cap() as f64,
            "Configured bound on admitted-but-not-started solves",
        ),
        (
            "faircap_serve_max_connections",
            inner.config.max_connections as f64,
            "Configured open-connection cap",
        ),
    ] {
        pt.family(name, "gauge", help);
        pt.sample(name, &[], value);
    }

    // Latency histograms (microseconds) — the same recorders `/v1/metrics`
    // summarizes, exposed as cumulative `_bucket` series.
    for (name, recorder, help) in [
        (
            "faircap_serve_solve_latency_us",
            &m.solve_latency,
            "End-to-end solve latency, admission to delivery",
        ),
        (
            "faircap_serve_queue_wait_us",
            &m.queue_wait,
            "Time admitted solves spent queued before a worker picked them up",
        ),
        (
            "faircap_serve_request_latency_us",
            &m.request_latency,
            "Reactor dispatch latency per keep-alive request",
        ),
        (
            "faircap_serve_reactor_read_us",
            &m.reactor_read,
            "Reactor read-side servicing per readable connection",
        ),
        (
            "faircap_serve_reactor_write_us",
            &m.reactor_write,
            "Reactor write-side flushes of queued response bytes",
        ),
    ] {
        pt.family(name, "histogram", help);
        pt.histogram(name, &[], &recorder.snapshot_us());
    }

    // Per-session state, one sample per registered session.
    let entries = inner.registry.entries();

    pt.family(
        "faircap_session_rows",
        "gauge",
        "Rows in the session's dataframe",
    );
    for e in &entries {
        pt.sample(
            "faircap_session_rows",
            &[("session", e.name())],
            e.session().df().n_rows() as f64,
        );
    }

    for (name, reader, help) in [
        (
            "faircap_session_solves_ok_total",
            (|e: &RegisteredSession| e.solves_ok()) as fn(&RegisteredSession) -> u64,
            "Completed underlying solves on the session",
        ),
        (
            "faircap_session_solves_err_total",
            |e: &RegisteredSession| e.solves_err(),
            "Failed solves on the session",
        ),
        (
            "faircap_session_solves_coalesced_total",
            |e: &RegisteredSession| e.solves_coalesced(),
            "Requests served by attaching to an in-flight solve",
        ),
    ] {
        pt.family(name, "counter", help);
        for e in &entries {
            pt.sample(name, &[("session", e.name())], reader(e) as f64);
        }
    }

    // Cache counters, one family per stat with a `cache` label; the
    // estimate cache additionally splits per estimator as
    // `cache="estimate/<estimator>"` (not double-counted into
    // `cache="estimate"` sums — aggregate and split are separate rows).
    let mut cache_rows: Vec<(String, String, u64, u64, u64, u64)> = Vec::new();
    for e in &entries {
        let s = e.session();
        let n = e.name().to_owned();
        let st = s.cache_stats();
        cache_rows.push((
            n.clone(),
            "estimate".into(),
            st.hits,
            st.misses,
            st.entries as u64,
            st.evictions,
        ));
        let st = s.grouping_cache_stats();
        cache_rows.push((
            n.clone(),
            "grouping".into(),
            st.hits,
            st.misses,
            st.entries as u64,
            st.evictions,
        ));
        let st = s.intervention_cache_stats();
        cache_rows.push((
            n.clone(),
            "intervention".into(),
            st.hits,
            st.misses,
            st.entries as u64,
            st.evictions,
        ));
        let st = s.engine().match_index_cache_stats();
        cache_rows.push((
            n.clone(),
            "match_index".into(),
            st.hits,
            st.misses,
            st.entries as u64,
            st.evictions,
        ));
        for (est, st) in s.cache_stats_by_estimator() {
            cache_rows.push((
                n.clone(),
                format!("estimate/{est}"),
                st.hits,
                st.misses,
                st.entries as u64,
                st.evictions,
            ));
        }
    }
    for (name, kind, pick, help) in [
        (
            "faircap_session_cache_hits_total",
            "counter",
            (|r: &(String, String, u64, u64, u64, u64)| r.2)
                as fn(&(String, String, u64, u64, u64, u64)) -> u64,
            "Session cache hits by cache (estimate, grouping, intervention, match_index, estimate/<estimator>)",
        ),
        (
            "faircap_session_cache_misses_total",
            "counter",
            |r: &(String, String, u64, u64, u64, u64)| r.3,
            "Session cache misses by cache",
        ),
        (
            "faircap_session_cache_entries",
            "gauge",
            |r: &(String, String, u64, u64, u64, u64)| r.4,
            "Live session cache entries by cache",
        ),
        (
            "faircap_session_cache_evictions_total",
            "counter",
            |r: &(String, String, u64, u64, u64, u64)| r.5,
            "Session cache evictions by cache",
        ),
    ] {
        pt.family(name, kind, help);
        for row in &cache_rows {
            pt.sample(
                name,
                &[("session", &row.0), ("cache", &row.1)],
                pick(row) as f64,
            );
        }
    }

    // Solve-path cost accounting (aggregated over every solve).
    pt.family(
        "faircap_session_solve_step_ns_total",
        "counter",
        "Cumulative per-step solve time (step: mine, intervene, select)",
    );
    pt.family(
        "faircap_session_solve_work_total",
        "counter",
        "Solve-path work items (kind: solves, candidates, pruned, evaluated, greedy_evaluations, greedy_reevaluations)",
    );
    for e in &entries {
        let h = e.session().solve_hot_stats();
        for (step, ns) in [
            ("mine", h.mine_ns),
            ("intervene", h.intervene_ns),
            ("select", h.select_ns),
        ] {
            pt.sample(
                "faircap_session_solve_step_ns_total",
                &[("session", e.name()), ("step", step)],
                ns as f64,
            );
        }
        for (kind, n) in [
            ("solves", h.solves),
            ("candidates", h.candidates),
            ("pruned", h.pruned),
            ("evaluated", h.evaluated),
            ("greedy_evaluations", h.greedy_evaluations),
            ("greedy_reevaluations", h.greedy_reevaluations),
        ] {
            pt.sample(
                "faircap_session_solve_work_total",
                &[("session", e.name()), ("kind", kind)],
                n as f64,
            );
        }
    }

    // Estimator hot-path cost accounting (aggregated over every estimate).
    pt.family(
        "faircap_session_estimate_stage_ns_total",
        "counter",
        "Cumulative estimator hot-path time (stage: build, index, solve)",
    );
    pt.family(
        "faircap_session_estimate_work_total",
        "counter",
        "Estimator work items (kind: estimates, tasks, tree_visits)",
    );
    for e in &entries {
        let hot = e.session().engine().hot_stats();
        for (stage, ns) in [
            ("build", hot.stats.build_ns),
            ("index", hot.stats.index_ns),
            ("solve", hot.stats.solve_ns),
        ] {
            pt.sample(
                "faircap_session_estimate_stage_ns_total",
                &[("session", e.name()), ("stage", stage)],
                ns as f64,
            );
        }
        for (kind, n) in [
            ("estimates", hot.estimates),
            ("tasks", hot.stats.tasks),
            ("tree_visits", hot.stats.tree_visits),
        ] {
            pt.sample(
                "faircap_session_estimate_work_total",
                &[("session", e.name()), ("kind", kind)],
                n as f64,
            );
        }
    }

    // Warm-boot provenance: emitted only for warm-booted sessions, so a
    // cold boot is visible as the series' absence.
    let warm: Vec<(&str, faircap_core::WarmBootInfo)> = entries
        .iter()
        .filter_map(|e| e.warm_boot().map(|w| (e.name(), w)))
        .collect();
    if !warm.is_empty() {
        pt.family(
            "faircap_session_warm_boot_restore_ms",
            "gauge",
            "Milliseconds spent restoring the session's snapshot at warm boot",
        );
        for (session, w) in &warm {
            pt.sample(
                "faircap_session_warm_boot_restore_ms",
                &[("session", session), ("snapshot", &w.snapshot_path)],
                w.restore_ms,
            );
        }
    }

    // Per-estimator estimate-duration histograms (nanoseconds). The
    // family is only declared once at least one estimator has recorded —
    // a histogram family with no bucket series is invalid.
    let est_hists: Vec<(&str, String, HistogramSnapshot)> = entries
        .iter()
        .flat_map(|e| {
            e.session()
                .engine()
                .estimate_histograms()
                .into_iter()
                .map(move |(est, snap)| (e.name(), est, snap))
        })
        .collect();
    if !est_hists.is_empty() {
        pt.family(
            "faircap_estimator_estimate_duration_ns",
            "histogram",
            "Per-estimate wall time by estimator (cache misses only)",
        );
        for (session, est, snap) in &est_hists {
            pt.histogram(
                "faircap_estimator_estimate_duration_ns",
                &[("session", session), ("estimator", est)],
                snap,
            );
        }
    }

    Response::prometheus(200, pt.render())
}
