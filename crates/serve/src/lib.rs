//! # faircap-serve
//!
//! A concurrent prescription-serving front end over
//! [`PrescriptionSession`]s: the ROADMAP's "serving v2" item, built
//! dependency-free on `std::net` plus raw readiness syscalls (the
//! environment is offline — no tokio/hyper/mio).
//!
//! ## Architecture
//!
//! ```text
//!                 ┌──────────────────────────────────────────────┐
//!  TCP listener → │ reactor thread (epoll / poll(2)):            │
//!                 │ accept, read, parse HTTP/1.1 keep-alive +    │
//!                 │ pipelining, write; per-conn response slots   │
//!                 └───────┬──────────────────────────▲───────────┘
//!     POST /v1/solve      │ admission + coalescing   │ completions
//!                 ┌───────▼──────────────────────────┴───────────┐
//!                 │ solve pool (max_concurrent_solves workers,   │
//!                 │ solve_queue_depth bounded queue)             │
//!                 └───────┬──────────────────────────────────────┘
//!                         │ RegisteredSession::solve
//!                 ┌───────▼─────────────────────────┐
//!                 │ SessionRegistry (one warm       │
//!                 │ PrescriptionSession per dataset)│
//!                 └─────────────────────────────────┘
//! ```
//!
//! One [`reactor`] thread multiplexes every connection, so a connection
//! costs a map entry — not a thread — and keep-alive clients pay the TCP
//! handshake once. Quick endpoints are answered inline on the reactor;
//! solves are admitted to the bounded [`pool::WorkerPool`] and their
//! responses flow back through the reactor's completion queue:
//!
//! * identical in-flight solve requests **coalesce** ([`coalesce`]): one
//!   underlying solve, its report fanned out to every waiter;
//! * a full solve queue sheds load with **429** (+`Retry-After`);
//! * a draining server answers **503** to new solves;
//! * a solve exceeding the per-request timeout answers **504** (the solve
//!   finishes on its worker and still warms the shared caches);
//! * [`Server::shutdown`] stops accepting, finishes every admitted
//!   request — pipelined and pending ones included — then returns.
//!
//! ## Endpoints
//!
//! | Method | Path           | Purpose                                      |
//! |--------|----------------|----------------------------------------------|
//! | POST   | `/v1/solve`    | JSON [`SolveRequest`] → JSON solution report |
//! | GET    | `/v1/sessions` | Registered sessions and their counters       |
//! | GET    | `/v1/metrics`  | Admission gauges, latencies, cache stats     |
//! | POST   | `/v1/snapshot` | Persist warm caches to the snapshot dir      |
//! | POST   | `/v1/shutdown` | Request a graceful drain                     |
//! | GET    | `/healthz`     | Liveness probe                               |
//!
//! JSON schemas are documented in `docs/serving.md`; the request/report
//! wire format lives in `faircap_core::wire` so rulesets served over HTTP
//! are bit-identical to direct [`PrescriptionSession::solve`] calls.
//!
//! [`PrescriptionSession`]: faircap_core::PrescriptionSession
//! [`PrescriptionSession::solve`]: faircap_core::PrescriptionSession::solve
//! [`SolveRequest`]: faircap_core::SolveRequest

#![warn(missing_docs)]

pub mod client;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod reactor;

pub use client::{ClientConnection, ClientResponse, ServeClient};
pub use reactor::PollerKind;

use coalesce::{Attach, Coalescer};
use faircap_core::wire::{solution_report_to_json, solve_request_from_json};
use faircap_core::{Error, Json, RegisteredSession, SessionRegistry};
use http::{ParseError, Request, Response};
use metrics::{ConnGauges, ServerMetrics};
use pool::{SubmitError, WorkerPool};
use reactor::{App, Completion, Completions, Dispatch, ReactorHandle, ReactorOptions};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration: bind address, solve-pool sizes, connection
/// limits, and the snapshot directory for warm boots.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Solve worker threads — the max-concurrent-solves budget.
    pub max_concurrent_solves: usize,
    /// Bound on admitted-but-not-started solves (overflow answers 429).
    pub solve_queue_depth: usize,
    /// Per-request solve timeout (exceeding answers 504).
    pub solve_timeout: Duration,
    /// Where `POST /v1/snapshot` persists warm caches (`<dir>/<name>.fc`).
    pub snapshot_dir: Option<PathBuf>,
    /// Open-connection cap; excess connections get an immediate 503.
    pub max_connections: usize,
    /// Keep-alive connections with no outstanding requests are closed
    /// after this long.
    pub idle_timeout: Duration,
    /// Readiness backend. [`PollerKind::Auto`] honors the `FAIRCAP_POLLER`
    /// environment variable, then picks the platform default.
    pub poller: PollerKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_concurrent_solves: 2,
            solve_queue_depth: 16,
            solve_timeout: Duration::from_secs(120),
            snapshot_dir: None,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(30),
            poller: PollerKind::Auto,
        }
    }
}

struct Inner {
    registry: Arc<SessionRegistry>,
    config: ServeConfig,
    metrics: ServerMetrics,
    gauges: Arc<ConnGauges>,
    solve_pool: WorkerPool,
    coalescer: Coalescer,
    completions: Arc<Completions>,
    started: Instant,
    poller_name: &'static str,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running server. Dropping it performs a graceful [`shutdown`].
///
/// [`shutdown`]: Server::shutdown
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    reactor: ReactorHandle,
}

impl Server {
    /// Bind and start serving `registry` under `config`. Returns once the
    /// listener is accepting; everything else happens on the reactor
    /// thread and the solve pool.
    pub fn start(config: ServeConfig, registry: Arc<SessionRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let kind = match config.poller {
            PollerKind::Auto => PollerKind::from_env(),
            explicit => explicit,
        };
        let poller_name = match kind {
            PollerKind::Poll => "poll",
            PollerKind::Epoll => "epoll",
            PollerKind::Auto => {
                if cfg!(target_os = "linux") {
                    "epoll"
                } else {
                    "poll"
                }
            }
        };
        let completions = Completions::new()?;
        let gauges = Arc::new(ConnGauges::default());
        let options = ReactorOptions {
            poller: kind,
            max_connections: config.max_connections,
            idle_timeout: config.idle_timeout,
            pending_timeout: config.solve_timeout,
        };
        let inner = Arc::new(Inner {
            solve_pool: WorkerPool::new(
                "faircap-solve",
                config.max_concurrent_solves,
                config.solve_queue_depth,
            ),
            metrics: ServerMetrics::default(),
            gauges: Arc::clone(&gauges),
            coalescer: Coalescer::new(),
            completions: Arc::clone(&completions),
            started: Instant::now(),
            poller_name,
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            registry,
            config,
        });
        let reactor = reactor::spawn(listener, Arc::clone(&inner), completions, options, gauges)?;
        Ok(Server {
            inner,
            addr,
            reactor,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server fronts.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.inner.registry
    }

    /// A [`ServeClient`] bound to this server.
    pub fn client(&self) -> ServeClient {
        ServeClient::new(self.addr)
    }

    /// Whether a graceful shutdown has been requested (via
    /// [`request_shutdown`](Self::request_shutdown) or `POST /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_flag.lock().expect("shutdown flag lock")
    }

    /// Ask the server to shut down; unblocks
    /// [`wait_for_shutdown_request`](Self::wait_for_shutdown_request).
    /// New solve requests are refused with 503 from this point on; quick
    /// endpoints keep answering until [`shutdown`](Self::shutdown).
    pub fn request_shutdown(&self) {
        request_shutdown(&self.inner);
    }

    /// Block until someone requests a shutdown, then return (the caller —
    /// typically the CLI — performs the actual [`shutdown`](Self::shutdown)).
    pub fn wait_for_shutdown_request(&self) {
        let mut flag = self.inner.shutdown_flag.lock().expect("shutdown flag lock");
        while !*flag {
            flag = self.inner.shutdown_cv.wait(flag).expect("shutdown cv wait");
        }
    }

    /// Graceful shutdown: close the listener, finish every admitted
    /// request (pipelined and in-solve ones included), flush, then join
    /// the reactor and the solve pool. Idempotent.
    pub fn shutdown(&self) {
        // The reactor drains first — its pending slots need live solve
        // workers to complete — then the pool.
        self.reactor.shutdown();
        self.inner.solve_pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn request_shutdown(inner: &Inner) {
    let mut flag = inner.shutdown_flag.lock().expect("shutdown flag lock");
    *flag = true;
    inner.shutdown_cv.notify_all();
}

impl Inner {
    fn draining(&self) -> bool {
        *self.shutdown_flag.lock().expect("shutdown flag lock")
    }

    /// Admission for `POST /v1/solve`: validate, coalesce, submit.
    fn dispatch_solve(self: &Arc<Self>, request: &Request, waiter: u64) -> Dispatch {
        let body_text = match request.body_utf8() {
            Ok(text) if !text.trim().is_empty() => text,
            Ok(_) => "{}",
            Err(e) => return Dispatch::Immediate(Response::error(400, e.to_string())),
        };
        let body = match Json::parse(body_text) {
            Ok(body) => body,
            Err(e) => {
                return Dispatch::Immediate(Response::error(400, format!("invalid JSON body: {e}")))
            }
        };
        let entry = match resolve_session(self, &body) {
            Ok(entry) => entry,
            Err(response) => return Dispatch::Immediate(response),
        };
        let solve_request = match solve_request_from_json(&body) {
            Ok(r) => r,
            Err(e) => return Dispatch::Immediate(Response::error(400, e.to_string())),
        };
        if self.draining() {
            ServerMetrics::bump(&self.metrics.rejected_shutdown);
            return Dispatch::Immediate(Response::error(503, "server is draining for shutdown"));
        }

        // Coalesce: identical in-flight (session, request) pairs share one
        // underlying solve. `attach`/`abort` both run here on the reactor
        // thread, so a leader's failed submission can never strand a
        // follower.
        let key = coalesce::fingerprint(entry.name(), &solve_request);
        if let Some(key) = &key {
            match self.coalescer.attach(key.clone(), waiter) {
                Attach::Attached => {
                    ServerMetrics::bump(&self.metrics.coalesce_hits);
                    entry.record_coalesced();
                    return Dispatch::Pending;
                }
                Attach::Leader => {}
            }
        }

        let job_inner = Arc::clone(self);
        let job_key = key.clone();
        let job_entry = Arc::clone(&entry);
        let submitted = self.solve_pool.try_submit(move || {
            let response = match job_entry.solve(&solve_request) {
                Ok(report) => {
                    let mut doc =
                        vec![("session".to_owned(), Json::Str(job_entry.name().to_owned()))];
                    match solution_report_to_json(&report) {
                        Json::Obj(fields) => doc.extend(fields),
                        other => doc.push(("report".to_owned(), other)),
                    }
                    Response::json(200, &Json::Obj(doc))
                }
                Err(e) => {
                    let status = match e {
                        Error::InvalidRequest(_) => 422,
                        _ => 500,
                    };
                    Response::error(status, e.to_string())
                }
            };
            let waiters = match &job_key {
                Some(k) => job_inner.coalescer.take(k),
                None => vec![waiter],
            };
            job_inner
                .completions
                .complete(Completion { waiters, response });
        });
        match submitted {
            Ok(()) => Dispatch::Pending,
            Err(SubmitError::QueueFull) => {
                if let Some(key) = &key {
                    self.coalescer.abort(key);
                }
                ServerMetrics::bump(&self.metrics.rejected_queue_full);
                Dispatch::Immediate(
                    Response::error(
                        429,
                        format!(
                            "solve queue is full ({} queued, {} in flight); retry shortly",
                            self.solve_pool.queue_depth(),
                            self.solve_pool.in_flight()
                        ),
                    )
                    .with_header("retry-after", "1"),
                )
            }
            Err(SubmitError::ShuttingDown) => {
                if let Some(key) = &key {
                    self.coalescer.abort(key);
                }
                ServerMetrics::bump(&self.metrics.rejected_shutdown);
                Dispatch::Immediate(Response::error(503, "server is draining for shutdown"))
            }
        }
    }
}

impl App for Inner {
    fn handle(self: &Arc<Self>, request: &Request, waiter: u64) -> Dispatch {
        ServerMetrics::bump(&self.metrics.http_requests);
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/solve") => self.dispatch_solve(request, waiter),
            ("GET", "/healthz") => Dispatch::Immediate(Response::json(
                200,
                &Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    (
                        "uptime_ms".into(),
                        Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
                    ),
                ]),
            )),
            ("GET", "/v1/sessions") => Dispatch::Immediate(sessions_response(self)),
            ("GET", "/v1/metrics") => Dispatch::Immediate(metrics_response(self)),
            ("POST", "/v1/snapshot") => Dispatch::Immediate(snapshot_response(self, request)),
            ("POST", "/v1/shutdown") => {
                request_shutdown(self);
                Dispatch::Immediate(Response::json(
                    200,
                    &Json::Obj(vec![("draining".into(), Json::Bool(true))]),
                ))
            }
            (_, "/v1/solve" | "/v1/snapshot" | "/v1/shutdown" | "/v1/sessions" | "/v1/metrics") => {
                Dispatch::Immediate(Response::error(
                    405,
                    format!("method {} not allowed here", request.method),
                ))
            }
            (_, path) => {
                Dispatch::Immediate(Response::error(404, format!("no such endpoint `{path}`")))
            }
        }
    }

    fn on_timeout(&self, _waiter: u64) -> Response {
        ServerMetrics::bump(&self.metrics.timeouts);
        Response::error(
            504,
            format!(
                "solve exceeded the {:?} request timeout; it keeps running and will warm the caches",
                self.config.solve_timeout
            ),
        )
    }

    fn on_parse_error(&self, error: &ParseError) -> Response {
        ServerMetrics::bump(&self.metrics.http_errors);
        match error {
            ParseError::BodyTooLarge(_) => Response::error(413, error.to_string()),
            ParseError::Malformed(_) => Response::error(400, error.to_string()),
        }
    }

    fn on_delivered(&self, status: u16, waited: Duration) {
        // Delivered-response accounting: a coalesced fan-out of one
        // underlying solve counts once per served request (per-session
        // counters track underlying solves).
        if status == 200 {
            ServerMetrics::bump(&self.metrics.solves_ok);
            self.metrics.solve_latency.record(waited);
        } else {
            ServerMetrics::bump(&self.metrics.solves_err);
        }
    }
}

/// Resolve the target session: the body's `session` field, or the sole
/// registered session when the field is absent.
fn resolve_session(inner: &Inner, body: &Json) -> Result<Arc<RegisteredSession>, Response> {
    match body.get("session") {
        Some(Json::Str(name)) => inner.registry.get(name).ok_or_else(|| {
            Response::error(
                404,
                format!(
                    "no session `{name}` (registered: {})",
                    inner.registry.names().join(", ")
                ),
            )
        }),
        Some(_) => Err(Response::error(400, "`session` must be a string")),
        None => inner.registry.single().ok_or_else(|| {
            Response::error(
                400,
                format!(
                    "{} sessions registered; specify `session` (one of: {})",
                    inner.registry.len(),
                    inner.registry.names().join(", ")
                ),
            )
        }),
    }
}

fn snapshot_response(inner: &Inner, request: &Request) -> Response {
    let Some(dir) = &inner.config.snapshot_dir else {
        return Response::error(
            400,
            "no snapshot directory configured (start the server with --snapshot-dir)",
        );
    };
    let body_text = match request.body_utf8() {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => "{}",
        Err(e) => return Response::error(400, e.to_string()),
    };
    let body = match Json::parse(body_text) {
        Ok(body) => body,
        Err(e) => return Response::error(400, format!("invalid JSON body: {e}")),
    };
    let entries = match body.get("session") {
        Some(Json::Str(name)) => match inner.registry.get(name) {
            Some(entry) => vec![entry],
            None => return Response::error(404, format!("no session `{name}`")),
        },
        Some(_) => return Response::error(400, "`session` must be a string"),
        None => inner.registry.entries(),
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Response::error(500, format!("creating {}: {e}", dir.display()));
    }
    let mut written = Vec::new();
    for entry in entries {
        let path = dir.join(format!("{}.fc", entry.name()));
        let encoded = entry.session().snapshot().encode();
        if let Err(e) = std::fs::write(&path, &encoded) {
            return Response::error(500, format!("writing {}: {e}", path.display()));
        }
        written.push(Json::Obj(vec![
            ("session".into(), Json::Str(entry.name().to_owned())),
            ("path".into(), Json::Str(path.display().to_string())),
            ("bytes".into(), Json::Num(encoded.len() as f64)),
        ]));
    }
    Response::json(
        200,
        &Json::Obj(vec![("snapshots".into(), Json::Arr(written))]),
    )
}

fn cache_stats_json(hits: u64, misses: u64, entries: usize, evictions: u64) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Num(hits as f64)),
        ("misses".into(), Json::Num(misses as f64)),
        ("entries".into(), Json::Num(entries as f64)),
        ("evictions".into(), Json::Num(evictions as f64)),
    ])
}

fn session_json(entry: &RegisteredSession) -> Json {
    let session = entry.session();
    let stats = session.cache_stats();
    let grouping = session.grouping_cache_stats();
    let interventions = session.intervention_cache_stats();
    let solve_hot = session.solve_hot_stats();
    let hot = session.engine().hot_stats();
    let match_index = session.engine().match_index_cache_stats();
    let by_estimator: Vec<(String, Json)> = session
        .cache_stats_by_estimator()
        .into_iter()
        .map(|(name, s)| {
            (
                name,
                cache_stats_json(s.hits, s.misses, s.entries, s.evictions),
            )
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(entry.name().to_owned())),
        ("rows".into(), Json::Num(session.df().n_rows() as f64)),
        ("outcome".into(), Json::Str(session.outcome().to_owned())),
        ("solves_ok".into(), Json::Num(entry.solves_ok() as f64)),
        ("solves_err".into(), Json::Num(entry.solves_err() as f64)),
        (
            "solves_coalesced".into(),
            Json::Num(entry.solves_coalesced() as f64),
        ),
        (
            "estimate_cache".into(),
            cache_stats_json(stats.hits, stats.misses, stats.entries, stats.evictions),
        ),
        (
            "estimate_cache_by_estimator".into(),
            Json::Obj(by_estimator),
        ),
        (
            "grouping_cache".into(),
            cache_stats_json(
                grouping.hits,
                grouping.misses,
                grouping.entries,
                grouping.evictions,
            ),
        ),
        (
            "intervention_cache".into(),
            cache_stats_json(
                interventions.hits,
                interventions.misses,
                interventions.entries,
                interventions.evictions,
            ),
        ),
        (
            "match_index_cache".into(),
            cache_stats_json(
                match_index.hits,
                match_index.misses,
                match_index.entries,
                match_index.evictions,
            ),
        ),
        // Solve-path cost accounting aggregated over every solve on the
        // session: per-step milliseconds, mining candidate pipeline, and
        // greedy heap activity.
        (
            "solve_stats".into(),
            Json::Obj(vec![
                ("solves".into(), Json::Num(solve_hot.solves as f64)),
                ("mine_ms".into(), Json::Num(solve_hot.mine_ns as f64 / 1e6)),
                (
                    "intervene_ms".into(),
                    Json::Num(solve_hot.intervene_ns as f64 / 1e6),
                ),
                (
                    "select_ms".into(),
                    Json::Num(solve_hot.select_ns as f64 / 1e6),
                ),
                ("candidates".into(), Json::Num(solve_hot.candidates as f64)),
                ("pruned".into(), Json::Num(solve_hot.pruned as f64)),
                ("evaluated".into(), Json::Num(solve_hot.evaluated as f64)),
                (
                    "greedy_evaluations".into(),
                    Json::Num(solve_hot.greedy_evaluations as f64),
                ),
                (
                    "greedy_reevaluations".into(),
                    Json::Num(solve_hot.greedy_reevaluations as f64),
                ),
            ]),
        ),
        // Hot-path cost accounting aggregated over every estimation run:
        // per-stage milliseconds (design build / index construction /
        // solve), executor task units, and KD-tree node visits.
        (
            "estimate_timing".into(),
            Json::Obj(vec![
                ("estimates".into(), Json::Num(hot.estimates as f64)),
                (
                    "build_ms".into(),
                    Json::Num(hot.stats.build_ns as f64 / 1e6),
                ),
                (
                    "index_ms".into(),
                    Json::Num(hot.stats.index_ns as f64 / 1e6),
                ),
                (
                    "solve_ms".into(),
                    Json::Num(hot.stats.solve_ns as f64 / 1e6),
                ),
                ("tasks".into(), Json::Num(hot.stats.tasks as f64)),
                (
                    "tree_visits".into(),
                    Json::Num(hot.stats.tree_visits as f64),
                ),
            ]),
        ),
        (
            "exec".into(),
            entry
                .last_exec()
                .map(|e| faircap_core::wire::exec_stats_to_json(&e))
                .unwrap_or(Json::Null),
        ),
    ])
}

fn sessions_response(inner: &Inner) -> Response {
    let sessions: Vec<Json> = inner
        .registry
        .entries()
        .iter()
        .map(|e| session_json(e))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![("sessions".into(), Json::Arr(sessions))]),
    )
}

fn metrics_response(inner: &Inner) -> Response {
    let m = &inner.metrics;
    let latency = match m.solve_latency.summary_ms() {
        Some((p50, p90, p99, max)) => Json::Obj(vec![
            ("count".into(), Json::Num(m.solve_latency.count() as f64)),
            ("p50_ms".into(), Json::Num(p50)),
            ("p90_ms".into(), Json::Num(p90)),
            ("p99_ms".into(), Json::Num(p99)),
            ("max_ms".into(), Json::Num(max)),
        ]),
        None => Json::Null,
    };
    let admission = Json::Obj(vec![
        (
            "max_concurrent_solves".into(),
            Json::Num(inner.solve_pool.workers() as f64),
        ),
        (
            "solve_queue_limit".into(),
            Json::Num(inner.solve_pool.queue_cap() as f64),
        ),
        (
            "queue_depth".into(),
            Json::Num(inner.solve_pool.queue_depth() as f64),
        ),
        (
            "max_queue_depth".into(),
            Json::Num(inner.solve_pool.max_queue_depth() as f64),
        ),
        (
            "in_flight".into(),
            Json::Num(inner.solve_pool.in_flight() as f64),
        ),
        (
            "solve_timeout_ms".into(),
            Json::Num(inner.config.solve_timeout.as_secs_f64() * 1e3),
        ),
        (
            "coalesce_in_flight".into(),
            Json::Num(inner.coalescer.in_flight() as f64),
        ),
    ]);
    let requests = Json::Obj(vec![
        (
            "http_requests".into(),
            Json::Num(ServerMetrics::read(&m.http_requests) as f64),
        ),
        (
            "http_errors".into(),
            Json::Num(ServerMetrics::read(&m.http_errors) as f64),
        ),
        (
            "solves_ok".into(),
            Json::Num(ServerMetrics::read(&m.solves_ok) as f64),
        ),
        (
            "solves_err".into(),
            Json::Num(ServerMetrics::read(&m.solves_err) as f64),
        ),
        (
            "coalesce_hits".into(),
            Json::Num(ServerMetrics::read(&m.coalesce_hits) as f64),
        ),
        (
            "rejected_429".into(),
            Json::Num(ServerMetrics::read(&m.rejected_queue_full) as f64),
        ),
        (
            "rejected_503".into(),
            Json::Num(ServerMetrics::read(&m.rejected_shutdown) as f64),
        ),
        (
            "timeouts_504".into(),
            Json::Num(ServerMetrics::read(&m.timeouts) as f64),
        ),
    ]);
    let connections = Json::Obj(vec![
        ("open".into(), Json::Num(inner.gauges.open() as f64)),
        (
            "accepted".into(),
            Json::Num(ServerMetrics::read(&inner.gauges.accepted) as f64),
        ),
        (
            "closed".into(),
            Json::Num(ServerMetrics::read(&inner.gauges.closed) as f64),
        ),
        (
            "rejected_over_capacity".into(),
            Json::Num(ServerMetrics::read(&inner.gauges.rejected_over_capacity) as f64),
        ),
        ("poller".into(), Json::Str(inner.poller_name.into())),
        (
            "max_connections".into(),
            Json::Num(inner.config.max_connections as f64),
        ),
        (
            "idle_timeout_ms".into(),
            Json::Num(inner.config.idle_timeout.as_secs_f64() * 1e3),
        ),
    ]);
    let sessions: Vec<(String, Json)> = inner
        .registry
        .entries()
        .iter()
        .map(|e| (e.name().to_owned(), session_json(e)))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![
            (
                "uptime_ms".into(),
                Json::Num(inner.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("requests".into(), requests),
            ("admission".into(), admission),
            ("connections".into(), connections),
            ("solve_latency".into(), latency),
            ("sessions".into(), Json::Obj(sessions)),
        ]),
    )
}
