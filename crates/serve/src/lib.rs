//! # faircap-serve
//!
//! A concurrent prescription-serving front end over
//! [`PrescriptionSession`]s: the ROADMAP's "async serving" open item,
//! built dependency-free on `std::net` (the environment is offline — no
//! tokio/hyper; blocking worker pools stand in for an async runtime).
//!
//! ## Architecture
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  TCP accept loop → │ connection pool (N workers, bounded queue) │
//!                    └──────────────┬─────────────────────────────┘
//!                                   │ parse HTTP, route
//!                       POST /v1/solve │ admission control
//!                    ┌──────────────▼─────────────────────────────┐
//!                    │ solve pool (max_concurrent_solves workers, │
//!                    │ solve_queue_depth bounded queue)           │
//!                    └──────────────┬─────────────────────────────┘
//!                                   │ RegisteredSession::solve
//!                    ┌──────────────▼──────────────┐
//!                    │ SessionRegistry (one warm   │
//!                    │ PrescriptionSession/dataset)│
//!                    └─────────────────────────────┘
//! ```
//!
//! Two bounded [`pool::WorkerPool`]s (the long-lived form of
//! `core::exec`'s self-scheduling workers) give the server real admission
//! control:
//!
//! * a full solve queue sheds load with **429** (+`Retry-After`) instead of
//!   buffering unboundedly;
//! * a draining server answers **503**;
//! * a solve exceeding the per-request timeout answers **504** (the solve
//!   finishes on its worker and still warms the shared caches);
//! * [`Server::shutdown`] stops accepting, then drains every admitted
//!   request before returning.
//!
//! ## Endpoints
//!
//! | Method | Path           | Purpose                                      |
//! |--------|----------------|----------------------------------------------|
//! | POST   | `/v1/solve`    | JSON [`SolveRequest`] → JSON solution report |
//! | GET    | `/v1/sessions` | Registered sessions and their counters       |
//! | GET    | `/v1/metrics`  | Admission gauges, latencies, cache stats     |
//! | POST   | `/v1/snapshot` | Persist warm caches to the snapshot dir      |
//! | POST   | `/v1/shutdown` | Request a graceful drain                     |
//! | GET    | `/healthz`     | Liveness probe                               |
//!
//! JSON schemas are documented in `docs/serving.md`; the request/report
//! wire format lives in `faircap_core::wire` so rulesets served over HTTP
//! are bit-identical to direct [`PrescriptionSession::solve`] calls.
//!
//! [`PrescriptionSession`]: faircap_core::PrescriptionSession
//! [`PrescriptionSession::solve`]: faircap_core::PrescriptionSession::solve
//! [`SolveRequest`]: faircap_core::SolveRequest

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;

pub use client::{ClientResponse, ServeClient};

use faircap_core::wire::{solution_report_to_json, solve_request_from_json};
use faircap_core::{Error, Json, RegisteredSession, SessionRegistry};
use http::{ParseError, Request, Response};
use metrics::ServerMetrics;
use pool::{SubmitError, WorkerPool};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration: bind address, pool sizes, admission-control
/// knobs, and the snapshot directory for warm boots.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Connection-handling worker threads. Treated as a floor: the server
    /// raises the effective count to
    /// `max_concurrent_solves + solve_queue_depth + 4`, so waiting solve
    /// requests can fill the solve queue (keeping the 429 admission path
    /// reachable) while quick endpoints always find a free worker.
    pub connection_workers: usize,
    /// Bound on connections waiting for a handler (overflow answers 503
    /// inline from the accept loop).
    pub connection_queue: usize,
    /// Solve worker threads — the max-concurrent-solves budget.
    pub max_concurrent_solves: usize,
    /// Bound on admitted-but-not-started solves (overflow answers 429).
    pub solve_queue_depth: usize,
    /// Per-request solve timeout (exceeding answers 504).
    pub solve_timeout: Duration,
    /// Where `POST /v1/snapshot` persists warm caches (`<dir>/<name>.fc`).
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            connection_workers: 8,
            connection_queue: 64,
            max_concurrent_solves: 2,
            solve_queue_depth: 16,
            solve_timeout: Duration::from_secs(120),
            snapshot_dir: None,
        }
    }
}

struct Inner {
    registry: Arc<SessionRegistry>,
    config: ServeConfig,
    metrics: ServerMetrics,
    solve_pool: WorkerPool,
    started: Instant,
    stopping: AtomicBool,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running server. Dropping it performs a graceful [`shutdown`].
///
/// [`shutdown`]: Server::shutdown
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    conn_pool: Arc<WorkerPool>,
    accept_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind and start serving `registry` under `config`. Returns once the
    /// listener is accepting; solves are served by background pools.
    pub fn start(config: ServeConfig, registry: Arc<SessionRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            solve_pool: WorkerPool::new(
                "faircap-solve",
                config.max_concurrent_solves,
                config.solve_queue_depth,
            ),
            metrics: ServerMetrics::default(),
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            registry,
            config,
        });
        // A connection worker parks on its solve for the solve's whole
        // duration, so the effective pool must be big enough that (a) the
        // parked waiters alone can fill the solve queue — otherwise the
        // 429 admission path is unreachable — and (b) quick endpoints
        // (/healthz, /v1/metrics, /v1/shutdown) always find a free worker
        // while every solve slot and queue slot is occupied.
        let conn_workers = inner
            .config
            .connection_workers
            .max(inner.config.max_concurrent_solves + inner.config.solve_queue_depth + 4);
        let conn_pool = Arc::new(WorkerPool::new(
            "faircap-conn",
            conn_workers,
            inner.config.connection_queue,
        ));

        let accept_inner = Arc::clone(&inner);
        let accept_pool = Arc::clone(&conn_pool);
        let accept_handle = std::thread::Builder::new()
            .name("faircap-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    // Shed inline when the handler queue is saturated, so
                    // the peer sees backpressure rather than a hang. (The
                    // check races with the workers, but only toward being
                    // conservative one connection early/late.)
                    if accept_pool.queue_depth() >= accept_pool.queue_cap() {
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                        let _ =
                            Response::error(503, "connection queue is full").write_to(&mut stream);
                        continue;
                    }
                    let job_inner = Arc::clone(&accept_inner);
                    if accept_pool
                        .try_submit(move || handle_connection(&job_inner, stream))
                        .is_err()
                    {
                        // Raced to full / shutting down; the stream was
                        // consumed by the closure and is simply dropped —
                        // the peer observes a closed connection.
                    }
                }
            })
            .expect("spawning accept thread");

        Ok(Server {
            inner,
            addr,
            conn_pool,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server fronts.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.inner.registry
    }

    /// A [`ServeClient`] bound to this server.
    pub fn client(&self) -> ServeClient {
        ServeClient::new(self.addr)
    }

    /// Whether a graceful shutdown has been requested (via
    /// [`request_shutdown`](Self::request_shutdown) or `POST /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_flag.lock().expect("shutdown flag lock")
    }

    /// Ask the server to shut down; unblocks
    /// [`wait_for_shutdown_request`](Self::wait_for_shutdown_request).
    pub fn request_shutdown(&self) {
        request_shutdown(&self.inner);
    }

    /// Block until someone requests a shutdown, then return (the caller —
    /// typically the CLI — performs the actual [`shutdown`](Self::shutdown)).
    pub fn wait_for_shutdown_request(&self) {
        let mut flag = self.inner.shutdown_flag.lock().expect("shutdown flag lock");
        while !*flag {
            flag = self.inner.shutdown_cv.wait(flag).expect("shutdown cv wait");
        }
    }

    /// Graceful shutdown: stop accepting, serve every connection already
    /// accepted, drain every admitted solve, and join all workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.inner.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self
            .accept_handle
            .lock()
            .expect("accept handle lock")
            .take()
        {
            let _ = handle.join();
        }
        // Connection workers first (they submit to and wait on the solve
        // pool, which must still be alive), then the solve pool.
        self.conn_pool.shutdown();
        self.inner.solve_pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn request_shutdown(inner: &Inner) {
    let mut flag = inner.shutdown_flag.lock().expect("shutdown flag lock");
    *flag = true;
    inner.shutdown_cv.notify_all();
}

fn handle_connection(inner: &Inner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream);
    let response = match http::read_request(&mut reader) {
        Ok(request) => {
            ServerMetrics::bump(&inner.metrics.http_requests);
            route(inner, &request)
        }
        Err(ParseError::Eof) => return, // health-probe connect-and-close
        Err(e @ ParseError::BodyTooLarge(_)) => {
            ServerMetrics::bump(&inner.metrics.http_errors);
            Response::error(413, e.to_string())
        }
        Err(e) => {
            ServerMetrics::bump(&inner.metrics.http_errors);
            Response::error(400, e.to_string())
        }
    };
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
}

fn route(inner: &Inner, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "uptime_ms".into(),
                    Json::Num(inner.started.elapsed().as_secs_f64() * 1e3),
                ),
            ]),
        ),
        ("GET", "/v1/sessions") => sessions_response(inner),
        ("GET", "/v1/metrics") => metrics_response(inner),
        ("POST", "/v1/solve") => solve_response(inner, request),
        ("POST", "/v1/snapshot") => snapshot_response(inner, request),
        ("POST", "/v1/shutdown") => {
            request_shutdown(inner);
            Response::json(200, &Json::Obj(vec![("draining".into(), Json::Bool(true))]))
        }
        (_, "/v1/solve" | "/v1/snapshot" | "/v1/shutdown" | "/v1/sessions" | "/v1/metrics") => {
            Response::error(405, format!("method {} not allowed here", request.method))
        }
        (_, path) => Response::error(404, format!("no such endpoint `{path}`")),
    }
}

/// Resolve the target session: the body's `session` field, or the sole
/// registered session when the field is absent.
fn resolve_session(inner: &Inner, body: &Json) -> Result<Arc<RegisteredSession>, Response> {
    match body.get("session") {
        Some(Json::Str(name)) => inner.registry.get(name).ok_or_else(|| {
            Response::error(
                404,
                format!(
                    "no session `{name}` (registered: {})",
                    inner.registry.names().join(", ")
                ),
            )
        }),
        Some(_) => Err(Response::error(400, "`session` must be a string")),
        None => inner.registry.single().ok_or_else(|| {
            Response::error(
                400,
                format!(
                    "{} sessions registered; specify `session` (one of: {})",
                    inner.registry.len(),
                    inner.registry.names().join(", ")
                ),
            )
        }),
    }
}

fn solve_response(inner: &Inner, request: &Request) -> Response {
    let body_text = match request.body_utf8() {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => "{}",
        Err(e) => return Response::error(400, e.to_string()),
    };
    let body = match Json::parse(body_text) {
        Ok(body) => body,
        Err(e) => return Response::error(400, format!("invalid JSON body: {e}")),
    };
    let entry = match resolve_session(inner, &body) {
        Ok(entry) => entry,
        Err(response) => return response,
    };
    let solve_request = match solve_request_from_json(&body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e.to_string()),
    };

    // Admission control: hand the solve to the bounded solve pool and wait
    // (with the per-request timeout) for its verdict.
    let started = Instant::now();
    let (tx, rx) = mpsc::sync_channel(1);
    let job_entry = Arc::clone(&entry);
    let submitted = inner.solve_pool.try_submit(move || {
        let result = job_entry.solve(&solve_request);
        let _ = tx.send(result); // receiver may have timed out; fine
    });
    match submitted {
        Err(SubmitError::QueueFull) => {
            ServerMetrics::bump(&inner.metrics.rejected_queue_full);
            return Response::error(
                429,
                format!(
                    "solve queue is full ({} queued, {} in flight); retry shortly",
                    inner.solve_pool.queue_depth(),
                    inner.solve_pool.in_flight()
                ),
            )
            .with_header("retry-after", "1");
        }
        Err(SubmitError::ShuttingDown) => {
            ServerMetrics::bump(&inner.metrics.rejected_shutdown);
            return Response::error(503, "server is draining for shutdown");
        }
        Ok(()) => {}
    }

    match rx.recv_timeout(inner.config.solve_timeout) {
        Ok(Ok(report)) => {
            ServerMetrics::bump(&inner.metrics.solves_ok);
            inner.metrics.solve_latency.record(started.elapsed());
            let mut doc = vec![("session".to_owned(), Json::Str(entry.name().to_owned()))];
            match solution_report_to_json(&report) {
                Json::Obj(fields) => doc.extend(fields),
                other => doc.push(("report".to_owned(), other)),
            }
            Response::json(200, &Json::Obj(doc))
        }
        Ok(Err(e)) => {
            ServerMetrics::bump(&inner.metrics.solves_err);
            let status = match e {
                Error::InvalidRequest(_) => 422,
                _ => 500,
            };
            Response::error(status, e.to_string())
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            ServerMetrics::bump(&inner.metrics.timeouts);
            Response::error(
                504,
                format!(
                    "solve exceeded the {:?} request timeout; it keeps running and will warm the caches",
                    inner.config.solve_timeout
                ),
            )
        }
        // The sender dropped without sending: the solve job panicked (the
        // pool contains the panic and survives). This is a crash, not a
        // timeout — report it as one.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            ServerMetrics::bump(&inner.metrics.solves_err);
            Response::error(500, "solve crashed on its worker; see server logs")
        }
    }
}

fn snapshot_response(inner: &Inner, request: &Request) -> Response {
    let Some(dir) = &inner.config.snapshot_dir else {
        return Response::error(
            400,
            "no snapshot directory configured (start the server with --snapshot-dir)",
        );
    };
    let body_text = match request.body_utf8() {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => "{}",
        Err(e) => return Response::error(400, e.to_string()),
    };
    let body = match Json::parse(body_text) {
        Ok(body) => body,
        Err(e) => return Response::error(400, format!("invalid JSON body: {e}")),
    };
    let entries = match body.get("session") {
        Some(Json::Str(name)) => match inner.registry.get(name) {
            Some(entry) => vec![entry],
            None => return Response::error(404, format!("no session `{name}`")),
        },
        Some(_) => return Response::error(400, "`session` must be a string"),
        None => inner.registry.entries(),
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Response::error(500, format!("creating {}: {e}", dir.display()));
    }
    let mut written = Vec::new();
    for entry in entries {
        let path = dir.join(format!("{}.fc", entry.name()));
        let encoded = entry.session().snapshot().encode();
        if let Err(e) = std::fs::write(&path, &encoded) {
            return Response::error(500, format!("writing {}: {e}", path.display()));
        }
        written.push(Json::Obj(vec![
            ("session".into(), Json::Str(entry.name().to_owned())),
            ("path".into(), Json::Str(path.display().to_string())),
            ("bytes".into(), Json::Num(encoded.len() as f64)),
        ]));
    }
    Response::json(
        200,
        &Json::Obj(vec![("snapshots".into(), Json::Arr(written))]),
    )
}

fn cache_stats_json(hits: u64, misses: u64, entries: usize, evictions: u64) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Num(hits as f64)),
        ("misses".into(), Json::Num(misses as f64)),
        ("entries".into(), Json::Num(entries as f64)),
        ("evictions".into(), Json::Num(evictions as f64)),
    ])
}

fn session_json(entry: &RegisteredSession) -> Json {
    let session = entry.session();
    let stats = session.cache_stats();
    let grouping = session.grouping_cache_stats();
    let by_estimator: Vec<(String, Json)> = session
        .cache_stats_by_estimator()
        .into_iter()
        .map(|(name, s)| {
            (
                name,
                cache_stats_json(s.hits, s.misses, s.entries, s.evictions),
            )
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(entry.name().to_owned())),
        ("rows".into(), Json::Num(session.df().n_rows() as f64)),
        ("outcome".into(), Json::Str(session.outcome().to_owned())),
        ("solves_ok".into(), Json::Num(entry.solves_ok() as f64)),
        ("solves_err".into(), Json::Num(entry.solves_err() as f64)),
        (
            "estimate_cache".into(),
            cache_stats_json(stats.hits, stats.misses, stats.entries, stats.evictions),
        ),
        (
            "estimate_cache_by_estimator".into(),
            Json::Obj(by_estimator),
        ),
        (
            "grouping_cache".into(),
            cache_stats_json(
                grouping.hits,
                grouping.misses,
                grouping.entries,
                grouping.evictions,
            ),
        ),
        (
            "exec".into(),
            entry
                .last_exec()
                .map(|e| faircap_core::wire::exec_stats_to_json(&e))
                .unwrap_or(Json::Null),
        ),
    ])
}

fn sessions_response(inner: &Inner) -> Response {
    let sessions: Vec<Json> = inner
        .registry
        .entries()
        .iter()
        .map(|e| session_json(e))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![("sessions".into(), Json::Arr(sessions))]),
    )
}

fn metrics_response(inner: &Inner) -> Response {
    let m = &inner.metrics;
    let latency = match m.solve_latency.summary_ms() {
        Some((p50, p90, p99, max)) => Json::Obj(vec![
            ("count".into(), Json::Num(m.solve_latency.count() as f64)),
            ("p50_ms".into(), Json::Num(p50)),
            ("p90_ms".into(), Json::Num(p90)),
            ("p99_ms".into(), Json::Num(p99)),
            ("max_ms".into(), Json::Num(max)),
        ]),
        None => Json::Null,
    };
    let admission = Json::Obj(vec![
        (
            "max_concurrent_solves".into(),
            Json::Num(inner.solve_pool.workers() as f64),
        ),
        (
            "solve_queue_limit".into(),
            Json::Num(inner.solve_pool.queue_cap() as f64),
        ),
        (
            "queue_depth".into(),
            Json::Num(inner.solve_pool.queue_depth() as f64),
        ),
        (
            "max_queue_depth".into(),
            Json::Num(inner.solve_pool.max_queue_depth() as f64),
        ),
        (
            "in_flight".into(),
            Json::Num(inner.solve_pool.in_flight() as f64),
        ),
        (
            "solve_timeout_ms".into(),
            Json::Num(inner.config.solve_timeout.as_secs_f64() * 1e3),
        ),
    ]);
    let requests = Json::Obj(vec![
        (
            "http_requests".into(),
            Json::Num(ServerMetrics::read(&m.http_requests) as f64),
        ),
        (
            "http_errors".into(),
            Json::Num(ServerMetrics::read(&m.http_errors) as f64),
        ),
        (
            "solves_ok".into(),
            Json::Num(ServerMetrics::read(&m.solves_ok) as f64),
        ),
        (
            "solves_err".into(),
            Json::Num(ServerMetrics::read(&m.solves_err) as f64),
        ),
        (
            "rejected_429".into(),
            Json::Num(ServerMetrics::read(&m.rejected_queue_full) as f64),
        ),
        (
            "rejected_503".into(),
            Json::Num(ServerMetrics::read(&m.rejected_shutdown) as f64),
        ),
        (
            "timeouts_504".into(),
            Json::Num(ServerMetrics::read(&m.timeouts) as f64),
        ),
    ]);
    let sessions: Vec<(String, Json)> = inner
        .registry
        .entries()
        .iter()
        .map(|e| (e.name().to_owned(), session_json(e)))
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![
            (
                "uptime_ms".into(),
                Json::Num(inner.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("requests".into(), requests),
            ("admission".into(), admission),
            ("solve_latency".into(), latency),
            ("sessions".into(), Json::Obj(sessions)),
        ]),
    )
}
