//! [`ServeClient`] — the in-process test/bench harness for a running
//! server.
//!
//! A thin blocking HTTP/1.1 client over `std::net::TcpStream`, matching the
//! server's one-request-per-connection model: every call opens a fresh
//! connection, writes one request, reads one response, and closes. Used by
//! the admission-control integration tests, the CI smoke driver
//! (`serve_smoke`), and the `serve_bench` latency bench.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed client-side response: status code and body text.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON in this API).
    pub body: String,
}

/// Blocking HTTP client bound to one server address.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl ServeClient {
    /// A client for `addr` with a 120 s per-request timeout.
    pub fn new(addr: SocketAddr) -> Self {
        ServeClient {
            addr,
            timeout: Duration::from_secs(120),
        }
    }

    /// Override the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `GET` a path.
    pub fn get(&self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST` a JSON body to a path.
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// Issue one request on a fresh connection.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        // Skip headers; the server always closes, so the body is
        // read-to-end (content-length is honoured implicitly).
        loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line)?;
            if n == 0 || line == "\r\n" || line == "\n" {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body)?;
        Ok(ClientResponse { status, body })
    }

    /// Poll `GET /healthz` until the server answers 200 or the deadline
    /// passes — boot synchronization for tests and the CI smoke driver.
    pub fn wait_ready(&self, deadline: Duration) -> std::io::Result<()> {
        let started = Instant::now();
        loop {
            match self.get("/healthz") {
                Ok(r) if r.status == 200 => return Ok(()),
                _ if started.elapsed() > deadline => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("server at {} not ready within {deadline:?}", self.addr),
                    ));
                }
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}
