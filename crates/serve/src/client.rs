//! [`ServeClient`] / [`ClientConnection`] — the in-process test/bench
//! harness for a running server.
//!
//! Thin blocking HTTP/1.1 clients over `std::net::TcpStream`:
//!
//! * [`ServeClient`] issues one request per fresh connection (sends
//!   `connection: close`) — the simplest correct thing for tests that
//!   exercise admission control;
//! * [`ClientConnection`] holds one **keep-alive** connection, framing
//!   responses by `content-length`, and can write several pipelined
//!   requests before reading any response — used by the keep-alive
//!   conformance tests and the `serve_bench` keep-alive/coalescing loops.
//!
//! Used by the admission-control integration tests, the CI smoke driver
//! (`serve_smoke`), and the `serve_bench` latency bench.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed client-side response: status code, headers, and body text.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers as `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body (JSON in this API).
    pub body: String,
}

impl ClientResponse {
    /// The first header with the given name (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking HTTP client bound to one server address.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl ServeClient {
    /// A client for `addr` with a 120 s per-request timeout.
    pub fn new(addr: SocketAddr) -> Self {
        ServeClient {
            addr,
            timeout: Duration::from_secs(120),
        }
    }

    /// Override the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `GET` a path.
    pub fn get(&self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST` a JSON body to a path.
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// Issue one request on a fresh connection.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        // Collect headers; the server always closes, so the body is
        // read-to-end (content-length is honoured implicitly).
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line)?;
            if n == 0 || line == "\r\n" || line == "\n" {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Open a persistent keep-alive connection to the server.
    pub fn connect(&self) -> std::io::Result<ClientConnection> {
        ClientConnection::connect(self.addr, self.timeout)
    }

    /// Poll `GET /healthz` until the server answers 200 or the deadline
    /// passes — boot synchronization for tests and the CI smoke driver.
    pub fn wait_ready(&self, deadline: Duration) -> std::io::Result<()> {
        let started = Instant::now();
        loop {
            match self.get("/healthz") {
                Ok(r) if r.status == 200 => return Ok(()),
                _ if started.elapsed() > deadline => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("server at {} not ready within {deadline:?}", self.addr),
                    ));
                }
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

/// One persistent HTTP/1.1 keep-alive connection. Requests sent through
/// it omit `connection: close`; responses are framed by `content-length`,
/// so the connection stays usable for the next exchange. Supports
/// pipelining: write N requests with [`send`](Self::send), then collect N
/// responses in order with [`read_response`](Self::read_response).
pub struct ClientConnection {
    reader: BufReader<TcpStream>,
}

impl ClientConnection {
    /// Connect with the given per-operation socket timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<ClientConnection> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(ClientConnection {
            reader: BufReader::new(stream),
        })
    }

    /// Write one request without reading its response (pipelining).
    /// `close` asks the server to close after answering this request.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        close: bool,
    ) -> std::io::Result<()> {
        let body = body.unwrap_or("");
        let connection = if close { "connection: close\r\n" } else { "" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: faircap\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{connection}\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }

    /// Read the next response off the connection, framed by its
    /// `content-length` header (the connection stays open unless the
    /// server said `connection: close`).
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a status line",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        let mut content_length: Option<usize> = None;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 || line == "\r\n" || line == "\n" {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse().ok();
                }
                headers.push((name, value));
            }
        }
        let len = content_length.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response without content-length cannot be framed on a keep-alive connection",
            )
        })?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("non-UTF-8 body: {e}"),
            )
        })?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// One full request/response exchange, keeping the connection alive.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.send(method, path, body, false)?;
        self.read_response()
    }

    /// Pipeline: write every `(method, path, body)` request back to back,
    /// then read the responses in order.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, Option<&str>)],
    ) -> std::io::Result<Vec<ClientResponse>> {
        for (method, path, body) in requests {
            self.send(method, path, *body, false)?;
        }
        requests.iter().map(|_| self.read_response()).collect()
    }
}
