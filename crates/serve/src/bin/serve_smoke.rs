//! CI smoke driver for a running `faircap serve` instance.
//!
//! ```sh
//! faircap serve --data … --addr 127.0.0.1:7341 &
//! serve_smoke 127.0.0.1:7341
//! ```
//!
//! Exercises the serving acceptance criteria end to end and exits non-zero
//! on any violation:
//!
//! 1. waits for `/healthz` (boot synchronization, up to 120 s);
//! 2. runs one warm-up solve and a second request on the same keep-alive
//!    connection (persistent-connection conformance);
//! 3. fires 8 concurrent `POST /v1/solve` requests — every response must be
//!    `200` with a **non-empty** ruleset, and all rulesets must be
//!    identical (one shared warm session serves all of them; identical
//!    in-flight requests may coalesce into one underlying solve);
//! 4. `GET /v1/metrics` must be `200` and report **nonzero estimate-cache
//!    hits**, ≥8 delivered solves, and the `coalesce_hits` counter;
//! 5. a solve with `"trace": true` must return an embedded span tree
//!    covering the full pipeline (queue wait, Step 1/2/3, an estimate
//!    span), echo `X-Faircap-Trace-Id`, and land in `GET /v1/trace`;
//! 6. `GET /metrics` must parse as valid Prometheus exposition, pass the
//!    `faircap_` naming gate, and its solve-latency p99 must agree with
//!    `/v1/metrics` within one log-bucket's relative error;
//! 7. `POST /v1/shutdown` asks the server to drain so the CI job's
//!    background process exits cleanly.

use faircap_core::Json;
use faircap_serve::ServeClient;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const CONCURRENCY: usize = 8;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn rules_of(body: &str) -> Vec<String> {
    let doc = Json::parse(body).unwrap_or_else(|e| fail(format_args!("bad solve JSON: {e}")));
    let Some(rules) = doc.get("rules").and_then(Json::as_arr) else {
        fail("solve response has no `rules` array");
    };
    rules
        .iter()
        .map(|r| {
            r.get("rule")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail("rule without `rule` string"))
                .to_owned()
        })
        .collect()
}

/// Nearest-rank quantile over a family's Prometheus `_bucket` lines:
/// cumulative `le` buckets, rank `ceil(q·count)`, value = the first
/// bucket bound whose cumulative count reaches the rank.
fn prom_bucket_quantile(text: &str, family: &str, q: f64) -> Option<f64> {
    let prefix = format!("{family}_bucket{{");
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else {
            continue;
        };
        let le = rest
            .split("le=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())?;
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().ok()?
        };
        let count: u64 = rest.rsplit(' ').next()?.trim().parse().ok()?;
        buckets.push((bound, count));
    }
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite-or-inf bounds"));
    let total = buckets.last()?.1;
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    buckets
        .iter()
        .find(|(_, cum)| *cum >= rank)
        .map(|(bound, _)| *bound)
}

fn main() {
    let addr: SocketAddr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7341".into())
        .parse()
        .unwrap_or_else(|e| fail(format_args!("bad address: {e}")));
    let client = ServeClient::new(addr).with_timeout(Duration::from_secs(300));

    client
        .wait_ready(Duration::from_secs(120))
        .unwrap_or_else(|e| fail(e));
    println!("serve_smoke: server at {addr} is ready");

    let request = r#"{"max_rules": 5}"#;
    // Sequential warm-up on a keep-alive connection: pays the cold-cache
    // cost once so the concurrent batch below measures the cache-hit
    // steady state even when coalescing folds it into one solve, and
    // exercises the persistent-connection path end to end.
    let mut conn = client
        .connect()
        .unwrap_or_else(|e| fail(format_args!("keep-alive connect failed: {e}")));
    let warm = conn
        .request("POST", "/v1/solve", Some(request))
        .unwrap_or_else(|e| fail(format_args!("warm-up solve failed: {e}")));
    if warm.status != 200 {
        fail(format_args!(
            "warm-up solve returned {}: {}",
            warm.status, warm.body
        ));
    }
    let health = conn
        .request("GET", "/healthz", None)
        .unwrap_or_else(|e| fail(format_args!("keep-alive reuse failed: {e}")));
    if health.status != 200 {
        fail(format_args!(
            "keep-alive health check returned {}",
            health.status
        ));
    }
    drop(conn);
    println!("serve_smoke: warm-up solve + keep-alive reuse OK");
    let rulesets: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONCURRENCY)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    let response = client
                        .post_json("/v1/solve", request)
                        .unwrap_or_else(|e| fail(format_args!("solve request failed: {e}")));
                    if response.status != 200 {
                        fail(format_args!(
                            "solve returned {}: {}",
                            response.status, response.body
                        ));
                    }
                    rules_of(&response.body)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("smoke solver thread"))
            .collect()
    });
    for (i, rules) in rulesets.iter().enumerate() {
        if rules.is_empty() {
            fail(format_args!("solve {i} returned an empty ruleset"));
        }
        if rules != &rulesets[0] {
            fail(format_args!(
                "solve {i} ruleset diverged from solve 0:\n{rules:?}\nvs\n{:?}",
                rulesets[0]
            ));
        }
    }
    println!(
        "serve_smoke: {CONCURRENCY} concurrent solves OK, {} identical rules each",
        rulesets[0].len()
    );

    let metrics = client
        .get("/v1/metrics")
        .unwrap_or_else(|e| fail(format_args!("metrics request failed: {e}")));
    if metrics.status != 200 {
        fail(format_args!("metrics returned {}", metrics.status));
    }
    let doc =
        Json::parse(&metrics.body).unwrap_or_else(|e| fail(format_args!("bad metrics JSON: {e}")));
    let solves_ok = doc
        .get("requests")
        .and_then(|r| r.get("solves_ok"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail("metrics without requests.solves_ok"));
    if (solves_ok as usize) < CONCURRENCY {
        fail(format_args!(
            "expected ≥{CONCURRENCY} solves_ok, got {solves_ok}"
        ));
    }
    let Some(Json::Obj(sessions)) = doc.get("sessions") else {
        fail("metrics without sessions object");
    };
    let hits: f64 = sessions
        .iter()
        .filter_map(|(_, s)| {
            s.get("estimate_cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_f64)
        })
        .sum();
    if hits <= 0.0 {
        fail("metrics report zero estimate-cache hits after 8 solves");
    }
    // The new serving stack must report its coalescing counter; with 8
    // identical concurrent solves against a warm session, folding is
    // expected but not guaranteed (timing), so only the field's presence
    // is asserted.
    let coalesce_hits = doc
        .get("requests")
        .and_then(|r| r.get("coalesce_hits"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail("metrics without requests.coalesce_hits"));
    println!(
        "serve_smoke: metrics OK ({solves_ok} solves, {hits} cache hits, {coalesce_hits} coalesce hits)"
    );

    // Traced solve: the embedded span tree must cover the full pipeline
    // and the trace id must round-trip through the header and the ring.
    // The non-default estimator misses the intervention cache (its key
    // includes the estimator name), so Step 2 actually evaluates groups
    // and the estimate-layer spans appear even on a warm session.
    let t0 = Instant::now();
    let traced = client
        .post_json(
            "/v1/solve",
            r#"{"max_rules": 5, "estimator": "ipw", "trace": true}"#,
        )
        .unwrap_or_else(|e| fail(format_args!("traced solve failed: {e}")));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if traced.status != 200 {
        fail(format_args!(
            "traced solve returned {}: {}",
            traced.status, traced.body
        ));
    }
    let Some(header_id) = traced.header("x-faircap-trace-id").map(str::to_owned) else {
        fail("traced solve response has no x-faircap-trace-id header");
    };
    let doc =
        Json::parse(&traced.body).unwrap_or_else(|e| fail(format_args!("bad traced JSON: {e}")));
    let Some(trace) = doc.get("trace") else {
        fail("traced solve response has no `trace` field");
    };
    let body_id = trace
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("trace without trace_id"));
    if body_id != header_id {
        fail(format_args!(
            "trace_id mismatch: body {body_id} vs header {header_id}"
        ));
    }
    let duration_ms = trace
        .get("duration_ms")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail("trace without duration_ms"));
    if duration_ms <= 0.0 || duration_ms > wall_ms {
        fail(format_args!(
            "trace root duration {duration_ms:.3} ms outside (0, wall {wall_ms:.3} ms]"
        ));
    }
    let Some(spans) = trace.get("spans").and_then(Json::as_arr) else {
        fail("trace without spans array");
    };
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for required in [
        "request",
        "queue_wait",
        "solve",
        "respond",
        "step1_grouping",
        "step2_interventions",
        "step3_greedy",
    ] {
        if !names.contains(&required) {
            fail(format_args!(
                "trace missing span `{required}` (got {names:?})"
            ));
        }
    }
    if !names.iter().any(|n| n.starts_with("estimate")) {
        fail(format_args!("trace has no estimate span (got {names:?})"));
    }
    println!(
        "serve_smoke: traced solve OK ({} spans, root {duration_ms:.2} ms, id {header_id})",
        spans.len()
    );

    let ring = client
        .get("/v1/trace")
        .unwrap_or_else(|e| fail(format_args!("trace-ring request failed: {e}")));
    if ring.status != 200 {
        fail(format_args!("/v1/trace returned {}", ring.status));
    }
    let ring_doc =
        Json::parse(&ring.body).unwrap_or_else(|e| fail(format_args!("bad /v1/trace JSON: {e}")));
    let Some(traces) = ring_doc.get("traces").and_then(Json::as_arr) else {
        fail("/v1/trace without traces array");
    };
    if !traces
        .iter()
        .any(|t| t.get("trace_id").and_then(Json::as_str) == Some(header_id.as_str()))
    {
        fail(format_args!(
            "/v1/trace does not contain the traced solve {header_id}"
        ));
    }
    println!("serve_smoke: /v1/trace contains the traced solve");

    // Prometheus exposition: structurally valid, naming-gated, and its
    // solve-latency p99 agrees with /v1/metrics (same histogram, scraped
    // back to back with no solves in between).
    let json_metrics = client
        .get("/v1/metrics")
        .unwrap_or_else(|e| fail(format_args!("metrics re-read failed: {e}")));
    let prom = client
        .get("/metrics")
        .unwrap_or_else(|e| fail(format_args!("prometheus request failed: {e}")));
    if prom.status != 200 {
        fail(format_args!("/metrics returned {}", prom.status));
    }
    if let Err(e) = faircap_obs::validate_exposition(&prom.body) {
        fail(format_args!("invalid Prometheus exposition: {e}"));
    }
    if let Err(bad) = faircap_obs::validate_naming(&prom.body, "faircap_") {
        fail(format_args!("metric names outside faircap_*: {bad:?}"));
    }
    let json_doc = Json::parse(&json_metrics.body)
        .unwrap_or_else(|e| fail(format_args!("bad metrics JSON: {e}")));
    let json_p99_ms = json_doc
        .get("solve_latency")
        .and_then(|l| l.get("p99_ms"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail("metrics without solve_latency.p99_ms"));
    let prom_p99_ms = prom_bucket_quantile(&prom.body, "faircap_serve_solve_latency_us", 0.99)
        .unwrap_or_else(|| fail("no faircap_serve_solve_latency_us buckets"))
        / 1e3;
    // The JSON p99 clamps its bucket bound to the exact max; the bucket
    // quantile cannot, so it may exceed the JSON value by at most one
    // bucket's relative width.
    let ceiling = json_p99_ms * (1.0 + faircap_obs::RELATIVE_ERROR_BOUND) + 1e-3;
    if prom_p99_ms + 1e-9 < json_p99_ms || prom_p99_ms > ceiling {
        fail(format_args!(
            "solve-latency p99 disagrees: /metrics {prom_p99_ms:.3} ms vs /v1/metrics \
             {json_p99_ms:.3} ms (ceiling {ceiling:.3} ms)"
        ));
    }
    println!(
        "serve_smoke: /metrics OK (exposition valid, p99 {prom_p99_ms:.2} ms vs JSON {json_p99_ms:.2} ms)"
    );

    let shutdown = client
        .post_json("/v1/shutdown", "{}")
        .unwrap_or_else(|e| fail(format_args!("shutdown request failed: {e}")));
    if shutdown.status != 200 {
        fail(format_args!("shutdown returned {}", shutdown.status));
    }
    println!("serve_smoke: PASS");
}
