//! CI smoke driver for a running `faircap serve` instance.
//!
//! ```sh
//! faircap serve --data … --addr 127.0.0.1:7341 &
//! serve_smoke 127.0.0.1:7341
//! ```
//!
//! Exercises the serving acceptance criteria end to end and exits non-zero
//! on any violation:
//!
//! 1. waits for `/healthz` (boot synchronization, up to 120 s);
//! 2. runs one warm-up solve and a second request on the same keep-alive
//!    connection (persistent-connection conformance);
//! 3. fires 8 concurrent `POST /v1/solve` requests — every response must be
//!    `200` with a **non-empty** ruleset, and all rulesets must be
//!    identical (one shared warm session serves all of them; identical
//!    in-flight requests may coalesce into one underlying solve);
//! 4. `GET /v1/metrics` must be `200` and report **nonzero estimate-cache
//!    hits**, ≥8 delivered solves, and the `coalesce_hits` counter;
//! 5. `POST /v1/shutdown` asks the server to drain so the CI job's
//!    background process exits cleanly.

use faircap_core::Json;
use faircap_serve::ServeClient;
use std::net::SocketAddr;
use std::time::Duration;

const CONCURRENCY: usize = 8;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn rules_of(body: &str) -> Vec<String> {
    let doc = Json::parse(body).unwrap_or_else(|e| fail(format_args!("bad solve JSON: {e}")));
    let Some(rules) = doc.get("rules").and_then(Json::as_arr) else {
        fail("solve response has no `rules` array");
    };
    rules
        .iter()
        .map(|r| {
            r.get("rule")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail("rule without `rule` string"))
                .to_owned()
        })
        .collect()
}

fn main() {
    let addr: SocketAddr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7341".into())
        .parse()
        .unwrap_or_else(|e| fail(format_args!("bad address: {e}")));
    let client = ServeClient::new(addr).with_timeout(Duration::from_secs(300));

    client
        .wait_ready(Duration::from_secs(120))
        .unwrap_or_else(|e| fail(e));
    println!("serve_smoke: server at {addr} is ready");

    let request = r#"{"max_rules": 5}"#;
    // Sequential warm-up on a keep-alive connection: pays the cold-cache
    // cost once so the concurrent batch below measures the cache-hit
    // steady state even when coalescing folds it into one solve, and
    // exercises the persistent-connection path end to end.
    let mut conn = client
        .connect()
        .unwrap_or_else(|e| fail(format_args!("keep-alive connect failed: {e}")));
    let warm = conn
        .request("POST", "/v1/solve", Some(request))
        .unwrap_or_else(|e| fail(format_args!("warm-up solve failed: {e}")));
    if warm.status != 200 {
        fail(format_args!(
            "warm-up solve returned {}: {}",
            warm.status, warm.body
        ));
    }
    let health = conn
        .request("GET", "/healthz", None)
        .unwrap_or_else(|e| fail(format_args!("keep-alive reuse failed: {e}")));
    if health.status != 200 {
        fail(format_args!(
            "keep-alive health check returned {}",
            health.status
        ));
    }
    drop(conn);
    println!("serve_smoke: warm-up solve + keep-alive reuse OK");
    let rulesets: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONCURRENCY)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    let response = client
                        .post_json("/v1/solve", request)
                        .unwrap_or_else(|e| fail(format_args!("solve request failed: {e}")));
                    if response.status != 200 {
                        fail(format_args!(
                            "solve returned {}: {}",
                            response.status, response.body
                        ));
                    }
                    rules_of(&response.body)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("smoke solver thread"))
            .collect()
    });
    for (i, rules) in rulesets.iter().enumerate() {
        if rules.is_empty() {
            fail(format_args!("solve {i} returned an empty ruleset"));
        }
        if rules != &rulesets[0] {
            fail(format_args!(
                "solve {i} ruleset diverged from solve 0:\n{rules:?}\nvs\n{:?}",
                rulesets[0]
            ));
        }
    }
    println!(
        "serve_smoke: {CONCURRENCY} concurrent solves OK, {} identical rules each",
        rulesets[0].len()
    );

    let metrics = client
        .get("/v1/metrics")
        .unwrap_or_else(|e| fail(format_args!("metrics request failed: {e}")));
    if metrics.status != 200 {
        fail(format_args!("metrics returned {}", metrics.status));
    }
    let doc =
        Json::parse(&metrics.body).unwrap_or_else(|e| fail(format_args!("bad metrics JSON: {e}")));
    let solves_ok = doc
        .get("requests")
        .and_then(|r| r.get("solves_ok"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail("metrics without requests.solves_ok"));
    if (solves_ok as usize) < CONCURRENCY {
        fail(format_args!(
            "expected ≥{CONCURRENCY} solves_ok, got {solves_ok}"
        ));
    }
    let Some(Json::Obj(sessions)) = doc.get("sessions") else {
        fail("metrics without sessions object");
    };
    let hits: f64 = sessions
        .iter()
        .filter_map(|(_, s)| {
            s.get("estimate_cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_f64)
        })
        .sum();
    if hits <= 0.0 {
        fail("metrics report zero estimate-cache hits after 8 solves");
    }
    // The new serving stack must report its coalescing counter; with 8
    // identical concurrent solves against a warm session, folding is
    // expected but not guaranteed (timing), so only the field's presence
    // is asserted.
    let coalesce_hits = doc
        .get("requests")
        .and_then(|r| r.get("coalesce_hits"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail("metrics without requests.coalesce_hits"));
    println!(
        "serve_smoke: metrics OK ({solves_ok} solves, {hits} cache hits, {coalesce_hits} coalesce hits)"
    );

    let shutdown = client
        .post_json("/v1/shutdown", "{}")
        .unwrap_or_else(|e| fail(format_args!("shutdown request failed: {e}")));
    if shutdown.status != 200 {
        fail(format_args!("shutdown returned {}", shutdown.status));
    }
    println!("serve_smoke: PASS");
}
