//! In-flight solve coalescing: identical concurrent solve requests share
//! one underlying solve, and the single report fans out to every waiter.
//!
//! ## Key derivation
//!
//! Two requests coalesce when they target the same registered session
//! **and** their [`SolveRequest`]s render to the same strict canonical
//! JSON ([`faircap_core::wire::solve_request_to_canonical_json`]): every
//! field explicit, fixed key order, `f64`s in the bit-exact round-trip
//! encoding. The rendered string is FNV-64 hashed — cheap, and a collision
//! would require two *different* canonical renderings with equal hashes
//! targeting the same session inside the same in-flight window, at which
//! point the loser merely receives the winner's (valid, deterministically
//! produced) report for a request it did not send. Requests that override
//! the estimator with an in-process trait object have no canonical
//! rendering and are never coalesced.
//!
//! ## Cache-consistency argument
//!
//! Coalescing is sound because solves are deterministic given (session
//! state, request): the greedy selection is seeded, the CATE caches are
//! keyed on estimator+pattern and only ever *add* entries, and the report
//! a solve produces is a pure function of its inputs. Attaching a waiter
//! to a running solve therefore yields byte-for-byte the response a fresh
//! solve would have produced — this is checked end to end by the
//! bit-identity integration test.
//!
//! ## Threading
//!
//! `attach`, `abort`, and the admission decision all run on the single
//! reactor thread, so a leader's queue-full `abort` can never race a
//! follower's `attach`. Only [`Coalescer::take`] is called from solve
//! workers, under the same short mutex.

use faircap_core::session::SolveRequest;
use faircap_core::wire;
use faircap_table::fnv::FnvHasher;
use std::collections::HashMap;
use std::sync::Mutex;

/// Identity of one in-flight solve: registered session name plus the
/// FNV-64 of the request's canonical JSON.
pub type Key = (String, u64);

/// Fingerprint a solve request against a session, or `None` when the
/// request is not canonically renderable (in-process estimator override).
pub fn fingerprint(session: &str, request: &SolveRequest) -> Option<Key> {
    if request.estimator.is_some() {
        return None;
    }
    let canonical = wire::solve_request_to_canonical_json(request).render();
    let mut hasher = FnvHasher::new();
    hasher.write_str_stable(&canonical);
    Some((session.to_string(), hasher.finish64()))
}

/// Outcome of [`Coalescer::attach`].
#[derive(Debug, PartialEq, Eq)]
pub enum Attach {
    /// No identical solve is running: the caller must submit one (and
    /// [`Coalescer::abort`] on submission failure).
    Leader,
    /// An identical solve is already in flight; this waiter was added to
    /// its fan-out list.
    Attached,
}

/// Registry of in-flight solves keyed by [`Key`], each holding the waiter
/// ids to fan the finished report out to.
#[derive(Default)]
pub struct Coalescer {
    inflight: Mutex<HashMap<Key, Vec<u64>>>,
}

impl Coalescer {
    /// An empty coalescer.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// Join `waiter` to the solve identified by `key`, becoming its leader
    /// if none is running.
    pub fn attach(&self, key: Key, waiter: u64) -> Attach {
        let mut inflight = self.inflight.lock().expect("coalescer lock");
        match inflight.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                entry.get_mut().push(waiter);
                Attach::Attached
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(vec![waiter]);
                Attach::Leader
            }
        }
    }

    /// Remove a key whose leader failed to submit the solve, returning the
    /// waiters collected so far (on the reactor thread this is always just
    /// the leader — no follower can attach between `attach` and `abort`).
    pub fn abort(&self, key: &Key) -> Vec<u64> {
        self.inflight
            .lock()
            .expect("coalescer lock")
            .remove(key)
            .unwrap_or_default()
    }

    /// Finish a solve: remove its key and return every waiter to fan the
    /// report out to. Later identical requests will start a fresh solve.
    pub fn take(&self, key: &Key) -> Vec<u64> {
        self.inflight
            .lock()
            .expect("coalescer lock")
            .remove(key)
            .unwrap_or_default()
    }

    /// Number of distinct solves currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("coalescer lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_then_attached_then_fan_out() {
        let coalescer = Coalescer::new();
        let key: Key = ("german".into(), 42);
        assert_eq!(coalescer.attach(key.clone(), 1), Attach::Leader);
        assert_eq!(coalescer.attach(key.clone(), 2), Attach::Attached);
        assert_eq!(coalescer.attach(key.clone(), 3), Attach::Attached);
        assert_eq!(coalescer.in_flight(), 1);
        assert_eq!(coalescer.take(&key), vec![1, 2, 3]);
        assert_eq!(coalescer.in_flight(), 0);
        // After take, the same key starts fresh.
        assert_eq!(coalescer.attach(key.clone(), 9), Attach::Leader);
        assert_eq!(coalescer.abort(&key), vec![9]);
        assert!(coalescer.take(&key).is_empty());
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let coalescer = Coalescer::new();
        assert_eq!(coalescer.attach(("a".into(), 1), 1), Attach::Leader);
        assert_eq!(coalescer.attach(("a".into(), 2), 2), Attach::Leader);
        assert_eq!(coalescer.attach(("b".into(), 1), 3), Attach::Leader);
        assert_eq!(coalescer.in_flight(), 3);
    }

    #[test]
    fn fingerprint_normalizes_equivalent_requests() {
        let a = SolveRequest::default().max_rules(5);
        let b = SolveRequest::default().max_rules(5);
        let c = SolveRequest::default().max_rules(6);
        let fa = fingerprint("s", &a).unwrap();
        let fb = fingerprint("s", &b).unwrap();
        let fc = fingerprint("s", &c).unwrap();
        assert_eq!(fa, fb, "identical requests share a fingerprint");
        assert_ne!(fa, fc, "different max_rules must not coalesce");
        assert_ne!(
            fingerprint("other", &a).unwrap(),
            fa,
            "session name is part of the key"
        );
    }

    #[test]
    fn estimator_override_is_never_fingerprinted() {
        // A trait-object estimator has no canonical wire rendering, so the
        // request must bypass coalescing entirely.
        let request = SolveRequest::default()
            .estimator(std::sync::Arc::new(faircap_causal::EstimatorKind::Linear));
        assert!(fingerprint("s", &request).is_none());
    }
}
