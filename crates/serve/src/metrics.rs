//! Live serving metrics: request/outcome counters and log-bucketed latency
//! histograms.
//!
//! Everything here is updated on the request path, so the accounting is
//! lock-free: plain atomics for counters, [`faircap_obs::Histogram`]s for
//! latencies. The `/v1/metrics` endpoint snapshots these together with the
//! solve pool's queue gauges and each session's cache counters; `/metrics`
//! exposes the same state in Prometheus text format.

use faircap_obs::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A latency histogram with percentile readout.
///
/// Backed by a fixed log-bucketed [`Histogram`] recording **microseconds**,
/// so every percentile is exact to within
/// [`faircap_obs::RELATIVE_ERROR_BOUND`] (3.125 %) over *all* samples ever
/// recorded — unlike the sampled ring it replaced, nothing is evicted and
/// the serve-layer and bench-layer quantiles share one semantics.
#[derive(Default)]
pub struct LatencyRecorder {
    hist: Histogram,
}

impl LatencyRecorder {
    /// Record one latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.hist.record(micros);
    }

    /// Total latencies ever recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Percentile summary in milliseconds: `(p50, p90, p99, max)`. `None`
    /// when nothing was recorded yet. Percentiles are nearest-rank over the
    /// histogram buckets (upper bucket bound, clamped to the exact max).
    pub fn summary_ms(&self) -> Option<(f64, f64, f64, f64)> {
        let snap = self.hist.snapshot();
        if snap.count == 0 {
            return None;
        }
        let pct = |q: f64| snap.quantile(q).unwrap_or(snap.max) as f64 / 1e3;
        Some((pct(0.50), pct(0.90), pct(0.99), snap.max as f64 / 1e3))
    }

    /// A point-in-time copy of the underlying histogram, in microseconds —
    /// the raw material for Prometheus `_bucket` exposition.
    pub fn snapshot_us(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }
}

/// Counter block of one server instance.
#[derive(Default)]
pub struct ServerMetrics {
    /// HTTP requests accepted and parsed (any endpoint).
    pub http_requests: AtomicU64,
    /// Requests that failed to parse as HTTP (answered 400 where possible).
    pub http_errors: AtomicU64,
    /// Solves that completed and returned a ruleset.
    pub solves_ok: AtomicU64,
    /// Solves that failed with a typed error.
    pub solves_err: AtomicU64,
    /// Solve requests shed because the bounded queue was full (429).
    pub rejected_queue_full: AtomicU64,
    /// Solve requests refused because the server was draining (503).
    pub rejected_shutdown: AtomicU64,
    /// Solves that exceeded the per-request timeout (504; the solve itself
    /// keeps running on its pool worker and still warms the caches).
    pub timeouts: AtomicU64,
    /// Requests answered by attaching to an already-in-flight identical
    /// solve instead of submitting a new one.
    pub coalesce_hits: AtomicU64,
    /// End-to-end latency of completed solves (admission → delivery).
    pub solve_latency: LatencyRecorder,
    /// Time admitted solves spent queued before a pool worker picked them
    /// up.
    pub queue_wait: LatencyRecorder,
    /// Per-request reactor dispatch latency: parse → routed response or
    /// admission, for every keep-alive request (quick endpoints included).
    pub request_latency: LatencyRecorder,
    /// Reactor read-side servicing per readable connection (drain + parse
    /// + dispatch + opportunistic flush).
    pub reactor_read: LatencyRecorder,
    /// Reactor write-side flushes (queued response bytes → socket).
    pub reactor_write: LatencyRecorder,
}

impl ServerMetrics {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Connection-level gauges maintained by the reactor and reported under
/// `connections` in `/v1/metrics`. Monotonic counters; currently-open
/// connections are `accepted - closed`.
#[derive(Default)]
pub struct ConnGauges {
    /// Connections accepted from the listener (including ones immediately
    /// rejected over capacity).
    pub accepted: AtomicU64,
    /// Connections fully closed by the reactor.
    pub closed: AtomicU64,
    /// Connections answered with an immediate 503 because the
    /// `max_connections` cap was reached.
    pub rejected_over_capacity: AtomicU64,
}

impl ConnGauges {
    /// Record an accepted connection.
    pub fn bump_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a closed connection.
    pub fn bump_closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an over-capacity rejection.
    pub fn bump_rejected_over_capacity(&self) {
        self.rejected_over_capacity.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open (accepted minus closed).
    pub fn open(&self) -> u64 {
        let accepted = self.accepted.load(Ordering::Relaxed);
        accepted.saturating_sub(self.closed.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_obs::RELATIVE_ERROR_BOUND;

    #[test]
    fn percentiles_over_known_samples() {
        let rec = LatencyRecorder::default();
        assert!(rec.summary_ms().is_none());
        for ms in 1..=100u64 {
            rec.record(Duration::from_millis(ms));
        }
        let (p50, p90, p99, max) = rec.summary_ms().unwrap();
        // Log-bucketed percentiles: ≥ the exact sample, within the bound.
        for (got, exact) in [(p50, 50.0), (p90, 90.0), (p99, 99.0)] {
            assert!(got >= exact, "{got} < exact {exact}");
            assert!(
                got <= exact * (1.0 + RELATIVE_ERROR_BOUND),
                "{got} exceeds the error bound over exact {exact}"
            );
        }
        assert_eq!(max, 100.0, "max is exact");
        assert_eq!(rec.count(), 100);
    }

    #[test]
    fn nothing_is_evicted() {
        let rec = LatencyRecorder::default();
        for _ in 0..10_000 {
            rec.record(Duration::from_millis(5));
        }
        rec.record(Duration::from_millis(500));
        assert_eq!(rec.count(), 10_001);
        let (p50, _, _, max) = rec.summary_ms().unwrap();
        assert!(p50 <= 5.0 * (1.0 + RELATIVE_ERROR_BOUND));
        assert_eq!(max, 500.0, "the one slow sample survives any volume");
        assert_eq!(rec.snapshot_us().count, 10_001);
    }
}
