//! Live serving metrics: request/outcome counters and a latency reservoir.
//!
//! Everything here is updated on the request path, so the accounting is
//! lock-light: plain atomics for counters, one short mutex for the latency
//! reservoir. The `/v1/metrics` endpoint snapshots these together with the
//! solve pool's queue gauges and each session's cache counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many latency samples the reservoir keeps. Once full, new samples
/// overwrite the oldest (a ring), so percentiles reflect recent traffic.
const LATENCY_CAP: usize = 4096;

/// A fixed-size ring of request latencies with percentile readout.
#[derive(Default)]
pub struct LatencyRecorder {
    samples: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    micros: Vec<u64>,
    next: usize,
    total: u64,
}

impl LatencyRecorder {
    /// Record one request latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut ring = self.samples.lock().expect("latency lock");
        ring.total += 1;
        if ring.micros.len() < LATENCY_CAP {
            ring.micros.push(micros);
        } else {
            let at = ring.next;
            ring.micros[at] = micros;
        }
        ring.next = (ring.next + 1) % LATENCY_CAP;
    }

    /// Total latencies ever recorded (not capped by the ring).
    pub fn count(&self) -> u64 {
        self.samples.lock().expect("latency lock").total
    }

    /// Percentile summary over the retained window, in milliseconds:
    /// `(p50, p90, p99, max)`. `None` when nothing was recorded yet.
    pub fn summary_ms(&self) -> Option<(f64, f64, f64, f64)> {
        let ring = self.samples.lock().expect("latency lock");
        if ring.micros.is_empty() {
            return None;
        }
        let mut sorted = ring.micros.clone();
        drop(ring);
        sorted.sort_unstable();
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx] as f64 / 1e3
        };
        Some((
            pct(0.50),
            pct(0.90),
            pct(0.99),
            *sorted.last().expect("non-empty") as f64 / 1e3,
        ))
    }
}

/// Counter block of one server instance.
#[derive(Default)]
pub struct ServerMetrics {
    /// HTTP requests accepted and parsed (any endpoint).
    pub http_requests: AtomicU64,
    /// Requests that failed to parse as HTTP (answered 400 where possible).
    pub http_errors: AtomicU64,
    /// Solves that completed and returned a ruleset.
    pub solves_ok: AtomicU64,
    /// Solves that failed with a typed error.
    pub solves_err: AtomicU64,
    /// Solve requests shed because the bounded queue was full (429).
    pub rejected_queue_full: AtomicU64,
    /// Solve requests refused because the server was draining (503).
    pub rejected_shutdown: AtomicU64,
    /// Solves that exceeded the per-request timeout (504; the solve itself
    /// keeps running on its pool worker and still warms the caches).
    pub timeouts: AtomicU64,
    /// Requests answered by attaching to an already-in-flight identical
    /// solve instead of submitting a new one.
    pub coalesce_hits: AtomicU64,
    /// End-to-end latency of completed solves.
    pub solve_latency: LatencyRecorder,
}

impl ServerMetrics {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Connection-level gauges maintained by the reactor and reported under
/// `connections` in `/v1/metrics`. Monotonic counters; currently-open
/// connections are `accepted - closed`.
#[derive(Default)]
pub struct ConnGauges {
    /// Connections accepted from the listener (including ones immediately
    /// rejected over capacity).
    pub accepted: AtomicU64,
    /// Connections fully closed by the reactor.
    pub closed: AtomicU64,
    /// Connections answered with an immediate 503 because the
    /// `max_connections` cap was reached.
    pub rejected_over_capacity: AtomicU64,
}

impl ConnGauges {
    /// Record an accepted connection.
    pub fn bump_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a closed connection.
    pub fn bump_closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an over-capacity rejection.
    pub fn bump_rejected_over_capacity(&self) {
        self.rejected_over_capacity.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open (accepted minus closed).
    pub fn open(&self) -> u64 {
        let accepted = self.accepted.load(Ordering::Relaxed);
        accepted.saturating_sub(self.closed.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let rec = LatencyRecorder::default();
        assert!(rec.summary_ms().is_none());
        for ms in 1..=100u64 {
            rec.record(Duration::from_millis(ms));
        }
        let (p50, p90, p99, max) = rec.summary_ms().unwrap();
        assert_eq!(p50, 50.0);
        assert_eq!(p90, 90.0);
        assert_eq!(p99, 99.0);
        assert_eq!(max, 100.0);
        assert_eq!(rec.count(), 100);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = LatencyRecorder::default();
        for _ in 0..(LATENCY_CAP + 10) {
            rec.record(Duration::from_millis(5));
        }
        assert_eq!(rec.count() as usize, LATENCY_CAP + 10);
        let (p50, _, _, _) = rec.summary_ms().unwrap();
        assert_eq!(p50, 5.0);
    }
}
