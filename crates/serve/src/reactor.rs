//! A dependency-free nonblocking reactor: one thread multiplexing every
//! connection over `epoll(7)` (raw syscalls, Linux) or `poll(2)` (portable
//! Unix fallback) behind the same [`Poller`] trait.
//!
//! ## Why not thread-per-connection
//!
//! The previous front end parked a connection worker for the whole duration
//! of a solve, so concurrency was bounded by thread count and every idle
//! keep-alive connection cost a stack. Here a connection is ~1 KiB of state
//! in a map: the reactor reads bytes, parses requests incrementally
//! ([`crate::http::parse_request`]), and asks the application
//! ([`App::handle`]) for either an immediate response or a *pending* slot.
//! Pending work (solves) runs on the bounded solve pool; when it finishes,
//! the worker pushes the response onto the [`Completions`] queue and writes
//! one byte into the reactor's self-wake pipe — the reactor then fans the
//! bytes out to every waiting slot. No thread ever blocks on a solve while
//! holding a connection.
//!
//! ## Keep-alive + pipelining
//!
//! Each connection keeps a FIFO of response **slots**, one per parsed
//! request, so pipelined requests are answered strictly in request order:
//! a pending head blocks later (already computed) responses from being
//! written early. Writable interest is registered only while the head slot
//! has unwritten bytes — the level-triggered pollers never busy-spin on a
//! writable-but-idle socket.
//!
//! ## Lifecycle
//!
//! * per-slot deadline → the app's [`App::on_timeout`] response (504); a
//!   late completion for a timed-out slot is dropped (the solve itself
//!   still finishes on its worker and warms the caches);
//! * idle timeout reaps connections with **no** outstanding slots only;
//! * peer EOF closes the connection immediately — outstanding shared
//!   solves keep running, their delivery to this connection becomes a
//!   no-op;
//! * shutdown (via [`ReactorHandle::shutdown`]) closes the listener, stops
//!   reading, finishes every already-parsed (admitted) request — pending
//!   solves included — flushes, and only then lets the thread exit.

use crate::http::{self, ParseError, Parsed, Request, Response};
use crate::metrics::ConnGauges;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which readiness backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// `epoll` where available (Linux), `poll(2)` elsewhere.
    #[default]
    Auto,
    /// Raw-syscall `epoll` (Linux only; construction fails elsewhere).
    Epoll,
    /// Portable `poll(2)`.
    Poll,
}

impl PollerKind {
    /// Parse a backend name (`auto` | `epoll` | `poll`).
    pub fn parse(name: &str) -> Option<PollerKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(PollerKind::Auto),
            "epoll" => Some(PollerKind::Epoll),
            "poll" => Some(PollerKind::Poll),
            _ => None,
        }
    }

    /// Resolve the `FAIRCAP_POLLER` environment override, defaulting to
    /// [`PollerKind::Auto`] when unset or unrecognized.
    pub fn from_env() -> PollerKind {
        std::env::var("FAIRCAP_POLLER")
            .ok()
            .and_then(|v| PollerKind::parse(&v))
            .unwrap_or_default()
    }
}

/// Readiness interest for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The ready descriptor.
    pub fd: RawFd,
    /// Readable (or peer closed — reading returns 0/error, which is how
    /// EOF is observed).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the owner should read/write to collect the
    /// concrete error and close.
    pub error: bool,
}

/// The readiness backend: level-triggered, one registration per fd.
pub trait Poller: Send {
    /// Start watching `fd` with `interest`.
    fn register(&mut self, fd: RawFd, interest: Interest) -> std::io::Result<()>;
    /// Change the interest of a registered `fd`.
    fn reregister(&mut self, fd: RawFd, interest: Interest) -> std::io::Result<()>;
    /// Stop watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> std::io::Result<()>;
    /// Block up to `timeout` (forever when `None`) for events; `events` is
    /// cleared first. A signal interruption returns successfully with no
    /// events.
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> std::io::Result<()>;
    /// Backend name for logs/metrics (`"epoll"` / `"poll"`).
    fn name(&self) -> &'static str;
}

/// Clamp a timeout to the millisecond precision the syscalls take,
/// rounding **up** so a deadline is never polled before it can fire.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

/// Construct the backend for `kind`.
pub fn make_poller(kind: PollerKind) -> std::io::Result<Box<dyn Poller>> {
    match kind {
        PollerKind::Poll => Ok(Box::new(poll_backend::PollPoller::new())),
        #[cfg(target_os = "linux")]
        PollerKind::Epoll | PollerKind::Auto => Ok(Box::new(epoll_backend::EpollPoller::new()?)),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Epoll => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll is Linux-only; use FAIRCAP_POLLER=poll",
        )),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Auto => Ok(Box::new(poll_backend::PollPoller::new())),
    }
}

/// Raw-syscall `epoll` backend. No `libc` crate: the four entry points are
/// declared directly against the C library std already links.
#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::{timeout_ms, Event, Interest, Poller};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The kernel ABI packs epoll_event on x86-64 (12 bytes); every other
    // architecture uses natural alignment (16 bytes). Getting this wrong
    // corrupts the `data` field of every second event.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// `epoll`-backed [`Poller`], level-triggered.
    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        /// Create the epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> std::io::Result<EpollPoller> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Interest) -> std::io::Result<()> {
            let mut ev = EpollEvent {
                events: (if interest.readable { EPOLLIN } else { 0 })
                    | (if interest.writable { EPOLLOUT } else { 0 }),
                data: fd as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it out.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, interest: Interest) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest)
        }

        fn reregister(&mut self, fd: RawFd, interest: Interest) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Interest::default())
        }

        fn poll(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> std::io::Result<()> {
            events.clear();
            // SAFETY: `buf` is a live, properly sized array of EpollEvent.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                // Copy out by value: the packed layout on x86-64 forbids
                // taking references into the buffer.
                let raw = self.buf[i];
                let bits = raw.events;
                events.push(Event {
                    fd: raw.data as RawFd,
                    readable: bits & (EPOLLIN | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        fn name(&self) -> &'static str {
            "epoll"
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: closing the fd we own; errors at drop are ignorable.
            unsafe { close(self.epfd) };
        }
    }
}

/// Portable `poll(2)` backend: the whole registration set is re-submitted
/// on every wait. O(n) per call, which is fine at serving fan-ins and
/// keeps the trait honest on non-Linux hosts.
mod poll_backend {
    use super::{timeout_ms, Event, Interest, Poller};
    use std::collections::HashMap;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    extern "C" {
        // `nfds_t` is the platform's unsigned long; usize matches it on
        // every 64-bit Unix this fallback targets.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed [`Poller`].
    #[derive(Default)]
    pub struct PollPoller {
        interests: HashMap<RawFd, Interest>,
        buf: Vec<PollFd>,
    }

    impl PollPoller {
        /// An empty registration set.
        pub fn new() -> PollPoller {
            PollPoller::default()
        }
    }

    impl Poller for PollPoller {
        fn register(&mut self, fd: RawFd, interest: Interest) -> std::io::Result<()> {
            if self.interests.insert(fd, interest).is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("fd {fd} is already registered"),
                ));
            }
            Ok(())
        }

        fn reregister(&mut self, fd: RawFd, interest: Interest) -> std::io::Result<()> {
            match self.interests.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )),
            }
        }

        fn deregister(&mut self, fd: RawFd) -> std::io::Result<()> {
            self.interests.remove(&fd).map(|_| ()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )
            })
        }

        fn poll(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> std::io::Result<()> {
            events.clear();
            self.buf.clear();
            for (&fd, interest) in &self.interests {
                self.buf.push(PollFd {
                    fd,
                    events: (if interest.readable { POLLIN } else { 0 })
                        | (if interest.writable { POLLOUT } else { 0 }),
                    revents: 0,
                });
            }
            // SAFETY: `buf` is a live array of `nfds` PollFd records.
            let n = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len(), timeout_ms(timeout)) };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for pfd in &self.buf {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    fd: pfd.fd,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }

        fn name(&self) -> &'static str {
            "poll"
        }
    }
}

/// What the application decided about one parsed request.
pub enum Dispatch {
    /// Answer now (quick endpoints, rejections, validation errors).
    Immediate(Response),
    /// The app admitted the request for asynchronous completion; it will
    /// later call [`Completions::complete`] naming this request's waiter
    /// id. The reactor parks a response slot that keeps pipelined order.
    Pending,
}

/// A reactor work phase, reported to [`App::on_phase`] for latency
/// accounting. Phases overlap: `Dispatch` (one routed request) nests
/// inside `Read` (one readable connection's servicing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorPhase {
    /// One readable connection's servicing: socket drain + parse of every
    /// complete pipelined request + dispatch + opportunistic flush.
    Read,
    /// One [`App::handle`] call (request routing/admission).
    Dispatch,
    /// One flush of queued response bytes to a socket (writable-event and
    /// completion-delivery flushes).
    Write,
}

/// The serving application driven by the reactor. One instance serves
/// every connection; all hooks run on the reactor thread except
/// [`Completions::complete`], which solve workers call.
pub trait App: Send + Sync + 'static {
    /// Route one parsed request. `waiter` identifies the request for a
    /// later [`Completions::complete`] if the answer is [`Dispatch::Pending`].
    fn handle(self: &Arc<Self>, request: &Request, waiter: u64) -> Dispatch;
    /// A pending request exceeded its deadline; produce the timeout
    /// response (the underlying work keeps running).
    fn on_timeout(&self, waiter: u64) -> Response;
    /// A connection produced unparseable bytes; produce the error response
    /// (the connection closes after it is written).
    fn on_parse_error(&self, error: &ParseError) -> Response;
    /// A pending response was delivered to a live connection: `status` of
    /// the response, `waited` from admission to delivery.
    fn on_delivered(&self, status: u16, waited: Duration);
    /// One reactor phase took `took` of reactor-thread time. Default no-op;
    /// the server feeds these into its reactor latency histograms.
    fn on_phase(&self, phase: ReactorPhase, took: Duration) {
        let _ = (phase, took);
    }
}

/// One finished piece of pending work, fanned out to every waiter.
pub struct Completion {
    /// Waiter ids from [`App::handle`] calls that this completion answers.
    pub waiters: Vec<u64>,
    /// The shared response; encoded per connection (keep-alive vs close).
    pub response: Response,
}

/// The channel from blocking workers back into the reactor: a queue of
/// [`Completion`]s plus a self-pipe whose read end the reactor polls.
pub struct Completions {
    queue: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
    wake_rx: Mutex<Option<UnixStream>>,
}

impl Completions {
    /// Create the queue and its wake pipe.
    pub fn new() -> std::io::Result<Arc<Completions>> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok(Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            wake_tx,
            wake_rx: Mutex::new(Some(wake_rx)),
        }))
    }

    /// Publish one completion and wake the reactor. Callable from any
    /// thread; never blocks (a full pipe already guarantees a wakeup).
    pub fn complete(&self, completion: Completion) {
        self.queue
            .lock()
            .expect("completion queue lock")
            .push(completion);
        self.wake();
    }

    /// Wake the reactor without queueing anything (shutdown nudge).
    pub fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue lock"))
    }

    fn take_reader(&self) -> Option<UnixStream> {
        self.wake_rx.lock().expect("wake reader lock").take()
    }
}

/// Reactor tuning knobs (the server maps its `ServeConfig` onto these).
#[derive(Debug, Clone)]
pub struct ReactorOptions {
    /// Readiness backend.
    pub poller: PollerKind,
    /// Accepted-connection cap; excess connections get an immediate 503
    /// and close.
    pub max_connections: usize,
    /// Reap connections with no outstanding requests after this long.
    pub idle_timeout: Duration,
    /// Deadline for pending (solve) slots; overrun triggers
    /// [`App::on_timeout`].
    pub pending_timeout: Duration,
}

/// Handle to a spawned reactor thread.
pub struct ReactorHandle {
    stopping: Arc<AtomicBool>,
    completions: Arc<Completions>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    poller_name: &'static str,
}

impl ReactorHandle {
    /// The backend the reactor resolved (`"epoll"` / `"poll"`).
    pub fn poller_name(&self) -> &'static str {
        self.poller_name
    }

    /// Graceful stop: close the listener, finish admitted requests, flush,
    /// join. Idempotent. The caller must keep whatever executes pending
    /// work alive until this returns.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.completions.wake();
        if let Some(handle) = self.thread.lock().expect("reactor thread lock").take() {
            let _ = handle.join();
        }
    }
}

/// Spawn the reactor thread over a **nonblocking** listener.
pub fn spawn<A: App>(
    listener: TcpListener,
    app: Arc<A>,
    completions: Arc<Completions>,
    options: ReactorOptions,
    gauges: Arc<ConnGauges>,
) -> std::io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let wake_rx = completions.take_reader().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "this Completions already drives a reactor",
        )
    })?;
    let poller = make_poller(options.poller)?;
    let poller_name = poller.name();
    let stopping = Arc::new(AtomicBool::new(false));
    let reactor = Reactor {
        app,
        listener: Some(listener),
        wake_rx,
        poller,
        conns: HashMap::new(),
        pending: HashMap::new(),
        next_waiter: 0,
        completions: Arc::clone(&completions),
        stopping: Arc::clone(&stopping),
        options,
        gauges,
    };
    let thread = std::thread::Builder::new()
        .name("faircap-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle {
        stopping,
        completions,
        thread: Mutex::new(Some(thread)),
        poller_name,
    })
}

/// One queued response position on a connection. Slot order == request
/// order, which is what makes pipelining correct.
enum Slot {
    /// Encoded bytes being (or waiting to be) written.
    Ready { bytes: Vec<u8> },
    /// Waiting for a completion (or its deadline).
    Pending {
        id: u64,
        deadline: Instant,
        started: Instant,
        close: bool,
    },
}

/// Per-connection state machine.
struct Conn {
    stream: std::net::TcpStream,
    /// Unparsed received bytes.
    buf: Vec<u8>,
    /// FIFO response slots (request order).
    slots: VecDeque<Slot>,
    /// Write progress into the head `Ready` slot.
    written: usize,
    /// No further requests will be parsed; close once slots drain.
    close_after: bool,
    /// Connection is finished; sweep deregisters and drops it.
    dead: bool,
    /// Head slot has bytes the socket would not take yet.
    want_write: bool,
    last_activity: Instant,
    interest: Interest,
}

impl Conn {
    fn new(stream: std::net::TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            slots: VecDeque::new(),
            written: 0,
            close_after: false,
            dead: false,
            want_write: false,
            last_activity: now,
            interest: Interest::READ,
        }
    }
}

struct Reactor<A: App> {
    app: Arc<A>,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    poller: Box<dyn Poller>,
    conns: HashMap<RawFd, Conn>,
    pending: HashMap<u64, RawFd>,
    next_waiter: u64,
    completions: Arc<Completions>,
    stopping: Arc<AtomicBool>,
    options: ReactorOptions,
    gauges: Arc<ConnGauges>,
}

impl<A: App> Reactor<A> {
    fn run(mut self) {
        let listener_fd = self
            .listener
            .as_ref()
            .expect("listener present at start")
            .as_raw_fd();
        let wake_fd = self.wake_rx.as_raw_fd();
        if self.poller.register(listener_fd, Interest::READ).is_err()
            || self.poller.register(wake_fd, Interest::READ).is_err()
        {
            return; // cannot serve without a working poller
        }
        let mut events = Vec::new();
        loop {
            let stopping = self.stopping.load(Ordering::SeqCst);
            if stopping {
                self.begin_drain(listener_fd);
                if self.conns.is_empty() {
                    break;
                }
            }
            let timeout = self
                .next_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            if self.poller.poll(&mut events, timeout).is_err() {
                break; // a broken poller cannot make progress
            }
            let now = Instant::now();
            for event in events.drain(..) {
                if event.fd == wake_fd {
                    let mut sink = [0u8; 64];
                    while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                } else if event.fd == listener_fd {
                    self.accept_ready(now);
                } else if let Some(mut conn) = self.conns.remove(&event.fd) {
                    if event.error && !event.readable && !event.writable {
                        self.drop_conn_state(&mut conn);
                    } else {
                        if event.readable {
                            let t = Instant::now();
                            self.read_and_serve(&mut conn, event.fd, now);
                            self.app.on_phase(ReactorPhase::Read, t.elapsed());
                        }
                        if event.writable && !conn.dead {
                            let t = Instant::now();
                            flush(&mut conn, now);
                            self.app.on_phase(ReactorPhase::Write, t.elapsed());
                        }
                    }
                    self.conns.insert(event.fd, conn);
                }
            }
            self.deliver_completions();
            self.expire(Instant::now());
            self.sweep();
        }
        // Exit: everything still registered is torn down with the poller.
        for (_, mut conn) in std::mem::take(&mut self.conns) {
            self.drop_conn_state(&mut conn);
            self.gauges.bump_closed();
        }
    }

    /// First iteration after a shutdown request: close the listener and
    /// mark every connection for drain (serve admitted slots, read no
    /// more).
    fn begin_drain(&mut self, listener_fd: RawFd) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener_fd);
            drop(listener);
            for conn in self.conns.values_mut() {
                conn.close_after = true;
                conn.buf.clear(); // anything unparsed is, by definition, not admitted
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.gauges.bump_accepted();
                    if stream.set_nonblocking(true).is_err() {
                        self.gauges.bump_closed();
                        continue;
                    }
                    // Keep-alive request/response exchanges are small;
                    // Nagle+delayed-ACK would add ~40 ms per turn.
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let mut conn = Conn::new(stream, now);
                    if self.conns.len() >= self.options.max_connections {
                        self.gauges.bump_rejected_over_capacity();
                        conn.slots.push_back(Slot::Ready {
                            bytes: Response::error(503, "connection limit reached").encode(true),
                        });
                        conn.close_after = true;
                    }
                    if self.poller.register(fd, conn.interest).is_ok() {
                        flush(&mut conn, now);
                        if conn.dead || (conn.close_after && conn.slots.is_empty()) {
                            let _ = self.poller.deregister(fd);
                            self.gauges.bump_closed();
                        } else {
                            self.conns.insert(fd, conn);
                        }
                    } else {
                        self.gauges.bump_closed();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry on next event
            }
        }
    }

    /// Drain the socket, parse every complete pipelined request, dispatch
    /// each, and opportunistically flush.
    fn read_and_serve(&mut self, conn: &mut Conn, fd: RawFd, now: Instant) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    // Peer EOF: close immediately. Outstanding shared work
                    // keeps running; delivery to this connection becomes a
                    // no-op (waiter-disconnect must not cancel a solve).
                    self.drop_conn_state(conn);
                    return;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn_state(conn);
                    return;
                }
            }
        }
        while !conn.close_after && !conn.buf.is_empty() {
            match http::parse_request(&conn.buf) {
                Ok(Parsed::Partial) => break,
                Ok(Parsed::Complete { request, consumed }) => {
                    conn.buf.drain(..consumed);
                    let close = !request.keep_alive;
                    let id = self.next_waiter;
                    self.next_waiter += 1;
                    let dispatched_at = Instant::now();
                    let dispatch = self.app.handle(&request, id);
                    self.app
                        .on_phase(ReactorPhase::Dispatch, dispatched_at.elapsed());
                    match dispatch {
                        Dispatch::Immediate(response) => {
                            conn.slots.push_back(Slot::Ready {
                                bytes: response.encode(close),
                            });
                        }
                        Dispatch::Pending => {
                            self.pending.insert(id, fd);
                            conn.slots.push_back(Slot::Pending {
                                id,
                                deadline: now + self.options.pending_timeout,
                                started: now,
                                close,
                            });
                        }
                    }
                    if close {
                        conn.close_after = true; // later pipelined bytes are ignored
                    }
                }
                Err(e) => {
                    // Framing is lost; answer once and close.
                    conn.slots.push_back(Slot::Ready {
                        bytes: self.app.on_parse_error(&e).encode(true),
                    });
                    conn.close_after = true;
                    conn.buf.clear();
                }
            }
        }
        flush(conn, now);
    }

    /// Release a connection's reactor state: deregister, forget its
    /// pending waiters (their completions will be dropped on arrival).
    fn drop_conn_state(&mut self, conn: &mut Conn) {
        if !conn.dead {
            conn.dead = true;
            for slot in &conn.slots {
                if let Slot::Pending { id, .. } = slot {
                    self.pending.remove(id);
                }
            }
            conn.slots.clear();
        }
    }

    fn deliver_completions(&mut self) {
        let now = Instant::now();
        for completion in self.completions.drain() {
            let Completion { waiters, response } = completion;
            for id in waiters {
                let Some(fd) = self.pending.remove(&id) else {
                    continue; // timed out or disconnected; drop silently
                };
                let Some(conn) = self.conns.get_mut(&fd) else {
                    continue;
                };
                for slot in conn.slots.iter_mut() {
                    if let Slot::Pending {
                        id: slot_id,
                        started,
                        close,
                        ..
                    } = slot
                    {
                        if *slot_id == id {
                            self.app.on_delivered(response.status, started.elapsed());
                            *slot = Slot::Ready {
                                bytes: response.encode(*close),
                            };
                            break;
                        }
                    }
                }
                let t = Instant::now();
                flush(conn, now);
                self.app.on_phase(ReactorPhase::Write, t.elapsed());
            }
        }
    }

    /// Convert overdue pending slots into the app's timeout response and
    /// reap idle connections (never ones with outstanding slots).
    fn expire(&mut self, now: Instant) {
        let stopping = self.stopping.load(Ordering::SeqCst);
        let mut timed_out: Vec<u64> = Vec::new();
        for conn in self.conns.values_mut() {
            for slot in conn.slots.iter_mut() {
                if let Slot::Pending {
                    id,
                    deadline,
                    close,
                    ..
                } = slot
                {
                    if *deadline <= now {
                        timed_out.push(*id);
                        let response = self.app.on_timeout(*id);
                        *slot = Slot::Ready {
                            bytes: response.encode(*close),
                        };
                    }
                }
            }
            if !timed_out.is_empty() {
                flush(conn, now);
            }
            if !stopping
                && conn.slots.is_empty()
                && now.duration_since(conn.last_activity) >= self.options.idle_timeout
            {
                conn.dead = true;
            }
        }
        for id in timed_out {
            self.pending.remove(&id);
        }
    }

    /// Close finished connections and reconcile poller interest with each
    /// survivor's actual needs.
    fn sweep(&mut self) {
        let stopping = self.stopping.load(Ordering::SeqCst);
        let mut dead: Vec<RawFd> = Vec::new();
        for (&fd, conn) in self.conns.iter_mut() {
            if conn.dead || (conn.close_after && conn.slots.is_empty() && !conn.want_write) {
                dead.push(fd);
                continue;
            }
            if stopping && conn.slots.is_empty() && !conn.want_write {
                dead.push(fd);
                continue;
            }
            let desired = Interest {
                readable: !conn.close_after && !stopping,
                writable: conn.want_write,
            };
            if desired != conn.interest && self.poller.reregister(fd, desired).is_ok() {
                conn.interest = desired;
            }
        }
        for fd in dead {
            if let Some(mut conn) = self.conns.remove(&fd) {
                self.drop_conn_state(&mut conn);
                let _ = self.poller.deregister(fd);
                self.gauges.bump_closed();
            }
        }
    }

    /// The earliest instant anything scheduled needs attention: pending
    /// deadlines always; idle deadlines only while not stopping.
    fn next_deadline(&self) -> Option<Instant> {
        let stopping = self.stopping.load(Ordering::SeqCst);
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| {
            next = Some(match next {
                Some(cur) if cur <= t => cur,
                _ => t,
            });
        };
        for conn in self.conns.values() {
            for slot in &conn.slots {
                if let Slot::Pending { deadline, .. } = slot {
                    consider(*deadline);
                }
            }
            if !stopping && conn.slots.is_empty() {
                consider(conn.last_activity + self.options.idle_timeout);
            }
        }
        next
    }
}

/// Write as much of the ready head slots as the socket accepts. A pending
/// head stops the pump (pipelined order); an empty queue on a
/// `close_after` connection marks it finished.
fn flush(conn: &mut Conn, now: Instant) {
    if conn.dead {
        return;
    }
    loop {
        let done = match conn.slots.front() {
            Some(Slot::Ready { bytes }) => {
                while conn.written < bytes.len() {
                    match (&conn.stream).write(&bytes[conn.written..]) {
                        Ok(0) => {
                            conn.dead = true;
                            return;
                        }
                        Ok(n) => {
                            conn.written += n;
                            conn.last_activity = now;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            conn.want_write = true;
                            return;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.dead = true;
                            return;
                        }
                    }
                }
                true // the loop only exits early via `return`
            }
            Some(Slot::Pending { .. }) | None => {
                conn.want_write = false;
                if conn.slots.is_empty() && conn.close_after {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                    conn.dead = true;
                }
                return;
            }
        };
        if done {
            conn.slots.pop_front();
            conn.written = 0;
            conn.want_write = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn backend_kinds() -> Vec<PollerKind> {
        if cfg!(target_os = "linux") {
            vec![PollerKind::Epoll, PollerKind::Poll]
        } else {
            vec![PollerKind::Poll]
        }
    }

    #[test]
    fn poller_kind_parsing() {
        assert_eq!(PollerKind::parse("epoll"), Some(PollerKind::Epoll));
        assert_eq!(PollerKind::parse(" POLL "), Some(PollerKind::Poll));
        assert_eq!(PollerKind::parse("auto"), Some(PollerKind::Auto));
        assert_eq!(PollerKind::parse("uring"), None);
    }

    #[test]
    fn pollers_report_readability_and_writability() {
        for kind in backend_kinds() {
            let mut poller = make_poller(kind).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            let fd = server.as_raw_fd();
            poller
                .register(
                    fd,
                    Interest {
                        readable: true,
                        writable: true,
                    },
                )
                .unwrap();

            // Nothing to read yet, but the socket is writable.
            let mut events = Vec::new();
            poller
                .poll(&mut events, Some(Duration::from_millis(500)))
                .unwrap();
            let ev = events
                .iter()
                .find(|e| e.fd == fd)
                .unwrap_or_else(|| panic!("{}: no event for the connected socket", poller.name()));
            assert!(
                ev.writable,
                "{}: fresh socket must be writable",
                poller.name()
            );
            assert!(!ev.readable, "{}: nothing was sent yet", poller.name());

            // After the peer writes, readable must fire.
            use std::io::Write as _;
            client.write_all(b"ping").unwrap();
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                poller
                    .poll(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
                if events.iter().any(|e| e.fd == fd && e.readable) {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "{}: readable never fired",
                    poller.name()
                );
            }

            // Read-only interest must stop reporting writable.
            poller.reregister(fd, Interest::READ).unwrap();
            poller
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.fd != fd || !e.writable),
                "{}: writable reported without write interest",
                poller.name()
            );
            poller.deregister(fd).unwrap();
            poller
                .poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.fd != fd),
                "{}: deregistered fd still reported",
                poller.name()
            );
        }
    }

    #[test]
    fn wake_pipe_unblocks_polling() {
        for kind in backend_kinds() {
            let mut poller = make_poller(kind).unwrap();
            let completions = Completions::new().unwrap();
            let reader = completions.take_reader().unwrap();
            poller.register(reader.as_raw_fd(), Interest::READ).unwrap();

            let remote = Arc::clone(&completions);
            let waker = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                remote.complete(Completion {
                    waiters: vec![7],
                    response: Response::error(504, "x"),
                });
            });
            let mut events = Vec::new();
            let started = Instant::now();
            poller
                .poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "{}: wake did not unblock the poll",
                poller.name()
            );
            assert!(events
                .iter()
                .any(|e| e.fd == reader.as_raw_fd() && e.readable));
            waker.join().unwrap();
            let drained = completions.drain();
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].waiters, vec![7]);
            assert!(completions.drain().is_empty());
        }
    }

    #[test]
    fn completions_reader_is_single_take() {
        let completions = Completions::new().unwrap();
        assert!(completions.take_reader().is_some());
        assert!(completions.take_reader().is_none());
    }
}
