//! A deliberately small HTTP/1.1 implementation over raw byte buffers.
//!
//! The build environment is offline (no tokio, no hyper), and the serving
//! workload is simple: short JSON requests and responses. Since the reactor
//! rebuild the module is **incremental**: [`parse_request`] is a pure
//! function of a byte buffer that either yields a complete request and how
//! many bytes it consumed, or reports that the buffer is still a prefix of
//! one ([`Parsed::Partial`]). The nonblocking connection state machine in
//! `reactor` appends whatever the socket produced and re-parses — which
//! makes **keep-alive** (consume, then parse the rest) and **pipelining**
//! (parse repeatedly until `Partial`) fall out of the representation, and
//! makes the parser property-testable: for every split of a valid request
//! stream across read boundaries, the parsed requests are identical
//! (`tests/prop_http.rs`).
//!
//! Limits on untrusted input: 8 KiB per header line, 64 headers, 4 MiB
//! body. `Transfer-Encoding: chunked` is refused outright (`501`-class
//! `Malformed`) rather than half-implemented — a request the parser cannot
//! frame exactly is a closed connection, never a misframed one.

use faircap_core::Json;
use std::fmt::Write as _;

/// Maximum accepted header-line length.
const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 64;
/// Maximum accepted request-body size.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request path, query string included (the API uses none).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection may serve further requests after this one:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Why a request could not be parsed. Both variants are fatal for the
/// connection: after a framing error there is no reliable way to find the
/// next request boundary, so the server answers and closes.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request (bad request line, header, length, or an
    /// unsupported transfer encoding).
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::BodyTooLarge(n) => {
                write!(
                    f,
                    "request body of {n} bytes exceeds the {MAX_BODY}-byte limit"
                )
            }
        }
    }
}

/// Result of [`parse_request`] on a buffer that is not (yet) in error.
#[derive(Debug)]
pub enum Parsed {
    /// One complete request, and the number of buffer bytes it occupied
    /// (the caller drains them and re-parses for pipelined successors).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// The buffer holds a prefix of a request; read more and retry.
    Partial,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a `Malformed` error.
    pub fn body_utf8(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.body)
            .map_err(|e| ParseError::Malformed(format!("body is not UTF-8: {e}")))
    }
}

/// Whether a `Connection:` header value contains `token` (comma-separated
/// list, case-insensitive).
fn connection_has(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|t| t.trim().eq_ignore_ascii_case(token))
}

/// Find the end of the line starting at `from` (the index of its `\n`),
/// or `None` if the line is still incomplete. Errors if the line exceeds
/// [`MAX_LINE`] whether or not its terminator has arrived yet, so a
/// header-flood is rejected without buffering it.
fn line_end(buf: &[u8], from: usize) -> Result<Option<usize>, ParseError> {
    match buf[from..].iter().position(|&b| b == b'\n') {
        Some(offset) if offset > MAX_LINE => {
            Err(ParseError::Malformed("header line too long".into()))
        }
        Some(offset) => Ok(Some(from + offset)),
        None if buf.len() - from > MAX_LINE => {
            Err(ParseError::Malformed("header line too long".into()))
        }
        None => Ok(None),
    }
}

/// Decode one header/request line: bytes in `[from, end)` minus a
/// trailing `\r`, as UTF-8.
fn line_str(buf: &[u8], from: usize, end: usize) -> Result<&str, ParseError> {
    let mut slice = &buf[from..end];
    if slice.last() == Some(&b'\r') {
        slice = &slice[..slice.len() - 1];
    }
    std::str::from_utf8(slice).map_err(|e| ParseError::Malformed(format!("non-UTF-8 header: {e}")))
}

/// Incrementally parse one HTTP/1.x request from the front of `buf`.
///
/// Pure function of the buffer: callers append newly read bytes and call
/// again. Returns [`Parsed::Partial`] while the buffer holds only a prefix,
/// [`Parsed::Complete`] with the consumed byte count once the request (and
/// its `Content-Length` body) is fully present, and a fatal [`ParseError`]
/// as soon as the prefix is provably not a parseable request — the verdict
/// for a given stream is identical no matter how it was split across reads.
pub fn parse_request(buf: &[u8]) -> Result<Parsed, ParseError> {
    // Request line.
    let Some(line_term) = line_end(buf, 0)? else {
        return Ok(Parsed::Partial);
    };
    let request_line = line_str(buf, 0, line_term)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1") {
        return Err(ParseError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let http_11 = version != "HTTP/1.0";
    let (method, path) = (method.to_owned(), path.to_owned());

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut at = line_term + 1;
    loop {
        let Some(term) = line_end(buf, at)? else {
            return Ok(Parsed::Partial);
        };
        let line = line_str(buf, at, term)?;
        at = term + 1;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    // Framing. Chunked (or any non-identity transfer coding) is refused:
    // a body the parser cannot delimit exactly must never be guessed at.
    if let Some((_, te)) = headers.iter().find(|(k, _)| k == "transfer-encoding") {
        if !te.trim().eq_ignore_ascii_case("identity") {
            return Err(ParseError::Malformed(format!(
                "transfer-encoding `{te}` is not supported (send Content-Length)"
            )));
        }
    }
    let mut content_length = 0usize;
    let mut seen_length = false;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let n: usize = v
            .trim()
            .parse()
            .map_err(|e| ParseError::Malformed(format!("bad content-length `{v}`: {e}")))?;
        if seen_length && n != content_length {
            return Err(ParseError::Malformed(
                "conflicting content-length headers".into(),
            ));
        }
        content_length = n;
        seen_length = true;
    }
    if content_length > MAX_BODY {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let body_end = at + content_length;
    if buf.len() < body_end {
        return Ok(Parsed::Partial);
    }

    let keep_alive = match headers.iter().find(|(k, _)| k == "connection") {
        Some((_, v)) if connection_has(v, "close") => false,
        Some((_, v)) if connection_has(v, "keep-alive") => true,
        _ => http_11,
    };
    Ok(Parsed::Complete {
        request: Request {
            method,
            path,
            headers,
            body: buf[at..body_end].to_vec(),
            keep_alive,
        },
        consumed: body_end,
    })
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: String,
    /// `Content-Type` header value (JSON for the API, plain text for the
    /// Prometheus exposition).
    pub content_type: &'static str,
    /// Extra headers beyond the standard set, e.g. `Retry-After`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            body: body.render(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response in the Prometheus exposition content type.
    pub fn prometheus(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error document: `{"error": <message>, "status": <code>}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        let doc = Json::Obj(vec![
            ("error".to_owned(), Json::Str(message.into())),
            ("status".to_owned(), Json::Num(f64::from(status))),
        ]);
        Response::json(status, &doc)
    }

    /// Add an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serialize to wire bytes. `close` selects the `Connection:` header:
    /// the reactor keeps connections alive by default and sets `close` on
    /// fatal parse errors, `Connection: close` requests, and drain.
    pub fn encode(&self, close: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Serialize onto a blocking stream with `Connection: close` (used by
    /// out-of-band error paths that answer and hang up).
    pub fn write_to(&self, stream: &mut impl std::io::Write) -> std::io::Result<()> {
        stream.write_all(&self.encode(true))?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this API emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> (Request, usize) {
        match parse_request(raw).unwrap() {
            Parsed::Complete { request, consumed } => (request, consumed),
            Parsed::Partial => panic!("unexpectedly partial"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let (req, consumed) = complete(raw);
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.header("content-length"), Some("7"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_semantics() {
        let (req, _) = complete(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = complete(b"GET /x HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let (req, _) = complete(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(req.keep_alive);
        let (req, _) = complete(b"GET /x HTTP/1.1\r\nConnection: foo, Close\r\n\r\n");
        assert!(!req.keep_alive, "token list containing close wins");
    }

    #[test]
    fn partial_prefixes_then_complete() {
        let raw = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        for cut in 0..raw.len() {
            assert!(
                matches!(parse_request(&raw[..cut]).unwrap(), Parsed::Partial),
                "prefix of {cut} bytes should be partial"
            );
        }
        let (req, consumed) = complete(raw);
        assert_eq!(consumed, raw.len());
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut at = 0;
        let mut paths = Vec::new();
        while at < raw.len() {
            let (req, consumed) = complete(&raw[at..]);
            paths.push(req.path.clone());
            at += consumed;
        }
        assert_eq!(paths, ["/a", "/b", "/c"]);
        assert_eq!(at, raw.len());
    }

    #[test]
    fn rejects_garbage() {
        for raw in [
            &b"what is this\r\n\r\n"[..],
            &b"GET /x SPDY/99\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"[..],
        ] {
            assert!(parse_request(raw).is_err(), "accepted {raw:?}");
        }
        // An empty buffer is simply partial, not an error.
        assert!(matches!(parse_request(b"").unwrap(), Parsed::Partial));
    }

    #[test]
    fn rejects_oversized_bodies_and_lines() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_request(raw.as_bytes()),
            Err(ParseError::BodyTooLarge(_))
        ));
        // A header line exceeding MAX_LINE is rejected even before its
        // terminator arrives — no unbounded buffering for a header flood.
        let flood = format!("GET /x HTTP/1.1\r\nx: {}", "y".repeat(MAX_LINE + 2));
        assert!(matches!(
            parse_request(flood.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let bytes = Response::error(429, "try later")
            .with_header("retry-after", "1")
            .encode(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"try later\",\"status\":429}"));
        // Keep-alive encoding differs only in the connection header.
        let keep = String::from_utf8(Response::error(429, "try later").encode(false)).unwrap();
        assert!(keep.contains("connection: keep-alive\r\n"));
        // write_to is the blocking close-mode convenience.
        let mut out = Vec::new();
        Response::error(400, "x").write_to(&mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("connection: close"));
    }
}
