//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The build environment is offline (no tokio, no hyper), and the serving
//! workload is simple: short JSON requests, one request per connection
//! (`Connection: close` on every response). This module implements exactly
//! that subset — request-line + headers + `Content-Length` body parsing
//! with hard size limits, and response writing with correct status lines —
//! and nothing else (no chunked encoding, no keep-alive, no TLS).
//!
//! Limits on untrusted input: 8 KiB per header line, 64 headers, 4 MiB
//! body. Anything over is a parse error, which the connection handler turns
//! into a `400`/`413` and a closed socket.

use faircap_core::Json;
use std::io::{BufRead, Write};

/// Maximum accepted header-line length.
const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 64;
/// Maximum accepted request-body size.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request path, query string included (the API uses none).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    Eof,
    /// Malformed request (bad request line, header, or length).
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`].
    BodyTooLarge(usize),
    /// Transport error while reading.
    Io(std::io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Eof => write!(f, "connection closed before a request arrived"),
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::BodyTooLarge(n) => {
                write!(
                    f,
                    "request body of {n} bytes exceeds the {MAX_BODY}-byte limit"
                )
            }
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a `Malformed` error.
    pub fn body_utf8(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.body)
            .map_err(|e| ParseError::Malformed(format!("body is not UTF-8: {e}")))
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(ParseError::Eof);
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(ParseError::Malformed("header line too long".into()));
                }
            }
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|e| ParseError::Malformed(format!("non-UTF-8 header: {e}")))
}

/// Read one HTTP/1.1 request from a buffered stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1") {
        return Err(ParseError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|e| ParseError::Malformed(format!("bad content-length `{v}`: {e}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ParseError::Io)?;

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (always JSON in this API).
    pub body: String,
    /// Extra headers beyond the standard set, e.g. `Retry-After`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            body: body.render(),
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error document: `{"error": <message>, "status": <code>}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        let doc = Json::Obj(vec![
            ("error".to_owned(), Json::Str(message.into())),
            ("status".to_owned(), Json::Num(f64::from(status))),
        ]);
        Response::json(status, &doc)
    }

    /// Add an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serialize onto a stream (`Connection: close` is always sent; the
    /// caller closes the socket after).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this API emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.header("content-length"), Some("7"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /v1/metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        for raw in [
            &b"what is this\r\n\r\n"[..],
            &b"GET /x SPDY/99\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(read_request(&mut BufReader::new(raw)).is_err());
        }
        assert!(matches!(
            read_request(&mut BufReader::new(&b""[..])),
            Err(ParseError::Eof)
        ));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            read_request(&mut BufReader::new(raw.as_bytes())),
            Err(ParseError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::error(429, "try later")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"try later\",\"status\":429}"));
    }
}
