//! Bounded worker pools — the serving analogue of `core::exec`.
//!
//! `core::exec::run_work_stealing` is a *batch* executor: it spawns
//! workers for one fan-out and joins them when the batch ends. A server
//! needs the long-lived version of the same self-scheduling idea: a fixed
//! set of worker threads pulling jobs off one shared queue, so a slow job
//! delays at most the jobs behind it in the queue, never an idle worker.
//!
//! [`WorkerPool`] adds the two properties serving requires on top:
//!
//! * **A hard queue bound.** [`WorkerPool::try_submit`] never blocks and
//!   never buffers unboundedly — a full queue is an immediate
//!   [`SubmitError::QueueFull`], which the HTTP layer turns into `429`.
//!   This is the server's admission control: memory use is bounded by
//!   `workers + queue capacity` jobs regardless of offered load.
//! * **Graceful drain.** [`WorkerPool::shutdown`] stops admission, lets the
//!   workers finish every job already admitted (queued *and* in flight),
//!   then joins them — no accepted request is ever dropped on the floor.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed load (HTTP 429).
    QueueFull,
    /// The pool is draining for shutdown (HTTP 503).
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
    in_flight: usize,
    /// High-water mark of `queue.len()`, for the metrics endpoint (proves
    /// the admission bound held under overload).
    max_queue_depth: usize,
    panics: u64,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or shutdown begins.
    work_cv: Condvar,
    queue_cap: usize,
}

/// A fixed-size pool of worker threads over one bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least 1) serving a queue bounded at
    /// `queue_cap` pending jobs (at least 1). `name` labels the threads.
    pub fn new(name: &str, workers: usize, queue_cap: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            queue_cap: queue_cap.max(1),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Enqueue a job without blocking. Admission control lives here: a full
    /// queue or a draining pool is an immediate typed refusal.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool state lock");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        state.queue.push_back(Box::new(job));
        state.max_queue_depth = state.max_queue_depth.max(state.queue.len());
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(())
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured queue bound.
    pub fn queue_cap(&self) -> usize {
        self.shared.queue_cap
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state lock")
            .queue
            .len()
    }

    /// Highest queue depth ever observed.
    pub fn max_queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state lock")
            .max_queue_depth
    }

    /// Jobs currently executing on a worker.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().expect("pool state lock").in_flight
    }

    /// Jobs that panicked (the worker survives; the panic is contained).
    pub fn panics(&self) -> u64 {
        self.shared.state.lock().expect("pool state lock").panics
    }

    /// Stop admitting jobs, finish everything already admitted (queued and
    /// in flight), and join the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("pool handles lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                // Drain-then-exit: queued jobs are always served before the
                // shutdown flag is honoured.
                if state.shutdown {
                    return;
                }
                state = shared.work_cv.wait(state).expect("pool cv wait");
            }
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err();
        let mut state = shared.state.lock().expect("pool state lock");
        state.in_flight -= 1;
        if panicked {
            state.panics += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let pool = WorkerPool::new("t", 3, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50, "shutdown must drain");
        assert!(matches!(
            pool.try_submit(|| {}),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let pool = WorkerPool::new("t", 1, 2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_submit(move || {
            let _ = release_rx.recv_timeout(Duration::from_secs(10));
        })
        .unwrap();
        // ...then fill the 2-slot queue; further submissions must bounce.
        while pool.queue_depth() < 2 {
            match pool.try_submit(|| {}) {
                Ok(()) => {}
                Err(SubmitError::QueueFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let mut saw_full = false;
        for _ in 0..10 {
            if pool.try_submit(|| {}) == Err(SubmitError::QueueFull) {
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "bounded queue must reject overflow");
        assert!(pool.max_queue_depth() <= 2);
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new("t", 1, 8);
        pool.try_submit(|| panic!("boom")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.try_submit(move || {
            tx.send(42).unwrap();
        })
        .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 42);
        assert_eq!(pool.panics(), 1);
        pool.shutdown();
    }
}
