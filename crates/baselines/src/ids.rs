//! Interpretable Decision Sets (Lakkaraju, Bach & Leskovec, KDD 2016).
//!
//! IDS learns an *unordered* set of `IF pattern THEN class` rules balancing
//! accuracy and interpretability through a seven-term non-negative
//! submodular objective, maximized with local search. This implementation
//! follows the original objective structure (size, length, same/different
//! class overlap, class coverage, precision, recall) with the standard
//! greedy maximizer (the paper itself notes IDS "leverages submodular
//! optimization on an unordered set of rules").

use crate::binarize::{binarize_outcome, positive_rate};
use faircap_mining::{apriori, AprioriConfig};
use faircap_table::{DataFrame, Mask, Pattern, Result};

/// One learned decision rule.
#[derive(Debug, Clone)]
pub struct IdsRule {
    /// IF clause.
    pub pattern: Pattern,
    /// THEN class (`true` = positive / high outcome).
    pub class: bool,
    /// Rows matching the IF clause.
    pub coverage: Mask,
}

/// IDS hyper-parameters.
#[derive(Debug, Clone)]
pub struct IdsConfig {
    /// Support threshold for candidate pattern mining.
    pub min_support: f64,
    /// Maximum predicates per pattern.
    pub max_len: usize,
    /// Maximum number of selected rules (the paper sets baselines' rule
    /// budget to match FairCap's).
    pub max_rules: usize,
    /// Weight of the interpretability terms (size/length/overlap).
    pub lambda_interp: f64,
    /// Weight of the accuracy terms (precision/recall).
    pub lambda_acc: f64,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            min_support: 0.05,
            max_len: 2,
            max_rules: 16,
            lambda_interp: 0.5,
            lambda_acc: 1.0,
        }
    }
}

/// A learned decision set.
#[derive(Debug, Clone)]
pub struct DecisionSet {
    /// The selected rules.
    pub rules: Vec<IdsRule>,
    /// Objective value of the selection.
    pub objective: f64,
}

/// Learn a decision set over the named attributes predicting the binarized
/// outcome.
pub fn learn_decision_set(
    df: &DataFrame,
    attributes: &[String],
    outcome: &str,
    config: &IdsConfig,
) -> Result<DecisionSet> {
    let labels = binarize_outcome(df, outcome)?;
    let all = Mask::ones(df.n_rows());
    let frequent = apriori(
        df,
        attributes,
        &all,
        &AprioriConfig {
            min_support: config.min_support,
            max_len: config.max_len,
            max_values_per_attr: 16,
        },
    )?;
    // Candidates: each frequent pattern paired with its majority class.
    let candidates: Vec<IdsRule> = frequent
        .into_iter()
        .map(|f| {
            let rate = positive_rate(&labels, &f.support);
            IdsRule {
                pattern: f.pattern,
                class: rate >= 0.5,
                coverage: f.support,
            }
        })
        .collect();

    let scorer = Scorer::new(df.n_rows(), &labels, &candidates, config);
    // Greedy submodular maximization with marginal-gain selection.
    let mut selected: Vec<usize> = Vec::new();
    let mut current = scorer.objective(&selected);
    while selected.len() < config.max_rules {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..candidates.len() {
            if selected.contains(&idx) {
                continue;
            }
            selected.push(idx);
            let value = scorer.objective(&selected);
            selected.pop();
            let gain = value - current;
            if gain > best.map(|(_, g)| g).unwrap_or(0.0) {
                best = Some((idx, gain));
            }
        }
        let Some((idx, gain)) = best else { break };
        if gain <= 0.0 {
            break;
        }
        selected.push(idx);
        current += gain;
    }
    Ok(DecisionSet {
        rules: selected.iter().map(|&i| candidates[i].clone()).collect(),
        objective: current,
    })
}

/// Evaluates the IDS objective for a candidate selection.
struct Scorer<'a> {
    n_rows: usize,
    labels: &'a [bool],
    candidates: &'a [IdsRule],
    config: &'a IdsConfig,
    max_len: usize,
}

impl<'a> Scorer<'a> {
    fn new(
        n_rows: usize,
        labels: &'a [bool],
        candidates: &'a [IdsRule],
        config: &'a IdsConfig,
    ) -> Self {
        let max_len = candidates
            .iter()
            .map(|c| c.pattern.len())
            .max()
            .unwrap_or(1);
        Scorer {
            n_rows,
            labels,
            candidates,
            config,
            max_len,
        }
    }

    /// The seven-term objective, normalized to per-unit scales.
    fn objective(&self, selected: &[usize]) -> f64 {
        let rules: Vec<&IdsRule> = selected.iter().map(|&i| &self.candidates[i]).collect();
        let n = self.n_rows as f64;
        let budget = self.config.max_rules as f64;

        // f1: conciseness — fewer rules.
        let f1 = (budget - rules.len() as f64).max(0.0) / budget;
        // f2: short rules.
        let total_len: usize = rules.iter().map(|r| r.pattern.len()).sum();
        let f2 = 1.0 - total_len as f64 / (self.max_len as f64 * budget).max(1.0);
        // f3/f4: low overlap between rules of the same / different class.
        let mut overlap_same = 0.0;
        let mut overlap_diff = 0.0;
        for i in 0..rules.len() {
            for j in i + 1..rules.len() {
                let ov = rules[i].coverage.intersect_count(&rules[j].coverage) as f64 / n;
                if rules[i].class == rules[j].class {
                    overlap_same += ov;
                } else {
                    overlap_diff += ov;
                }
            }
        }
        let f3 = 1.0 - (overlap_same / budget).min(1.0);
        let f4 = 1.0 - (overlap_diff / budget).min(1.0);
        // f5: both classes represented.
        let has_pos = rules.iter().any(|r| r.class);
        let has_neg = rules.iter().any(|r| !r.class);
        let f5 = match (has_pos, has_neg) {
            (true, true) => 1.0,
            (false, false) => 0.0,
            _ => 0.5,
        };
        // f6: precision — penalize rows a rule covers with the wrong label.
        let mut incorrect = 0usize;
        for r in &rules {
            incorrect += r
                .coverage
                .iter_ones()
                .filter(|&i| self.labels[i] != r.class)
                .count();
        }
        let f6 = 1.0 - (incorrect as f64 / (n * budget.max(1.0))).min(1.0);
        // f7: recall — fraction of rows correctly covered by some rule.
        let mut correct = Mask::zeros(self.n_rows);
        for r in &rules {
            for i in r.coverage.iter_ones() {
                if self.labels[i] == r.class {
                    correct.set(i, true);
                }
            }
        }
        let f7 = correct.count() as f64 / n;

        self.config.lambda_interp * (f1 + f2 + f3 + f4 + f5) + self.config.lambda_acc * (f6 + f7)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;

    /// Outcome perfectly determined by `flag`: rules on `flag` should win.
    fn df() -> DataFrame {
        let n = 200;
        let flags: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "on" } else { "off" })
            .collect();
        let noise: Vec<&str> = (0..n).map(|i| if i % 3 == 0 { "x" } else { "y" }).collect();
        let outcome: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 100.0 } else { 0.0 })
            .collect();
        DataFrame::builder()
            .cat("flag", &flags)
            .cat("noise", &noise)
            .float("o", outcome)
            .build()
            .unwrap()
    }

    #[test]
    fn learns_the_predictive_rule() {
        let ds = learn_decision_set(
            &df(),
            &["flag".into(), "noise".into()],
            "o",
            &IdsConfig::default(),
        )
        .unwrap();
        assert!(!ds.rules.is_empty());
        // The strongest rules must mention `flag` with the right class.
        let on_rule = ds
            .rules
            .iter()
            .find(|r| r.pattern.to_string() == "flag = on")
            .expect("flag = on should be selected");
        assert!(on_rule.class, "flag=on predicts the high class");
        let off_rule = ds
            .rules
            .iter()
            .find(|r| r.pattern.to_string() == "flag = off");
        if let Some(r) = off_rule {
            assert!(!r.class);
        }
    }

    #[test]
    fn respects_rule_budget() {
        let mut cfg = IdsConfig::default();
        cfg.max_rules = 2;
        let ds = learn_decision_set(&df(), &["flag".into(), "noise".into()], "o", &cfg).unwrap();
        assert!(ds.rules.len() <= 2);
    }

    #[test]
    fn objective_is_monotone_under_greedy() {
        // The greedy loop only accepts positive gains, so the final
        // objective must be at least the empty-set objective.
        let cfg = IdsConfig::default();
        let labels = binarize_outcome(&df(), "o").unwrap();
        let ds = learn_decision_set(&df(), &["flag".into()], "o", &cfg).unwrap();
        let frequent = apriori(
            &df(),
            &["flag".into()],
            &Mask::ones(200),
            &AprioriConfig {
                min_support: cfg.min_support,
                max_len: cfg.max_len,
                max_values_per_attr: 16,
            },
        )
        .unwrap();
        let candidates: Vec<IdsRule> = frequent
            .into_iter()
            .map(|f| {
                let rate = positive_rate(&labels, &f.support);
                IdsRule {
                    pattern: f.pattern,
                    class: rate >= 0.5,
                    coverage: f.support,
                }
            })
            .collect();
        let scorer = Scorer::new(200, &labels, &candidates, &cfg);
        assert!(ds.objective >= scorer.objective(&[]));
    }

    #[test]
    fn deterministic() {
        let cfg = IdsConfig::default();
        let a = learn_decision_set(&df(), &["flag".into(), "noise".into()], "o", &cfg).unwrap();
        let b = learn_decision_set(&df(), &["flag".into(), "noise".into()], "o", &cfg).unwrap();
        let pa: Vec<String> = a.rules.iter().map(|r| r.pattern.to_string()).collect();
        let pb: Vec<String> = b.rules.iter().map(|r| r.pattern.to_string()).collect();
        assert_eq!(pa, pb);
    }
}
