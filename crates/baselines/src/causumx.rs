//! CauSumX-style baseline (Youngmann et al., SIGMOD 2024).
//!
//! CauSumX summarizes causal explanations for aggregate views: per group it
//! finds the treatment with the highest CATE, then greedily selects a
//! summary under a coverage budget — *without any fairness consideration*.
//! The paper (§7.1) notes that applied to our setting it "can be viewed as
//! a solution to our problem with only an overall coverage constraint",
//! which is exactly how we instantiate it: FairCap's machinery with
//! `FairnessConstraint::None` and a population-only group-coverage
//! constraint.

use faircap_core::{
    CoverageConstraint, FairnessConstraint, PrescriptionSession, Result, SolutionReport,
    SolveRequest,
};

/// Run the CauSumX-style baseline: utility-only treatment mining + greedy
/// summary under an overall coverage constraint of `theta`.
///
/// Takes a prepared [`PrescriptionSession`], so running the baseline after
/// (or before) FairCap variants on the same session reuses every cached
/// CATE estimate.
pub fn causumx(session: &PrescriptionSession, theta: f64) -> Result<SolutionReport> {
    let request = SolveRequest::default()
        .fairness(FairnessConstraint::None)
        .coverage(CoverageConstraint::Group {
            theta,
            theta_protected: 0.0,
        });
    let mut report = session.solve(&request)?;
    report.label = format!("CauSumX (θ={theta})");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_core::FairCap;
    use faircap_table::{Pattern, Value};

    #[test]
    fn causumx_ignores_fairness() {
        // Planted: unfair treatment has double the overall effect.
        let scm = Scm::new()
            .categorical("seg", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "t",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "o",
                &["grp", "t"],
                Box::new(|row, rng| {
                    let mut v = 10.0;
                    if row.str("t") == "yes" {
                        v += if row.str("grp") == "p" { 2.0 } else { 20.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 2.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 31).unwrap();
        let dag = scm.dag();
        let session = FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("o")
            .immutable(["seg", "grp"])
            .mutable(["t"])
            .protected(Pattern::of_eq(&[("grp", Value::from("p"))]))
            .build()
            .unwrap();
        let report = causumx(&session, 0.5).unwrap();
        assert!(report.label.contains("CauSumX"));
        assert!(!report.rules.is_empty());
        assert!(report.summary.coverage >= 0.5);
        // No fairness: the disparity survives.
        assert!(
            report.summary.unfairness > 5.0,
            "unfairness {} should stay large",
            report.summary.unfairness
        );
    }
}
