//! Outcome binarization for the prediction-rule baselines.
//!
//! IDS and FRL assume a binary label; the paper "binned the salary variable
//! in SO using the average value" (§7.1). Boolean outcomes pass through.

use faircap_table::{Column, DataFrame, Mask, Result, TableError};

/// Binary label per row: `true` = positive class ("high outcome").
///
/// Numeric outcomes are thresholded at their mean; boolean outcomes map
/// directly.
pub fn binarize_outcome(df: &DataFrame, outcome: &str) -> Result<Vec<bool>> {
    let col = df.column(outcome)?;
    match col {
        Column::Bool(v) => Ok(v.clone()),
        Column::Int(_) | Column::Float(_) => {
            let mean = col
                .mean(&Mask::ones(df.n_rows()))
                .expect("numeric column with rows has a mean");
            Ok((0..df.n_rows())
                .map(|i| col.get_f64(i).unwrap() >= mean)
                .collect())
        }
        Column::Cat(_) => Err(TableError::TypeMismatch {
            column: outcome.to_owned(),
            expected: "numeric or boolean",
            actual: "categorical",
        }),
    }
}

/// Positive-class rate over the rows of `mask`.
pub fn positive_rate(labels: &[bool], mask: &Mask) -> f64 {
    let n = mask.count();
    if n == 0 {
        return 0.0;
    }
    let pos = mask.iter_ones().filter(|&i| labels[i]).count();
    pos as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    #[test]
    fn numeric_thresholds_at_mean() {
        let df = DataFrame::builder()
            .float("o", vec![10.0, 20.0, 30.0, 40.0])
            .build()
            .unwrap();
        let labels = binarize_outcome(&df, "o").unwrap();
        // mean = 25 → [false, false, true, true]
        assert_eq!(labels, vec![false, false, true, true]);
    }

    #[test]
    fn bool_passes_through() {
        let df = DataFrame::builder()
            .bool("o", vec![true, false, true])
            .build()
            .unwrap();
        assert_eq!(binarize_outcome(&df, "o").unwrap(), vec![true, false, true]);
    }

    #[test]
    fn categorical_rejected() {
        let df = DataFrame::builder().cat("o", &["a", "b"]).build().unwrap();
        assert!(binarize_outcome(&df, "o").is_err());
    }

    #[test]
    fn positive_rate_over_mask() {
        let labels = vec![true, false, true, true];
        assert_eq!(positive_rate(&labels, &Mask::ones(4)), 0.75);
        assert_eq!(positive_rate(&labels, &Mask::from_indices(4, &[1, 2])), 0.5);
        assert_eq!(positive_rate(&labels, &Mask::zeros(4)), 0.0);
    }
}
