//! The paper's two adaptations of prediction-rule baselines (§7.1): treat
//! the IF clauses mined by IDS/FRL either as FairCap *grouping patterns*
//! (then run FairCap's step 2 to find interventions) or as *intervention
//! patterns* applied to the entire population.

use faircap_core::algorithm::intervention::{mine_intervention, subgroup_utility};
use faircap_core::{
    ruleset_utility, FairCapConfig, PrescriptionSession, Result, Rule, RuleUtility, SolutionReport,
    StepTimings,
};
use faircap_table::{Mask, Pattern};
use std::time::Instant;

/// Which adaptation to apply to baseline IF clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfClauseRole {
    /// IF clause → grouping pattern; interventions mined by step 2.
    Grouping,
    /// IF clause → intervention pattern; grouping = entire dataset.
    Intervention,
}

/// Adapt baseline IF clauses into prescription rules and evaluate them with
/// FairCap's metrics (the IDS/FRL rows of Table 4).
///
/// Following the paper, clauses are used **as mined**: baseline prediction
/// rules freely mix mutable and immutable attributes (one of the paper's
/// qualitative criticisms — their "interventions" can be non-actionable,
/// e.g. `gdp_group = high`). Duplicate clauses are merged.
///
/// Runs against a prepared [`PrescriptionSession`], sharing its CATE
/// caches; a clause whose pattern references unknown columns surfaces as a
/// typed error instead of a panic.
pub fn adapt_if_clauses(
    session: &PrescriptionSession,
    if_clauses: &[Pattern],
    role: IfClauseRole,
    label: &str,
    config: &FairCapConfig,
) -> Result<SolutionReport> {
    let start = Instant::now();
    let df = session.df();
    let protected_mask = session.protected_mask();
    let query = session.engine().with_estimator(&config.estimator);

    let mut clauses: Vec<Pattern> = if_clauses
        .iter()
        .filter(|p| !p.is_empty())
        .cloned()
        .collect();
    clauses.sort();
    clauses.dedup();

    let mut rules: Vec<Rule> = Vec::new();
    match role {
        IfClauseRole::Grouping => {
            for grouping in &clauses {
                let coverage = grouping.coverage(df)?;
                if let Some(rule) = mine_intervention(
                    &query,
                    grouping,
                    &coverage,
                    protected_mask,
                    session.mutable(),
                    config,
                ) {
                    rules.push(rule);
                }
            }
        }
        IfClauseRole::Intervention => {
            let everyone = Mask::ones(df.n_rows());
            let cov_p = &everyone & protected_mask;
            let cov_np = everyone.andnot(protected_mask);
            for intervention in &clauses {
                let Some(est) = query.cate(&everyone, intervention) else {
                    continue;
                };
                if est.cate <= 0.0 {
                    continue; // negative-utility rules are discarded (§4.3)
                }
                let u_p = subgroup_utility(&query, &cov_p, intervention, est.cate);
                let u_np = subgroup_utility(&query, &cov_np, intervention, est.cate);
                let utility = RuleUtility {
                    overall: est.cate,
                    protected: u_p,
                    non_protected: u_np,
                    p_value: est.p_value,
                };
                rules.push(Rule {
                    grouping: Pattern::empty(),
                    intervention: intervention.clone(),
                    coverage: everyone.clone(),
                    coverage_protected: cov_p.clone(),
                    utility,
                    benefit: utility.overall,
                });
            }
        }
    }

    let refs: Vec<&Rule> = rules.iter().collect();
    let summary = ruleset_utility(&refs, df.n_rows(), protected_mask);
    let elapsed = start.elapsed();
    Ok(SolutionReport {
        label: label.to_owned(),
        n_candidates: rules.len(),
        n_grouping_patterns: clauses.len(),
        rules,
        summary,
        constraints_met: true, // baselines carry no constraints
        timings: StepTimings {
            grouping: std::time::Duration::ZERO,
            intervention: elapsed,
            greedy: std::time::Duration::ZERO,
        },
        stats: faircap_core::SolveStats::default(),
        exec: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_core::FairCap;
    use faircap_table::Value;

    fn session() -> PrescriptionSession {
        let scm = Scm::new()
            .categorical("seg", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "t",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "o",
                &["grp", "t", "seg"],
                Box::new(|row, rng| {
                    let mut v = 10.0;
                    if row.str("seg") == "a" {
                        v += 3.0;
                    }
                    if row.str("t") == "yes" {
                        v += if row.str("grp") == "p" { 4.0 } else { 12.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 2.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 77).unwrap();
        let dag = scm.dag();
        FairCap::builder()
            .data(df)
            .dag(dag)
            .outcome("o")
            .immutable(["seg", "grp"])
            .mutable(["t"])
            .protected(Pattern::of_eq(&[("grp", Value::from("p"))]))
            .build()
            .unwrap()
    }

    #[test]
    fn grouping_adaptation_mines_interventions() {
        let s = session();
        // Baseline IF clauses mixing mutable + immutable attributes.
        let clauses = vec![
            Pattern::of_eq(&[("seg", Value::from("a")), ("t", Value::from("yes"))]),
            Pattern::of_eq(&[("seg", Value::from("b"))]),
        ];
        let report = adapt_if_clauses(
            &s,
            &clauses,
            IfClauseRole::Grouping,
            "IDS (IF as grouping)",
            &FairCapConfig::default(),
        )
        .unwrap();
        // The first clause pins `t = yes`, so no contrast exists within its
        // group and only the `seg = b` clause yields a rule.
        assert_eq!(report.rules.len(), 1);
        assert_eq!(report.rules[0].grouping.to_string(), "seg = b");
        assert!(report.rules[0].intervention.to_string().contains("t ="));
        assert!(report.summary.expected > 0.0);
    }

    #[test]
    fn intervention_adaptation_covers_everyone() {
        let s = session();
        let clauses = vec![Pattern::of_eq(&[("t", Value::from("yes"))])];
        let report = adapt_if_clauses(
            &s,
            &clauses,
            IfClauseRole::Intervention,
            "FRL (IF as intervention)",
            &FairCapConfig::default(),
        )
        .unwrap();
        assert_eq!(report.rules.len(), 1);
        assert!((report.summary.coverage - 1.0).abs() < 1e-12);
        // measured effect ≈ planted mix (0.3·4 + 0.7·12 = 9.6)
        assert!(
            (report.rules[0].utility.overall - 9.6).abs() < 1.5,
            "overall {}",
            report.rules[0].utility.overall
        );
        // and the protected/non-protected split shows the planted disparity
        let u = &report.rules[0].utility;
        assert!(u.non_protected > u.protected + 4.0);
    }

    #[test]
    fn mixed_clauses_are_kept_as_is() {
        // Baseline clauses mixing mutable and immutable attributes stay
        // intact — the paper's criticism that such "interventions" are not
        // actionable is part of the reproduction.
        let s = session();
        let clauses = vec![Pattern::of_eq(&[
            ("seg", Value::from("a")),
            ("t", Value::from("yes")),
        ])];
        let report = adapt_if_clauses(
            &s,
            &clauses,
            IfClauseRole::Intervention,
            "x",
            &FairCapConfig::default(),
        )
        .unwrap();
        assert_eq!(report.rules.len(), 1);
        assert!(report.rules[0].intervention.to_string().contains("seg = a"));
    }

    #[test]
    fn duplicate_clauses_merged() {
        let s = session();
        let clause = Pattern::of_eq(&[("t", Value::from("yes"))]);
        let report = adapt_if_clauses(
            &s,
            &[clause.clone(), clause],
            IfClauseRole::Intervention,
            "x",
            &FairCapConfig::default(),
        )
        .unwrap();
        assert_eq!(report.rules.len(), 1);
    }

    #[test]
    fn unknown_clause_column_is_a_typed_error() {
        let s = session();
        let clauses = vec![Pattern::of_eq(&[("ghost", Value::from("x"))])];
        let err = adapt_if_clauses(
            &s,
            &clauses,
            IfClauseRole::Grouping,
            "x",
            &FairCapConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }
}
