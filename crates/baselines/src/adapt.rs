//! The paper's two adaptations of prediction-rule baselines (§7.1): treat
//! the IF clauses mined by IDS/FRL either as FairCap *grouping patterns*
//! (then run FairCap's step 2 to find interventions) or as *intervention
//! patterns* applied to the entire population.

use faircap_causal::CateEngine;
use faircap_core::algorithm::intervention::{mine_intervention, subgroup_utility};
use faircap_core::{
    ruleset_utility, FairCapConfig, ProblemInput, Rule, RuleUtility, SolutionReport, StepTimings,
};
use faircap_table::{Mask, Pattern};
use std::time::Instant;

/// Which adaptation to apply to baseline IF clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfClauseRole {
    /// IF clause → grouping pattern; interventions mined by step 2.
    Grouping,
    /// IF clause → intervention pattern; grouping = entire dataset.
    Intervention,
}

/// Adapt baseline IF clauses into prescription rules and evaluate them with
/// FairCap's metrics (the IDS/FRL rows of Table 4).
///
/// Following the paper, clauses are used **as mined**: baseline prediction
/// rules freely mix mutable and immutable attributes (one of the paper's
/// qualitative criticisms — their "interventions" can be non-actionable,
/// e.g. `gdp_group = high`). Duplicate clauses are merged.
pub fn adapt_if_clauses(
    input: &ProblemInput<'_>,
    if_clauses: &[Pattern],
    role: IfClauseRole,
    label: &str,
    config: &FairCapConfig,
) -> SolutionReport {
    let start = Instant::now();
    let protected_mask = input
        .protected
        .coverage(input.df)
        .expect("protected pattern evaluates");
    let engine = CateEngine::new(input.df, input.dag, input.outcome, config.estimator);

    let mut clauses: Vec<Pattern> = if_clauses
        .iter()
        .filter(|p| !p.is_empty())
        .cloned()
        .collect();
    clauses.sort();
    clauses.dedup();

    let mut rules: Vec<Rule> = Vec::new();
    match role {
        IfClauseRole::Grouping => {
            for grouping in &clauses {
                let coverage = grouping.coverage(input.df).expect("pattern evaluates");
                if let Some(rule) = mine_intervention(
                    &engine,
                    grouping,
                    &coverage,
                    &protected_mask,
                    input.mutable,
                    config,
                ) {
                    rules.push(rule);
                }
            }
        }
        IfClauseRole::Intervention => {
            let everyone = Mask::ones(input.df.n_rows());
            let cov_p = &everyone & &protected_mask;
            let cov_np = everyone.andnot(&protected_mask);
            for intervention in &clauses {
                let Some(est) = engine.cate(&everyone, intervention) else {
                    continue;
                };
                if est.cate <= 0.0 {
                    continue; // negative-utility rules are discarded (§4.3)
                }
                let u_p = subgroup_utility(&engine, &cov_p, intervention, est.cate);
                let u_np = subgroup_utility(&engine, &cov_np, intervention, est.cate);
                let utility = RuleUtility {
                    overall: est.cate,
                    protected: u_p,
                    non_protected: u_np,
                    p_value: est.p_value,
                };
                rules.push(Rule {
                    grouping: Pattern::empty(),
                    intervention: intervention.clone(),
                    coverage: everyone.clone(),
                    coverage_protected: cov_p.clone(),
                    utility,
                    benefit: utility.overall,
                });
            }
        }
    }

    let refs: Vec<&Rule> = rules.iter().collect();
    let summary = ruleset_utility(&refs, input.df.n_rows(), &protected_mask);
    let elapsed = start.elapsed();
    SolutionReport {
        label: label.to_owned(),
        n_candidates: rules.len(),
        n_grouping_patterns: clauses.len(),
        rules,
        summary,
        constraints_met: true, // baselines carry no constraints
        timings: StepTimings {
            grouping: std::time::Duration::ZERO,
            intervention: elapsed,
            greedy: std::time::Duration::ZERO,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_causal::scm::{bernoulli, normal, Scm};
    use faircap_causal::Dag;
    use faircap_table::{DataFrame, Value};

    fn fixture() -> (DataFrame, Dag, Vec<String>, Vec<String>, Pattern) {
        let scm = Scm::new()
            .categorical("seg", &[("a", 0.5), ("b", 0.5)])
            .unwrap()
            .categorical("grp", &[("p", 0.3), ("np", 0.7)])
            .unwrap()
            .node(
                "t",
                &[],
                Box::new(|_, rng| {
                    Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())
                }),
            )
            .unwrap()
            .node(
                "o",
                &["grp", "t", "seg"],
                Box::new(|row, rng| {
                    let mut v = 10.0;
                    if row.str("seg") == "a" {
                        v += 3.0;
                    }
                    if row.str("t") == "yes" {
                        v += if row.str("grp") == "p" { 4.0 } else { 12.0 };
                    }
                    Value::Float(v + normal(rng, 0.0, 2.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 77).unwrap();
        let dag = scm.dag();
        (
            df,
            dag,
            vec!["seg".into(), "grp".into()],
            vec!["t".into()],
            Pattern::of_eq(&[("grp", Value::from("p"))]),
        )
    }

    #[test]
    fn grouping_adaptation_mines_interventions() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "o",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        // Baseline IF clauses mixing mutable + immutable attributes.
        let clauses = vec![
            Pattern::of_eq(&[("seg", Value::from("a")), ("t", Value::from("yes"))]),
            Pattern::of_eq(&[("seg", Value::from("b"))]),
        ];
        let report = adapt_if_clauses(
            &input,
            &clauses,
            IfClauseRole::Grouping,
            "IDS (IF as grouping)",
            &FairCapConfig::default(),
        );
        // The first clause pins `t = yes`, so no contrast exists within its
        // group and only the `seg = b` clause yields a rule.
        assert_eq!(report.rules.len(), 1);
        assert_eq!(report.rules[0].grouping.to_string(), "seg = b");
        assert!(report.rules[0].intervention.to_string().contains("t ="));
        assert!(report.summary.expected > 0.0);
    }

    #[test]
    fn intervention_adaptation_covers_everyone() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "o",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let clauses = vec![Pattern::of_eq(&[("t", Value::from("yes"))])];
        let report = adapt_if_clauses(
            &input,
            &clauses,
            IfClauseRole::Intervention,
            "FRL (IF as intervention)",
            &FairCapConfig::default(),
        );
        assert_eq!(report.rules.len(), 1);
        assert!((report.summary.coverage - 1.0).abs() < 1e-12);
        // measured effect ≈ planted mix (0.3·4 + 0.7·12 = 9.6)
        assert!(
            (report.rules[0].utility.overall - 9.6).abs() < 1.5,
            "overall {}",
            report.rules[0].utility.overall
        );
        // and the protected/non-protected split shows the planted disparity
        let u = &report.rules[0].utility;
        assert!(u.non_protected > u.protected + 4.0);
    }

    #[test]
    fn mixed_clauses_are_kept_as_is() {
        // Baseline clauses mixing mutable and immutable attributes stay
        // intact — the paper's criticism that such "interventions" are not
        // actionable is part of the reproduction.
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "o",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let clauses = vec![Pattern::of_eq(&[
            ("seg", Value::from("a")),
            ("t", Value::from("yes")),
        ])];
        let report = adapt_if_clauses(
            &input,
            &clauses,
            IfClauseRole::Intervention,
            "x",
            &FairCapConfig::default(),
        );
        assert_eq!(report.rules.len(), 1);
        assert!(report.rules[0]
            .intervention
            .to_string()
            .contains("seg = a"));
    }

    #[test]
    fn duplicate_clauses_merged() {
        let (df, dag, imm, mt, prot) = fixture();
        let input = ProblemInput {
            df: &df,
            dag: &dag,
            outcome: "o",
            immutable: &imm,
            mutable: &mt,
            protected: &prot,
        };
        let clause = Pattern::of_eq(&[("t", Value::from("yes"))]);
        let report = adapt_if_clauses(
            &input,
            &[clause.clone(), clause],
            IfClauseRole::Intervention,
            "x",
            &FairCapConfig::default(),
        );
        assert_eq!(report.rules.len(), 1);
    }
}
