//! Falling Rule Lists (Wang & Rudin, AISTATS 2015; optimization variant
//! Chen & Rudin 2018).
//!
//! An FRL is an *ordered* list of IF-THEN rules whose positive-class
//! probabilities are monotonically non-increasing: the first rule captures
//! the highest-risk (here: highest-outcome) stratum, and so on, ending in a
//! default rule. The original learns the list with Bayesian/combinatorial
//! search; we use the standard greedy construction — repeatedly take the
//! frequent pattern with the highest positive rate among *not-yet-covered*
//! rows, subject to the monotonicity constraint — which preserves the
//! model class and its ordering semantics.

use crate::binarize::{binarize_outcome, positive_rate};
use faircap_mining::{apriori, AprioriConfig};
use faircap_table::{DataFrame, Mask, Pattern, Result};

/// One stratum of a falling rule list.
#[derive(Debug, Clone)]
pub struct FrlRule {
    /// IF clause.
    pub pattern: Pattern,
    /// Positive-class probability among rows first captured by this rule.
    pub probability: f64,
    /// Rows captured (not covered by any earlier rule).
    pub captured: Mask,
}

/// FRL hyper-parameters.
#[derive(Debug, Clone)]
pub struct FrlConfig {
    /// Support threshold for candidate mining.
    pub min_support: f64,
    /// Maximum predicates per pattern.
    pub max_len: usize,
    /// Maximum list length (excluding the default rule).
    pub max_rules: usize,
    /// Minimum rows a rule must newly capture.
    pub min_capture: usize,
}

impl Default for FrlConfig {
    fn default() -> Self {
        FrlConfig {
            min_support: 0.05,
            max_len: 2,
            max_rules: 9,
            min_capture: 20,
        }
    }
}

/// A learned falling rule list.
#[derive(Debug, Clone)]
pub struct FallingRuleList {
    /// Ordered rules, probabilities non-increasing.
    pub rules: Vec<FrlRule>,
    /// Positive probability of the default (else) rule.
    pub default_probability: f64,
}

impl FallingRuleList {
    /// Predicted positive probability for a row.
    pub fn predict(&self, df: &DataFrame, row: usize) -> Result<f64> {
        for r in &self.rules {
            if r.pattern.matches_row(df, row)? {
                return Ok(r.probability);
            }
        }
        Ok(self.default_probability)
    }
}

/// Learn a falling rule list over the named attributes.
pub fn learn_falling_rule_list(
    df: &DataFrame,
    attributes: &[String],
    outcome: &str,
    config: &FrlConfig,
) -> Result<FallingRuleList> {
    let labels = binarize_outcome(df, outcome)?;
    let all = Mask::ones(df.n_rows());
    let frequent = apriori(
        df,
        attributes,
        &all,
        &AprioriConfig {
            min_support: config.min_support,
            max_len: config.max_len,
            max_values_per_attr: 16,
        },
    )?;

    let mut remaining = all.clone();
    let mut rules: Vec<FrlRule> = Vec::new();
    let mut prev_prob = 1.0f64;
    while rules.len() < config.max_rules && remaining.any() {
        // Candidate score: positive rate among the rows it would capture.
        let mut best: Option<(usize, f64, Mask)> = None;
        for (idx, f) in frequent.iter().enumerate() {
            let captured = &f.support & &remaining;
            if captured.count() < config.min_capture {
                continue;
            }
            let rate = positive_rate(&labels, &captured);
            if rate > prev_prob + 1e-12 {
                continue; // would break the falling property
            }
            let better = match &best {
                None => true,
                Some((_, r, _)) => {
                    rate > *r + 1e-12
                        || ((rate - *r).abs() <= 1e-12
                            && captured.count() > best.as_ref().unwrap().2.count())
                }
            };
            if better {
                best = Some((idx, rate, captured));
            }
        }
        let Some((idx, rate, captured)) = best else {
            break;
        };
        // Stop once the best stratum is no better than what remains overall.
        let remaining_rate = positive_rate(&labels, &remaining);
        if rate <= remaining_rate + 1e-9 {
            break;
        }
        remaining.andnot_inplace(&captured);
        rules.push(FrlRule {
            pattern: frequent[idx].pattern.clone(),
            probability: rate,
            captured,
        });
        prev_prob = rate;
    }
    let default_probability = positive_rate(&labels, &remaining);
    Ok(FallingRuleList {
        rules,
        default_probability,
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively
mod tests {
    use super::*;

    /// tier=a rows are 90% positive, tier=b 50%, tier=c 10%.
    fn df() -> DataFrame {
        let mut tier = Vec::new();
        let mut o = Vec::new();
        for i in 0..300 {
            let (t, positive) = match i % 3 {
                0 => ("a", i % 10 != 0), // 90%
                1 => ("b", i % 2 == 0),  // 50%
                _ => ("c", i % 10 == 0), // 10%
            };
            tier.push(t);
            o.push(if positive { 1.0 } else { 0.0 });
        }
        DataFrame::builder()
            .cat("tier", &tier)
            .float("o", o)
            .build()
            .unwrap()
    }

    #[test]
    fn probabilities_are_falling() {
        let frl =
            learn_falling_rule_list(&df(), &["tier".into()], "o", &FrlConfig::default()).unwrap();
        assert!(!frl.rules.is_empty());
        for w in frl.rules.windows(2) {
            assert!(
                w[0].probability >= w[1].probability - 1e-12,
                "probabilities must fall: {} then {}",
                w[0].probability,
                w[1].probability
            );
        }
        if let Some(last) = frl.rules.last() {
            assert!(last.probability >= frl.default_probability - 1e-9);
        }
    }

    #[test]
    fn highest_tier_selected_first() {
        let frl =
            learn_falling_rule_list(&df(), &["tier".into()], "o", &FrlConfig::default()).unwrap();
        assert_eq!(frl.rules[0].pattern.to_string(), "tier = a");
        assert!((frl.rules[0].probability - 0.9).abs() < 0.02);
    }

    #[test]
    fn captured_rows_are_disjoint() {
        let frl =
            learn_falling_rule_list(&df(), &["tier".into()], "o", &FrlConfig::default()).unwrap();
        for i in 0..frl.rules.len() {
            for j in i + 1..frl.rules.len() {
                assert_eq!(
                    frl.rules[i]
                        .captured
                        .intersect_count(&frl.rules[j].captured),
                    0
                );
            }
        }
    }

    #[test]
    fn predict_uses_first_match() {
        let d = df();
        let frl =
            learn_falling_rule_list(&d, &["tier".into()], "o", &FrlConfig::default()).unwrap();
        // row 0 has tier=a
        let p = frl.predict(&d, 0).unwrap();
        assert!((p - frl.rules[0].probability).abs() < 1e-12);
    }

    #[test]
    fn max_rules_cap() {
        let mut cfg = FrlConfig::default();
        cfg.max_rules = 1;
        let frl = learn_falling_rule_list(&df(), &["tier".into()], "o", &cfg).unwrap();
        assert!(frl.rules.len() <= 1);
    }
}
