//! # faircap-baselines
//!
//! The three baselines of the paper's evaluation (§7.1), plus the IF-clause
//! adaptation machinery:
//!
//! * [`causumx`](mod@causumx) — CauSumX-style utility-only greedy (no
//!   fairness), the
//!   paper's positioning of its closest prior work.
//! * [`ids`] — Interpretable Decision Sets (Lakkaraju et al. 2016):
//!   unordered IF-THEN prediction rules via a seven-term submodular
//!   objective with greedy maximization.
//! * [`frl`] — Falling Rule Lists (Wang & Rudin 2015): an ordered
//!   prediction list with monotonically non-increasing positive rates.
//! * [`adapt`] — the paper's two evaluation adaptations: IF clauses as
//!   grouping patterns (step 2 mines interventions) or as intervention
//!   patterns over the whole population.

#![warn(missing_docs)]

pub mod adapt;
pub mod binarize;
pub mod causumx;
pub mod frl;
pub mod ids;

pub use adapt::{adapt_if_clauses, IfClauseRole};
pub use causumx::causumx;
pub use frl::{learn_falling_rule_list, FallingRuleList, FrlConfig, FrlRule};
pub use ids::{learn_decision_set, DecisionSet, IdsConfig, IdsRule};
