//! Positive-parent lattice traversal (FairCap §5.2).
//!
//! The space of intervention patterns forms a lattice where the children of
//! a pattern add one predicate. Following the paper (and CauSumX), a node is
//! materialized and evaluated **only when all of its parents scored
//! positive** — combining positive-effect treatments is likely to stay
//! positive, while expanding negative ones is wasted work. The traversal is
//! generic over the scoring function, so the core crate can plug in
//! fairness-penalized benefit scores.

use faircap_table::{Mask, Pattern, Predicate};
use std::collections::{HashMap, HashSet};

/// An evaluated lattice node.
#[derive(Debug, Clone)]
pub struct LatticeNode<S> {
    /// The pattern at this node.
    pub pattern: Pattern,
    /// Rows satisfying the pattern (support within the caller's universe).
    pub mask: Mask,
    /// The caller-provided score.
    pub score: S,
}

/// Traverse the lattice over `items` up to `max_len` predicates.
///
/// `evaluate(pattern, mask)` returns `Some(score)` when the node is valid
/// (e.g. the CATE is estimable); `is_positive(score)` gates expansion: a
/// candidate is evaluated only when **all** its length-(k−1) sub-patterns
/// were evaluated and positive. Returns every evaluated node.
///
/// Items must have pairwise-distinct predicates; candidates never combine
/// two predicates on the same attribute.
pub fn positive_lattice<S: Clone>(
    items: &[(Predicate, Mask)],
    max_len: usize,
    mut evaluate: impl FnMut(&Pattern, &Mask) -> Option<S>,
    is_positive: impl Fn(&S) -> bool,
) -> Vec<LatticeNode<S>> {
    let mut out: Vec<LatticeNode<S>> = Vec::new();
    // Frontier of positive nodes at the current level.
    let mut frontier: Vec<LatticeNode<S>> = Vec::new();
    for (pred, mask) in items {
        let pattern = Pattern::new(vec![pred.clone()]);
        if let Some(score) = evaluate(&pattern, mask) {
            let node = LatticeNode {
                pattern,
                mask: mask.clone(),
                score,
            };
            if is_positive(&node.score) {
                frontier.push(node.clone());
            }
            out.push(node);
        }
    }
    frontier.sort_by(|a, b| a.pattern.cmp(&b.pattern));

    let mut level = 1;
    while level < max_len && frontier.len() > 1 {
        let positive_keys: HashSet<&Pattern> = frontier.iter().map(|n| &n.pattern).collect();
        let masks: HashMap<&Pattern, &Mask> =
            frontier.iter().map(|n| (&n.pattern, &n.mask)).collect();
        let mut next: Vec<LatticeNode<S>> = Vec::new();
        let mut seen: HashSet<Pattern> = HashSet::new();
        for i in 0..frontier.len() {
            for j in i + 1..frontier.len() {
                let Some(candidate) = join(&frontier[i].pattern, &frontier[j].pattern) else {
                    continue;
                };
                if !seen.insert(candidate.clone()) {
                    continue;
                }
                // All parents must be positive (they must be in the frontier).
                if !candidate
                    .parents()
                    .iter()
                    .all(|p| positive_keys.contains(p))
                {
                    continue;
                }
                let mask = &frontier[i].mask & &frontier[j].mask;
                debug_assert!(masks.contains_key(&frontier[i].pattern));
                if let Some(score) = evaluate(&candidate, &mask) {
                    let node = LatticeNode {
                        pattern: candidate,
                        mask,
                        score,
                    };
                    out.push(node.clone());
                    if is_positive(&node.score) {
                        next.push(node);
                    }
                }
            }
        }
        next.sort_by(|a, b| a.pattern.cmp(&b.pattern));
        frontier = next;
        level += 1;
    }
    out
}

/// Same prefix-join as Apriori (shared length-(k−1) prefix, distinct final
/// attributes).
fn join(a: &Pattern, b: &Pattern) -> Option<Pattern> {
    let pa = a.predicates();
    let pb = b.predicates();
    if pa.len() != pb.len() || pa.is_empty() {
        return None;
    }
    let k = pa.len();
    if pa[..k - 1] != pb[..k - 1] {
        return None;
    }
    if pa[k - 1].attr == pb[k - 1].attr {
        return None;
    }
    Some(a.with(pb[k - 1].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::Value;

    /// Items a, b, c over 8 rows; scores assigned per pattern via a closure.
    fn items() -> Vec<(Predicate, Mask)> {
        vec![
            (
                Predicate::eq("a", Value::Int(1)),
                Mask::from_indices(8, &[0, 1, 2, 3]),
            ),
            (
                Predicate::eq("b", Value::Int(1)),
                Mask::from_indices(8, &[2, 3, 4, 5]),
            ),
            (
                Predicate::eq("c", Value::Int(1)),
                Mask::from_indices(8, &[3, 5, 6, 7]),
            ),
        ]
    }

    #[test]
    fn all_positive_explores_everything() {
        let nodes = positive_lattice(&items(), 3, |_, _| Some(1.0), |&s| s > 0.0);
        // 3 singletons + 3 pairs + 1 triple.
        assert_eq!(nodes.len(), 7);
        let triple = nodes.iter().find(|n| n.pattern.len() == 3).unwrap();
        // mask of a∧b∧c = {3}
        assert_eq!(triple.mask.to_indices(), vec![3]);
    }

    #[test]
    fn negative_parent_blocks_children() {
        // "b" scores negative → no pair containing b, no triple.
        let nodes = positive_lattice(
            &items(),
            3,
            |p, _| {
                Some(if p.predicates().iter().any(|q| q.attr == "b") {
                    -1.0
                } else {
                    1.0
                })
            },
            |&s| s > 0.0,
        );
        let patterns: Vec<String> = nodes.iter().map(|n| n.pattern.to_string()).collect();
        assert!(patterns.contains(&"a = 1 ∧ c = 1".to_owned()));
        assert!(!patterns
            .iter()
            .any(|p| p.contains("b = 1 ∧") || p.contains("∧ b = 1")));
        // b itself was still evaluated at level 1.
        assert!(patterns.contains(&"b = 1".to_owned()));
        assert_eq!(nodes.len(), 4); // a, b, c, a∧c
    }

    #[test]
    fn unevaluable_nodes_are_skipped() {
        // evaluate returns None for pattern "c" → c is not a candidate parent.
        let nodes = positive_lattice(
            &items(),
            2,
            |p, _| {
                if p.predicates().iter().any(|q| q.attr == "c") && p.len() == 1 {
                    None
                } else {
                    Some(1.0)
                }
            },
            |&s| s > 0.0,
        );
        let patterns: Vec<String> = nodes.iter().map(|n| n.pattern.to_string()).collect();
        assert!(patterns.contains(&"a = 1 ∧ b = 1".to_owned()));
        assert!(!patterns.contains(&"c = 1".to_owned()));
        assert!(!patterns
            .iter()
            .any(|p| p.contains("c = 1") && p.contains('∧')));
    }

    #[test]
    fn masks_are_intersections() {
        let nodes = positive_lattice(&items(), 2, |_, _| Some(1.0), |&s| s > 0.0);
        for n in &nodes {
            if n.pattern.len() == 2 {
                let preds = n.pattern.predicates();
                let m0 = items()
                    .iter()
                    .find(|(p, _)| p == &preds[0])
                    .unwrap()
                    .1
                    .clone();
                let m1 = &items()
                    .iter()
                    .find(|(p, _)| p == &preds[1])
                    .unwrap()
                    .1
                    .clone();
                assert_eq!(n.mask, &m0 & m1, "pattern {}", n.pattern);
            }
        }
    }

    #[test]
    fn max_len_one_only_singletons() {
        let nodes = positive_lattice(&items(), 1, |_, _| Some(1.0), |&s| s > 0.0);
        assert_eq!(nodes.len(), 3);
        assert!(nodes.iter().all(|n| n.pattern.len() == 1));
    }

    #[test]
    fn score_carried_through() {
        let nodes = positive_lattice(
            &items(),
            2,
            |_, mask| Some(mask.count() as f64),
            |&s| s > 0.0,
        );
        for n in &nodes {
            assert_eq!(n.score, n.mask.count() as f64);
        }
    }
}
