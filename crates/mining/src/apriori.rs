//! The Apriori algorithm over attribute–value items (Agrawal & Srikant 1994),
//! as used by FairCap's step 1 (§5.1) to mine grouping patterns.
//!
//! Items are equality predicates `attr = value`; itemsets are conjunctive
//! [`Pattern`]s with at most one item per attribute. The representation is
//! vertical: every itemset carries its cover as a [`Mask`], so candidate
//! support is one word-fused AND+popcount over the parents' bitsets
//! ([`Mask::intersect_count`]) — the support mask is only materialized for
//! candidates that actually meet the threshold. Candidate generation is the
//! classic sorted prefix join: the frontier is kept in pattern order, so
//! k-patterns sharing a (k−1)-prefix form contiguous blocks and each
//! (k+1)-candidate is generated exactly once from the unique pair of its
//! two lexicographically largest k-subsets.

use crate::item::single_attribute_items;
use crate::MiningStats;
use faircap_table::{DataFrame, Mask, Pattern, Result};
use std::collections::HashSet;

/// Configuration for [`apriori`].
#[derive(Debug, Clone, Copy)]
pub struct AprioriConfig {
    /// Minimum support as a fraction of `|within|` (the paper's τ, default
    /// 0.1 per §6 "Default parameters").
    pub min_support: f64,
    /// Maximum pattern length (number of predicates).
    pub max_len: usize,
    /// High-cardinality guard: per attribute, only the most frequent values
    /// become items (ties broken by value order for determinism).
    pub max_values_per_attr: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            min_support: 0.1,
            max_len: 3,
            max_values_per_attr: 24,
        }
    }
}

/// A frequent pattern together with its support mask.
#[derive(Debug, Clone)]
pub struct FrequentPattern {
    /// The conjunctive pattern.
    pub pattern: Pattern,
    /// Rows covered (full-frame mask, already intersected with `within`).
    pub support: Mask,
}

impl FrequentPattern {
    /// Support count.
    pub fn count(&self) -> usize {
        self.support.count()
    }
}

/// Mine all frequent patterns over `attrs` within the row set `within`.
///
/// Returns patterns of length 1..=`max_len`, each covering at least
/// `min_support · |within|` rows, ordered by (length, pattern) for
/// determinism.
pub fn apriori(
    df: &DataFrame,
    attrs: &[String],
    within: &Mask,
    config: &AprioriConfig,
) -> Result<Vec<FrequentPattern>> {
    apriori_with_stats(df, attrs, within, config).map(|(out, _)| out)
}

/// [`apriori`] plus [`MiningStats`] accounting of the candidate pipeline
/// (generated / parent-pruned / support-pruned / materialized).
pub fn apriori_with_stats(
    df: &DataFrame,
    attrs: &[String],
    within: &Mask,
    config: &AprioriConfig,
) -> Result<(Vec<FrequentPattern>, MiningStats)> {
    let base = within.count();
    let min_count = ((config.min_support * base as f64).ceil() as usize).max(1);
    let mut stats = MiningStats::default();

    // Level 1: single-attribute items.
    let items = single_attribute_items(df, attrs, within, config.max_values_per_attr)?;
    stats.candidates += items.len() as u64;
    let mut frontier: Vec<FrequentPattern> = items
        .into_iter()
        .filter(|(_, mask)| {
            let frequent = mask.count() >= min_count;
            if !frequent {
                stats.pruned_support += 1;
            }
            frequent
        })
        .map(|(pred, mask)| FrequentPattern {
            pattern: Pattern::new(vec![pred]),
            support: mask,
        })
        .collect();
    frontier.sort_by(|a, b| a.pattern.cmp(&b.pattern));
    stats.evaluated += frontier.len() as u64;

    let mut out: Vec<FrequentPattern> = frontier.clone();
    let mut level = 1;
    while level < config.max_len && frontier.len() > 1 {
        let frequent_keys: HashSet<&Pattern> = frontier.iter().map(|f| &f.pattern).collect();
        let mut next: Vec<FrequentPattern> = Vec::new();
        // The frontier is sorted, so k-patterns sharing their (k−1)-prefix
        // are contiguous; only same-prefix pairs can join, and each
        // candidate is produced by exactly one such pair.
        for_each_prefix_pair(
            &frontier,
            |f| &f.pattern,
            |a, b| {
                let Some(candidate) = join(&a.pattern, &b.pattern) else {
                    return;
                };
                stats.candidates += 1;
                // Apriori pruning: every (k−1)-subset must be frequent.
                if !candidate
                    .parents()
                    .iter()
                    .all(|p| frequent_keys.contains(p))
                {
                    stats.pruned_parent += 1;
                    return;
                }
                // Fused AND+popcount over the parents' words; the candidate's
                // support mask is materialized only past the threshold.
                if a.support.intersect_count(&b.support) < min_count {
                    stats.pruned_support += 1;
                    return;
                }
                stats.evaluated += 1;
                next.push(FrequentPattern {
                    pattern: candidate,
                    support: &a.support & &b.support,
                });
            },
        );
        next.sort_by(|a, b| a.pattern.cmp(&b.pattern));
        out.extend(next.iter().cloned());
        frontier = next;
        level += 1;
    }
    Ok((out, stats))
}

/// Invoke `f` on every pair of frontier entries whose patterns share their
/// length-(k−1) prefix. Entries must be sorted by pattern, which makes the
/// prefix blocks contiguous — candidate generation over all blocks is
/// linear in the frontier plus quadratic only *within* each block, instead
/// of quadratic over the whole frontier.
pub(crate) fn for_each_prefix_pair<T>(
    sorted: &[T],
    pattern_of: impl Fn(&T) -> &Pattern,
    mut f: impl FnMut(&T, &T),
) {
    let mut block_start = 0;
    while block_start < sorted.len() {
        let prefix = {
            let p = pattern_of(&sorted[block_start]).predicates();
            &p[..p.len() - 1]
        };
        let mut block_end = block_start + 1;
        while block_end < sorted.len() {
            let p = pattern_of(&sorted[block_end]).predicates();
            if &p[..p.len() - 1] != prefix {
                break;
            }
            block_end += 1;
        }
        for i in block_start..block_end {
            for j in i + 1..block_end {
                f(&sorted[i], &sorted[j]);
            }
        }
        block_start = block_end;
    }
}

/// Join two k-patterns sharing all but their last predicate into a (k+1)
/// candidate; `None` when they disagree earlier, share an attribute in the
/// differing position, or have different lengths.
fn join(a: &Pattern, b: &Pattern) -> Option<Pattern> {
    let pa = a.predicates();
    let pb = b.predicates();
    if pa.len() != pb.len() || pa.is_empty() {
        return None;
    }
    let k = pa.len();
    if pa[..k - 1] != pb[..k - 1] {
        return None;
    }
    let (la, lb) = (&pa[k - 1], &pb[k - 1]);
    if la.attr == lb.attr {
        return None; // one item per attribute
    }
    Some(a.with(lb.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::Value;

    fn df() -> DataFrame {
        // 12 rows; country ∈ {US×6, IN×4, DE×2}, student ∈ {yes×4, no×8}
        let countries: Vec<&str> = ["US"; 6]
            .into_iter()
            .chain(["IN"; 4])
            .chain(["DE"; 2])
            .collect();
        let students: Vec<&str> = (0..12)
            .map(|i| if i % 3 == 0 { "yes" } else { "no" })
            .collect();
        DataFrame::builder()
            .cat("country", &countries)
            .cat("student", &students)
            .float("salary", (0..12).map(|i| i as f64).collect())
            .build()
            .unwrap()
    }

    fn run(min_support: f64, max_len: usize) -> Vec<FrequentPattern> {
        let d = df();
        apriori(
            &d,
            &["country".into(), "student".into()],
            &Mask::ones(12),
            &AprioriConfig {
                min_support,
                max_len,
                max_values_per_attr: 10,
            },
        )
        .unwrap()
    }

    #[test]
    fn singletons_respect_threshold() {
        // min_support 0.25 → min_count 3: US(6), IN(4), no(8), yes(4). DE(2) out.
        let got = run(0.25, 1);
        let names: Vec<String> = got.iter().map(|f| f.pattern.to_string()).collect();
        assert!(names.contains(&"country = US".to_owned()));
        assert!(names.contains(&"country = IN".to_owned()));
        assert!(!names.iter().any(|n| n.contains("DE")));
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn pairs_are_joined_correctly() {
        // min_count 2: pairs like US∧no (4 rows: indices 1,2,4,5).
        let got = run(2.0 / 12.0, 2);
        let us_no = got
            .iter()
            .find(|f| f.pattern.to_string() == "country = US ∧ student = no")
            .expect("US∧no should be frequent");
        assert_eq!(us_no.count(), 4);
        // support mask equals direct coverage
        let direct = us_no.pattern.coverage(&df()).unwrap();
        assert_eq!(us_no.support, direct);
    }

    #[test]
    fn no_two_items_same_attribute() {
        let got = run(0.05, 3);
        for f in &got {
            let attrs = f.pattern.attributes();
            let mut dedup = attrs.clone();
            dedup.dedup();
            assert_eq!(attrs.len(), dedup.len(), "pattern {}", f.pattern);
        }
    }

    #[test]
    fn downward_closure_holds() {
        // Every parent of a frequent pattern is itself frequent.
        let got = run(0.2, 3);
        let keys: HashSet<&Pattern> = got.iter().map(|f| &f.pattern).collect();
        for f in &got {
            if f.pattern.len() > 1 {
                for p in f.pattern.parents() {
                    assert!(keys.contains(&p), "parent {p} of {} missing", f.pattern);
                }
            }
        }
        // And support is monotone non-increasing with specialization.
        for f in got.iter().filter(|f| f.pattern.len() > 1) {
            for p in f.pattern.parents() {
                let parent = got.iter().find(|g| g.pattern == p).unwrap();
                assert!(parent.count() >= f.count());
            }
        }
    }

    #[test]
    fn within_restricts_the_universe() {
        let d = df();
        // Only the first 6 rows (all US).
        let within = Mask::from_indices(12, &(0..6).collect::<Vec<_>>());
        let got = apriori(
            &d,
            &["country".into()],
            &within,
            &AprioriConfig {
                min_support: 0.5,
                max_len: 1,
                max_values_per_attr: 10,
            },
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pattern.to_string(), "country = US");
        assert_eq!(got[0].count(), 6);
    }

    #[test]
    fn max_len_caps_pattern_size() {
        for cap in 1..=3 {
            let got = run(0.05, cap);
            assert!(got.iter().all(|f| f.pattern.len() <= cap));
        }
    }

    #[test]
    fn numeric_attributes_make_items_when_low_cardinality() {
        let d = DataFrame::builder()
            .int("bucket", vec![1, 1, 1, 2, 2, 2])
            .build()
            .unwrap();
        let got = apriori(
            &d,
            &["bucket".into()],
            &Mask::ones(6),
            &AprioriConfig::default(),
        )
        .unwrap();
        assert_eq!(got.len(), 2);
        assert!(got
            .iter()
            .any(|f| f.pattern.predicates()[0].value == Value::Int(1)));
    }

    #[test]
    fn deterministic_output_order() {
        let a = run(0.1, 3);
        let b = run(0.1, 3);
        let pa: Vec<String> = a.iter().map(|f| f.pattern.to_string()).collect();
        let pb: Vec<String> = b.iter().map(|f| f.pattern.to_string()).collect();
        assert_eq!(pa, pb);
    }
}
