//! Attribute–value items: the atoms of grouping and intervention patterns.

use faircap_table::{Column, DataFrame, Mask, Predicate, Result, Value};

/// Enumerate equality items `attr = value` for each attribute, with their
/// support masks inside `within`.
///
/// * Categorical / boolean / integer columns contribute one item per distinct
///   value observed inside `within`.
/// * Float columns are skipped (the paper's datasets pre-bin continuous
///   attributes; our generators do the same).
/// * Per attribute, at most `max_values_per_attr` items survive, keeping the
///   highest-support values (deterministic tie-break on value order).
pub fn single_attribute_items(
    df: &DataFrame,
    attrs: &[String],
    within: &Mask,
    max_values_per_attr: usize,
) -> Result<Vec<(Predicate, Mask)>> {
    let mut out = Vec::new();
    for attr in attrs {
        let col = df.column(attr)?;
        if matches!(col, Column::Float(_)) {
            continue;
        }
        let mut groups: Vec<(Value, Mask)> = df.group_masks(attr, within)?;
        if groups.len() > max_values_per_attr {
            // Keep the most frequent values; sort is stable so value order
            // breaks ties deterministically.
            groups.sort_by(|a, b| b.1.count().cmp(&a.1.count()).then(a.0.cmp(&b.0)));
            groups.truncate(max_values_per_attr);
            groups.sort_by(|a, b| a.0.cmp(&b.0));
        }
        for (value, mask) in groups {
            out.push((Predicate::eq(attr, value), mask));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::builder()
            .cat("color", &["r", "g", "r", "b", "r", "g"])
            .int("size", vec![1, 2, 1, 1, 2, 2])
            .float("weight", vec![0.5; 6])
            .bool("heavy", vec![true, false, true, false, true, false])
            .build()
            .unwrap()
    }

    #[test]
    fn items_for_each_supported_type() {
        let items = single_attribute_items(
            &df(),
            &[
                "color".into(),
                "size".into(),
                "weight".into(),
                "heavy".into(),
            ],
            &Mask::ones(6),
            16,
        )
        .unwrap();
        // color: 3, size: 2, weight skipped (float), heavy: 2.
        assert_eq!(items.len(), 7);
        let (p, m) = items
            .iter()
            .find(|(p, _)| p.to_string() == "color = r")
            .unwrap();
        assert_eq!(p.attr, "color");
        assert_eq!(m.to_indices(), vec![0, 2, 4]);
    }

    #[test]
    fn cardinality_cap_keeps_most_frequent() {
        let values: Vec<String> = (0..30)
            .map(|i| {
                if i < 20 {
                    format!("common{}", i % 2)
                } else {
                    format!("rare{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
        let d = DataFrame::builder().cat("v", &refs).build().unwrap();
        let items = single_attribute_items(&d, &["v".into()], &Mask::ones(30), 3).unwrap();
        assert_eq!(items.len(), 3);
        // The two common values (10 rows each) must survive.
        let names: Vec<String> = items.iter().map(|(p, _)| p.value.to_string()).collect();
        assert!(names.contains(&"common0".to_owned()));
        assert!(names.contains(&"common1".to_owned()));
    }

    #[test]
    fn within_limits_observed_values() {
        let d = df();
        let within = Mask::from_indices(6, &[0, 2]); // only "r" rows
        let items = single_attribute_items(&d, &["color".into()], &within, 16).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0.to_string(), "color = r");
        assert_eq!(items[0].1.count(), 2);
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(single_attribute_items(&df(), &["ghost".into()], &Mask::ones(6), 16).is_err());
    }
}
