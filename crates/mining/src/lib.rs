//! # faircap-mining
//!
//! Frequent-pattern substrate for FairCap:
//!
//! * [`apriori`](mod@apriori) — the Apriori algorithm over attribute–value items, used by
//!   step 1 (§5.1) to mine grouping patterns with a support threshold.
//! * [`lattice`] — the positive-parent lattice traversal of step 2 (§5.2),
//!   generic over the scoring function so the core crate can plug in
//!   fairness-penalized CATE benefits.
//! * [`item`] — enumeration of `attr = value` items with support masks.

#![warn(missing_docs)]

pub mod apriori;
pub mod item;
pub mod lattice;

pub use apriori::{apriori, AprioriConfig, FrequentPattern};
pub use item::single_attribute_items;
pub use lattice::{positive_lattice, LatticeNode};
