//! # faircap-mining
//!
//! Frequent-pattern substrate for FairCap:
//!
//! * [`apriori`](mod@apriori) — the Apriori algorithm over attribute–value items, used by
//!   step 1 (§5.1) to mine grouping patterns with a support threshold.
//! * [`lattice`] — the positive-parent lattice traversal of step 2 (§5.2),
//!   generic over the scoring function so the core crate can plug in
//!   fairness-penalized CATE benefits.
//! * [`item`] — enumeration of `attr = value` items with support masks.

#![warn(missing_docs)]

pub mod apriori;
pub mod item;
pub mod lattice;

pub use apriori::{apriori, apriori_with_stats, AprioriConfig, FrequentPattern};
pub use item::single_attribute_items;
pub use lattice::{positive_lattice, positive_lattice_with_stats, LatticeNode};

/// Candidate-pipeline accounting for one mining run (Apriori level sweep or
/// positive-parent lattice traversal), in the spirit of the causal engine's
/// `HotStats`: where candidates came from and why they were discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Candidates generated (items at level 1 plus prefix-join products).
    pub candidates: u64,
    /// Candidates discarded because a (k−1)-subset was not frequent
    /// (Apriori) or not positive (lattice).
    pub pruned_parent: u64,
    /// Candidates discarded by the fused AND+popcount support test before
    /// their cover was materialized (Apriori only).
    pub pruned_support: u64,
    /// Candidates that survived pruning and were materialized / evaluated.
    pub evaluated: u64,
}

impl MiningStats {
    /// Merge another run's counters into this one.
    pub fn merge(&mut self, other: &MiningStats) {
        self.candidates += other.candidates;
        self.pruned_parent += other.pruned_parent;
        self.pruned_support += other.pruned_support;
        self.evaluated += other.evaluated;
    }

    /// Total candidates pruned before evaluation.
    pub fn pruned(&self) -> u64 {
        self.pruned_parent + self.pruned_support
    }
}
