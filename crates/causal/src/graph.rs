//! Causal DAGs (Pearl's graphical causal model, Section 3 of the paper).
//!
//! Nodes are the observed endogenous variables; exogenous variables are
//! implicit. The graph enforces acyclicity on every edge insertion.

use crate::error::{CausalError, Result};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Index of a node inside a [`Dag`].
pub type NodeId = usize;

/// A directed acyclic graph over named variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    parents: Vec<Vec<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl Dag {
    /// An empty graph.
    pub fn new() -> Dag {
        Dag {
            names: Vec::new(),
            by_name: HashMap::new(),
            parents: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Build from a list of `(parent, child)` name pairs. Nodes are created
    /// on first mention.
    pub fn from_edges(edges: &[(&str, &str)]) -> Result<Dag> {
        let mut g = Dag::new();
        for &(a, b) in edges {
            let a = g.ensure_node(a);
            let b = g.ensure_node(b);
            g.add_edge(a, b)?;
        }
        Ok(g)
    }

    /// Add a node, erroring if the name already exists.
    pub fn add_node(&mut self, name: &str) -> Result<NodeId> {
        if self.by_name.contains_key(name) {
            return Err(CausalError::DuplicateVariable(name.to_owned()));
        }
        Ok(self.insert_node(name))
    }

    /// Get the id for `name`, creating the node if needed.
    pub fn ensure_node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        self.insert_node(name)
    }

    fn insert_node(&mut self, name: &str) -> NodeId {
        let id = self.names.len();
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        id
    }

    /// Add a directed edge, rejecting duplicates silently and cycles with an
    /// error.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if self.children[from].contains(&to) {
            return Ok(());
        }
        if from == to || self.is_reachable(to, from) {
            return Err(CausalError::CycleDetected {
                from: self.names[from].clone(),
                to: self.names[to].clone(),
            });
        }
        self.children[from].push(to);
        self.parents[to].push(from);
        Ok(())
    }

    /// Add an edge by node names, creating nodes as needed.
    pub fn add_edge_by_name(&mut self, from: &str, to: &str) -> Result<()> {
        let a = self.ensure_node(from);
        let b = self.ensure_node(to);
        self.add_edge(a, b)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.children.iter().map(|c| c.len()).sum()
    }

    /// Node id for a name.
    pub fn node(&self, name: &str) -> Result<NodeId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CausalError::UnknownVariable(name.to_owned()))
    }

    /// True if the variable exists.
    pub fn has_node(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Name of a node id.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id]
    }

    /// All node names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Direct parents of a node.
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id]
    }

    /// Direct children of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id]
    }

    /// True if the directed edge exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.children[from].contains(&to)
    }

    /// True if `to` is reachable from `from` by directed edges (reflexive).
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.n_nodes()];
        let mut queue = VecDeque::from([from]);
        seen[from] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &self.children[u] {
                if v == to {
                    return true;
                }
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        false
    }

    /// All ancestors of the given nodes (not reflexive).
    pub fn ancestors(&self, of: &[NodeId]) -> HashSet<NodeId> {
        self.closure(of, |id| &self.parents[id])
    }

    /// All descendants of the given nodes (not reflexive).
    pub fn descendants(&self, of: &[NodeId]) -> HashSet<NodeId> {
        self.closure(of, |id| &self.children[id])
    }

    fn closure<'a, F>(&'a self, of: &[NodeId], next: F) -> HashSet<NodeId>
    where
        F: Fn(NodeId) -> &'a [NodeId],
    {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<NodeId> = of.iter().copied().collect();
        while let Some(u) = queue.pop_front() {
            for &v in next(u) {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Topological order of all nodes (parents before children).
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut in_deg: Vec<usize> = self.parents.iter().map(|p| p.len()).collect();
        let mut queue: VecDeque<NodeId> = (0..self.n_nodes()).filter(|&i| in_deg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n_nodes());
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.children[u] {
                in_deg[v] -= 1;
                if in_deg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(order.len(), self.n_nodes(), "graph must be acyclic");
        order
    }

    /// The graph with all edges *out of* the given nodes removed — used for
    /// backdoor-criterion checks (`G` with `T`'s outgoing edges cut).
    pub fn without_outgoing(&self, nodes: &[NodeId]) -> Dag {
        let cut: HashSet<NodeId> = nodes.iter().copied().collect();
        let mut g = self.clone();
        for &u in &cut {
            for &v in &self.children[u] {
                g.parents[v].retain(|&p| p != u);
            }
            g.children[u].clear();
        }
        g
    }

    /// The subgraph induced by the named nodes: keeps only those nodes and
    /// the edges between them. Names not present in the graph are ignored.
    ///
    /// Note: paths through dropped nodes are *not* contracted; this is the
    /// plain induced subgraph, used by the attribute-count scalability
    /// benchmarks where exact identification is not the point.
    pub fn induced_subgraph(&self, keep: &[&str]) -> Dag {
        let mut g = Dag::new();
        for &name in keep {
            if self.has_node(name) {
                g.ensure_node(name);
            }
        }
        for &name in keep {
            let Ok(u) = self.node(name) else { continue };
            for &v in &self.children[u] {
                let child = &self.names[v];
                if g.has_node(child) {
                    g.add_edge_by_name(name, child)
                        .expect("subgraph of a DAG is acyclic");
                }
            }
        }
        g
    }

    /// Parse a DAG from an edge-list text format: one `A -> B` per line
    /// (an optional trailing `;` and `#`-comments are allowed, as are the
    /// node/edge lines of [`Dag::to_dot`] output with quoted names).
    pub fn parse_edge_list(text: &str) -> Result<Dag> {
        let mut g = Dag::new();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            let line = line.strip_suffix(';').unwrap_or(line).trim();
            if line.is_empty() || line.starts_with("digraph") || line == "{" || line == "}" {
                continue;
            }
            let unquote = |s: &str| s.trim().trim_matches('"').to_owned();
            match line.split_once("->") {
                Some((from, to)) => {
                    g.add_edge_by_name(&unquote(from), &unquote(to))?;
                }
                None => {
                    // a bare node declaration
                    g.ensure_node(&unquote(line));
                }
            }
        }
        Ok(g)
    }

    /// Render in GraphViz DOT format.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph G {\n");
        for name in &self.names {
            s.push_str(&format!("  \"{name}\";\n"));
        }
        for (u, children) in self.children.iter().enumerate() {
            for &v in children {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.names[u], self.names[v]
                ));
            }
        }
        s.push_str("}\n");
        s
    }
}

impl Default for Dag {
    fn default() -> Self {
        Dag::new()
    }
}

impl fmt::Display for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dag[{} nodes, {} edges]", self.n_nodes(), self.n_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 (partial SO DAG).
    fn fig1() -> Dag {
        Dag::from_edges(&[
            ("Ethnicity", "Role"),
            ("Gender", "Role"),
            ("Age", "Role"),
            ("Age", "Education"),
            ("Education", "Role"),
            ("Education", "Salary"),
            ("Role", "Salary"),
        ])
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let g = fig1();
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(g.n_edges(), 7);
        let role = g.node("Role").unwrap();
        let salary = g.node("Salary").unwrap();
        assert!(g.has_edge(role, salary));
        assert!(!g.has_edge(salary, role));
        assert!(g.node("Nope").is_err());
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut g = Dag::new();
        g.add_node("A").unwrap();
        assert!(matches!(
            g.add_node("A"),
            Err(CausalError::DuplicateVariable(_))
        ));
        // ensure_node is idempotent
        assert_eq!(g.ensure_node("A"), 0);
    }

    #[test]
    fn cycle_rejected() {
        let mut g = Dag::from_edges(&[("A", "B"), ("B", "C")]).unwrap();
        let c = g.node("C").unwrap();
        let a = g.node("A").unwrap();
        assert!(matches!(
            g.add_edge(c, a),
            Err(CausalError::CycleDetected { .. })
        ));
        assert!(matches!(
            g.add_edge(a, a),
            Err(CausalError::CycleDetected { .. })
        ));
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = Dag::from_edges(&[("A", "B")]).unwrap();
        g.add_edge_by_name("A", "B").unwrap();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn ancestors_descendants() {
        let g = fig1();
        let salary = g.node("Salary").unwrap();
        let anc = g.ancestors(&[salary]);
        let anc_names: HashSet<&str> = anc.iter().map(|&i| g.name(i)).collect();
        assert_eq!(
            anc_names,
            HashSet::from(["Ethnicity", "Gender", "Age", "Education", "Role"])
        );
        let age = g.node("Age").unwrap();
        let desc = g.descendants(&[age]);
        let desc_names: HashSet<&str> = desc.iter().map(|&i| g.name(i)).collect();
        assert_eq!(desc_names, HashSet::from(["Education", "Role", "Salary"]));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = fig1();
        let order = g.topological_order();
        assert_eq!(order.len(), g.n_nodes());
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for u in 0..g.n_nodes() {
            for &v in g.children(u) {
                assert!(pos[&u] < pos[&v], "{} before {}", g.name(u), g.name(v));
            }
        }
    }

    #[test]
    fn without_outgoing_cuts_edges() {
        let g = fig1();
        let edu = g.node("Education").unwrap();
        let cut = g.without_outgoing(&[edu]);
        assert!(cut.children(edu).is_empty());
        let salary = cut.node("Salary").unwrap();
        assert!(!cut.parents(salary).contains(&edu));
        // incoming edges survive
        assert_eq!(cut.parents(edu).len(), g.parents(edu).len());
        // original untouched
        assert!(!g.children(edu).is_empty());
    }

    #[test]
    fn reachability() {
        let g = fig1();
        let age = g.node("Age").unwrap();
        let salary = g.node("Salary").unwrap();
        assert!(g.is_reachable(age, salary));
        assert!(!g.is_reachable(salary, age));
        assert!(g.is_reachable(age, age));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = fig1();
        let sub = g.induced_subgraph(&["Age", "Education", "Salary", "Ghost"]);
        assert_eq!(sub.n_nodes(), 3);
        let age = sub.node("Age").unwrap();
        let edu = sub.node("Education").unwrap();
        let sal = sub.node("Salary").unwrap();
        assert!(sub.has_edge(age, edu));
        assert!(sub.has_edge(edu, sal));
        // Age -> Role -> Salary existed only through the dropped Role node.
        assert!(!sub.has_edge(age, sal));
        assert_eq!(sub.n_edges(), 2);
    }

    #[test]
    fn dot_rendering() {
        let g = Dag::from_edges(&[("A", "B")]).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("\"A\" -> \"B\""));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn edge_list_parsing() {
        let g =
            Dag::parse_edge_list("# a comment\nage -> salary;\n  education->salary\nlonely_node\n")
                .unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 2);
        let age = g.node("age").unwrap();
        let salary = g.node("salary").unwrap();
        assert!(g.has_edge(age, salary));
        assert!(g.has_node("lonely_node"));
    }

    #[test]
    fn edge_list_roundtrips_dot_output() {
        let g = fig1();
        let parsed = Dag::parse_edge_list(&g.to_dot()).unwrap();
        assert_eq!(parsed.n_nodes(), g.n_nodes());
        assert_eq!(parsed.n_edges(), g.n_edges());
        for u in 0..g.n_nodes() {
            for &v in g.children(u) {
                let pu = parsed.node(g.name(u)).unwrap();
                let pv = parsed.node(g.name(v)).unwrap();
                assert!(parsed.has_edge(pu, pv));
            }
        }
    }

    #[test]
    fn edge_list_rejects_cycles() {
        assert!(Dag::parse_edge_list("a -> b\nb -> a\n").is_err());
    }
}
