//! Error types for the causal substrate.

use std::fmt;

/// Errors raised by causal-graph and estimation operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CausalError {
    /// Referenced a variable not present in the graph.
    UnknownVariable(String),
    /// Adding an edge would create a directed cycle.
    CycleDetected {
        /// Edge source.
        from: String,
        /// Edge target.
        to: String,
    },
    /// A variable was declared twice.
    DuplicateVariable(String),
    /// Estimation failed (degenerate design, no overlap, singular system…).
    Estimation(String),
    /// An estimator refused a subgroup because its work would exceed a
    /// complexity budget (e.g. brute-force matching on a huge group). The
    /// message names a cheaper estimator so callers can retry instead of
    /// silently burning hours.
    EstimatorBudget {
        /// The refusing estimator's stable name.
        estimator: &'static str,
        /// The work the estimate would have performed, in the estimator's
        /// own unit. Matching reports its *post-index* cost model —
        /// estimated KD-tree node visits when the tree path would run,
        /// raw `n_treated · n_control` pair distances only when the arms
        /// are too small (or the design covariate-free) for the index to
        /// help.
        work: u64,
        /// The configured budget the work exceeded.
        budget: u64,
        /// Human-readable name of the work unit, so the refusal message
        /// states what was actually modeled.
        unit: &'static str,
    },
    /// The underlying table layer reported an error.
    Table(faircap_table::TableError),
    /// Structural-equation specification problem.
    Scm(String),
    /// The outcome column exists but cannot be used as an outcome.
    InvalidOutcome {
        /// The offending column.
        column: String,
        /// Why it is unusable (e.g. its actual type).
        reason: String,
    },
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            CausalError::CycleDetected { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            CausalError::DuplicateVariable(v) => write!(f, "duplicate variable `{v}`"),
            CausalError::Estimation(msg) => write!(f, "estimation failed: {msg}"),
            CausalError::EstimatorBudget {
                estimator,
                work,
                budget,
                unit,
            } => write!(
                f,
                "`{estimator}` refused the subgroup: the post-index cost model estimates \
                 {work} {unit}, over the budget of {budget}; choose a scalable estimator \
                 for groups this large (linear, ipw, or aipw), or raise \
                 FAIRCAP_MATCHING_BUDGET if the KD-tree-indexed estimate is worth the wait"
            ),
            CausalError::Table(e) => write!(f, "table error: {e}"),
            CausalError::Scm(msg) => write!(f, "scm error: {msg}"),
            CausalError::InvalidOutcome { column, reason } => {
                write!(f, "outcome column `{column}` is unusable: {reason}")
            }
        }
    }
}

impl std::error::Error for CausalError {}

impl From<faircap_table::TableError> for CausalError {
    fn from(e: faircap_table::TableError) -> Self {
        CausalError::Table(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CausalError>;
