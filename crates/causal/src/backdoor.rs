//! Backdoor criterion and adjustment-set selection.
//!
//! A set `Z` satisfies the backdoor criterion relative to `(T, O)` when
//! (i) no node of `Z` is a descendant of `T`, and (ii) `Z` blocks every path
//! between `T` and `O` that starts with an arrow *into* `T`. Condition (ii)
//! is equivalent to `T ⊥ O | Z` in the graph with `T`'s outgoing edges
//! removed (as long as (i) holds), which is how we verify it.

use crate::dsep::d_separated;
use crate::error::{CausalError, Result};
use crate::graph::{Dag, NodeId};
use std::collections::HashSet;

/// Check the backdoor criterion for adjustment set `z` relative to
/// treatments `t` and outcome `o`.
pub fn is_valid_backdoor(g: &Dag, t: &[NodeId], o: NodeId, z: &[NodeId]) -> bool {
    // (i) no descendants of T in Z (nor T itself / the outcome).
    let desc = g.descendants(t);
    if z.iter()
        .any(|n| desc.contains(n) || t.contains(n) || *n == o)
    {
        return false;
    }
    // (ii) T ⊥ O | Z in G with T's outgoing edges removed.
    //
    // With outgoing edges of T cut, every remaining T–O path starts with an
    // arrow into T, i.e. is a backdoor path.
    let cut = g.without_outgoing(t);
    d_separated(&cut, t, &[o], z)
}

/// Find an adjustment set for estimating the effect of `t` on `o`.
///
/// Strategy, mirroring the common practice (and DoWhy's default behaviour on
/// the paper's DAGs):
///
/// 1. Try `Z = Pa(T) \ (T ∪ {O})` — the parents of the treatment variables.
///    This always satisfies the backdoor criterion under causal sufficiency.
/// 2. If that fails (e.g. a parent is also a descendant of another treatment
///    node), fall back to all non-descendants of `T` that are ancestors of
///    `T` or `O`, minus `T ∪ {O}`.
/// 3. Greedily shrink: drop any node whose removal keeps the set valid,
///    scanning in reverse insertion order so the result is deterministic and
///    inclusion-minimal.
///
/// Returns the adjustment set (possibly empty — meaning the effect is
/// identified without adjustment), or an error when no valid set exists.
pub fn find_adjustment_set(g: &Dag, t: &[NodeId], o: NodeId) -> Result<Vec<NodeId>> {
    debug_assert!(!t.is_empty());
    let mut candidate: Vec<NodeId> = Vec::new();
    let mut seen = HashSet::new();
    for &ti in t {
        for &p in g.parents(ti) {
            if !t.contains(&p) && p != o && seen.insert(p) {
                candidate.push(p);
            }
        }
    }
    candidate.sort_unstable();

    if !is_valid_backdoor(g, t, o, &candidate) {
        // Fallback: every non-descendant of T that is an ancestor of T or O.
        let desc = g.descendants(t);
        let mut anc = g.ancestors(t);
        anc.extend(g.ancestors(&[o]));
        let mut fallback: Vec<NodeId> = (0..g.n_nodes())
            .filter(|n| anc.contains(n) && !desc.contains(n) && !t.contains(n) && *n != o)
            .collect();
        fallback.sort_unstable();
        if !is_valid_backdoor(g, t, o, &fallback) {
            return Err(CausalError::Estimation(format!(
                "no valid backdoor adjustment set for {:?} -> {}",
                t.iter().map(|&i| g.name(i)).collect::<Vec<_>>(),
                g.name(o)
            )));
        }
        candidate = fallback;
    }

    // Greedy minimization (inclusion-minimal, not minimum).
    let mut i = candidate.len();
    while i > 0 {
        i -= 1;
        let mut trial = candidate.clone();
        trial.remove(i);
        if is_valid_backdoor(g, t, o, &trial) {
            candidate = trial;
        }
    }
    Ok(candidate)
}

/// Name-based wrapper around [`find_adjustment_set`].
pub fn find_adjustment_set_names(g: &Dag, t: &[&str], o: &str) -> Result<Vec<String>> {
    let t_ids: Vec<NodeId> = t.iter().map(|n| g.node(n)).collect::<Result<_>>()?;
    let o_id = g.node(o)?;
    let z = find_adjustment_set(g, &t_ids, o_id)?;
    Ok(z.into_iter().map(|i| g.name(i).to_owned()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(g: &Dag, ids: &[NodeId]) -> Vec<String> {
        let mut v: Vec<String> = ids.iter().map(|&i| g.name(i).to_owned()).collect();
        v.sort();
        v
    }

    /// Classic confounding triangle: Z -> T, Z -> O, T -> O.
    #[test]
    fn confounder_must_be_adjusted() {
        let g = Dag::from_edges(&[("Z", "T"), ("Z", "O"), ("T", "O")]).unwrap();
        let t = g.node("T").unwrap();
        let o = g.node("O").unwrap();
        let z = g.node("Z").unwrap();
        assert!(!is_valid_backdoor(&g, &[t], o, &[]));
        assert!(is_valid_backdoor(&g, &[t], o, &[z]));
        let adj = find_adjustment_set(&g, &[t], o).unwrap();
        assert_eq!(names(&g, &adj), vec!["Z"]);
    }

    /// No backdoor path: T -> O with an independent W.
    #[test]
    fn no_confounding_gives_empty_set() {
        let g = Dag::from_edges(&[("T", "O"), ("W", "O")]).unwrap();
        let t = g.node("T").unwrap();
        let o = g.node("O").unwrap();
        assert!(is_valid_backdoor(&g, &[t], o, &[]));
        let adj = find_adjustment_set(&g, &[t], o).unwrap();
        assert!(adj.is_empty());
    }

    /// Mediator must not be adjusted: T -> M -> O.
    #[test]
    fn mediator_not_in_adjustment() {
        let g = Dag::from_edges(&[("T", "M"), ("M", "O"), ("Z", "T"), ("Z", "O")]).unwrap();
        let t = g.node("T").unwrap();
        let o = g.node("O").unwrap();
        let m = g.node("M").unwrap();
        let z = g.node("Z").unwrap();
        assert!(
            !is_valid_backdoor(&g, &[t], o, &[m]),
            "mediator is a descendant"
        );
        assert!(!is_valid_backdoor(&g, &[t], o, &[m, z]));
        let adj = find_adjustment_set(&g, &[t], o).unwrap();
        assert_eq!(names(&g, &adj), vec!["Z"]);
    }

    /// Collider: conditioning on it would *open* a path; the valid set is ∅.
    #[test]
    fn collider_left_alone() {
        // T <- A -> C <- B -> O, T -> O.
        let g =
            Dag::from_edges(&[("A", "T"), ("A", "C"), ("B", "C"), ("B", "O"), ("T", "O")]).unwrap();
        let t = g.node("T").unwrap();
        let o = g.node("O").unwrap();
        let a = g.node("A").unwrap();
        let c = g.node("C").unwrap();
        // ∅ is valid: the only T..O backdoor path goes through collider C.
        assert!(is_valid_backdoor(&g, &[t], o, &[]));
        // {C} is invalid (opens A -> C <- B).
        assert!(!is_valid_backdoor(&g, &[t], o, &[c]));
        // {C, A} valid again.
        assert!(is_valid_backdoor(&g, &[t], o, &[c, a]));
        // Parents-of-T heuristic yields {A}; minimization may shrink to ∅.
        let adj = find_adjustment_set(&g, &[t], o).unwrap();
        assert!(is_valid_backdoor(&g, &[t], o, &adj));
    }

    /// Multi-treatment adjustment (intervention patterns span attributes).
    #[test]
    fn multiple_treatments() {
        let g = Dag::from_edges(&[
            ("Z", "T1"),
            ("Z", "T2"),
            ("Z", "O"),
            ("T1", "O"),
            ("T2", "O"),
        ])
        .unwrap();
        let t1 = g.node("T1").unwrap();
        let t2 = g.node("T2").unwrap();
        let o = g.node("O").unwrap();
        let adj = find_adjustment_set(&g, &[t1, t2], o).unwrap();
        assert_eq!(names(&g, &adj), vec!["Z"]);
        assert!(is_valid_backdoor(&g, &[t1, t2], o, &adj));
    }

    /// Paper Fig. 1: Education -> Salary with Age confounding via
    /// Age -> Education and Age -> Role -> Salary.
    #[test]
    fn paper_fig1_education_salary() {
        let g = Dag::from_edges(&[
            ("Ethnicity", "Role"),
            ("Gender", "Role"),
            ("Age", "Role"),
            ("Age", "Education"),
            ("Education", "Role"),
            ("Education", "Salary"),
            ("Role", "Salary"),
        ])
        .unwrap();
        let adj = find_adjustment_set_names(&g, &["Education"], "Salary").unwrap();
        assert_eq!(adj, vec!["Age"]);
        // Role is a mediator and must not appear.
        assert!(!adj.contains(&"Role".to_owned()));
    }

    #[test]
    fn treatment_itself_never_in_set() {
        let g = Dag::from_edges(&[("Z", "T"), ("Z", "O"), ("T", "O")]).unwrap();
        let t = g.node("T").unwrap();
        let o = g.node("O").unwrap();
        assert!(!is_valid_backdoor(&g, &[t], o, &[t]));
        assert!(!is_valid_backdoor(&g, &[t], o, &[o]));
    }

    /// 1-layer "independence" DAG from Table 6: every attribute points only
    /// at the outcome; the adjustment set is empty.
    #[test]
    fn one_layer_dag_needs_no_adjustment() {
        let g = Dag::from_edges(&[("A", "O"), ("B", "O"), ("T", "O")]).unwrap();
        let adj = find_adjustment_set_names(&g, &["T"], "O").unwrap();
        assert!(adj.is_empty());
    }
}
