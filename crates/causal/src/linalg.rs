#![allow(clippy::needless_range_loop)] // index-based loops are clearer in numeric kernels

//! Small dense linear algebra: exactly what OLS with a few dozen regressors
//! needs — symmetric positive-definite solves via Cholesky, with a ridge
//! fallback for rank-deficient designs (collinear one-hot blocks).

use crate::error::{CausalError, Result};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a nested-slice literal (rows of equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `Xᵀ X` (Gram matrix), `cols × cols`.
    pub fn gram(&self) -> Matrix {
        let k = self.cols;
        let mut g = Matrix::zeros(k, k);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..k {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..k {
                    g.data[i * k + j] += xi * row[j];
                }
            }
        }
        // mirror upper to lower
        for i in 0..k {
            for j in 0..i {
                g.data[i * k + j] = g.data[j * k + i];
            }
        }
        g
    }

    /// `Xᵀ y`, length `cols`.
    pub fn t_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            for (o, x) in out.iter_mut().zip(row) {
                *o += x * yr;
            }
        }
        out
    }

    /// `X v`, length `rows`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor, or an error when the matrix is not
/// positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    assert_eq!(a.rows, a.cols, "cholesky needs a square matrix");
    let n = a.rows;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(CausalError::Estimation(format!(
                        "matrix not positive definite at pivot {i} (value {sum:.3e})"
                    )));
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for SPD `A` via Cholesky. Adds escalating ridge jitter to
/// the diagonal when `A` is singular (rank-deficient designs), which is the
/// standard remedy for collinear one-hot encodings.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    match cholesky(a) {
        Ok(l) => Ok(cholesky_solve(&l, b)),
        Err(_) => {
            let n = a.rows;
            let scale = (0..n).map(|i| a.get(i, i)).fold(0.0f64, f64::max).max(1.0);
            for mag in [1e-10, 1e-8, 1e-6, 1e-4] {
                let mut aj = a.clone();
                for i in 0..n {
                    aj.set(i, i, aj.get(i, i) + scale * mag);
                }
                if let Ok(l) = cholesky(&aj) {
                    return Ok(cholesky_solve(&l, b));
                }
            }
            Err(CausalError::Estimation(
                "linear system unsolvable even with ridge regularization".into(),
            ))
        }
    }
}

/// Forward/back substitution with a Cholesky factor.
fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        y[i] = sum / l.get(i, i);
    }
    // Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Inverse of an SPD matrix via Cholesky (ridge-stabilized like
/// [`solve_spd`]). Used for OLS standard errors.
pub fn inverse_spd(a: &Matrix) -> Result<Matrix> {
    let n = a.rows;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for col in 0..n {
        e[col] = 1.0;
        let x = solve_spd(a, &e)?;
        for r in 0..n {
            inv.set(r, col, x[r]);
        }
        e[col] = 0.0;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + b.abs())
    }

    #[test]
    fn gram_and_tmulvec() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = x.gram();
        // XᵀX = [[35, 44], [44, 56]]
        assert!(close(g.get(0, 0), 35.0));
        assert!(close(g.get(0, 1), 44.0));
        assert!(close(g.get(1, 0), 44.0));
        assert!(close(g.get(1, 1), 56.0));
        let xty = x.t_mul_vec(&[1.0, 1.0, 1.0]);
        assert!(close(xty[0], 9.0) && close(xty[1], 12.0));
        let xv = x.mul_vec(&[1.0, -1.0]);
        assert_eq!(xv, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, √2]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!(close(l.get(0, 0), 2.0));
        assert!(close(l.get(1, 0), 1.0));
        assert!(close(l.get(1, 1), 2f64.sqrt()));
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        // pick x = [1, -2] → b = A x = [0, -4]
        let x = solve_spd(&a, &[0.0, -4.0]).unwrap();
        assert!(close(x[0], 1.0));
        assert!(close(x[1], -2.0));
    }

    #[test]
    fn singular_falls_back_to_ridge() {
        // Perfectly collinear: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let x = solve_spd(&a, &[2.0, 2.0]).unwrap();
        // ridge solution splits mass: x0 + x1 ≈ 2
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn not_positive_definite_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn inverse_spd_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.5], &[2.0, 3.0, 1.0], &[0.5, 1.0, 2.0]]);
        let inv = inverse_spd(&a).unwrap();
        // A · A⁻¹ = I
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a.get(i, k) * inv.get(k, j);
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-9, "({i},{j}) = {s}");
            }
        }
    }

    #[test]
    fn ols_normal_equations_end_to_end() {
        // y = 3 + 2·x exactly.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = xs.iter().map(|&v| 3.0 + 2.0 * v).collect();
        let beta = solve_spd(&x.gram(), &x.t_mul_vec(&y)).unwrap();
        assert!(close(beta[0], 3.0));
        assert!(close(beta[1], 2.0));
    }
}
