//! Structural causal models for synthetic data generation.
//!
//! The paper evaluates on the Stack Overflow survey and German Credit, which
//! we cannot ship; `faircap-data` builds SCM-based synthetic equivalents on
//! top of this module. An [`Scm`] is a list of nodes in dependency order,
//! each with a structural equation (an arbitrary function of the already-
//! sampled parent values plus exogenous randomness). Sampling a model yields
//! a [`DataFrame`] whose ground-truth [`Dag`] the model also exports, so
//! estimator tests can compare estimated CATEs to planted effects.

use crate::error::{CausalError, Result};
use crate::graph::Dag;
use faircap_table::{Column, DataFrame, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::collections::HashMap;

/// Fallback value handed to an equation after a faulted parent read; the
/// fault is reported as a typed error by [`Scm::sample`] before the bogus
/// row can be observed.
static FAULT_FALLBACK: Value = Value::Bool(false);

/// Sampled values of a single row during generation; structural equations
/// read their parents from here.
///
/// A read of an undeclared or ill-typed parent does **not** panic: it
/// records the fault (with the offending column name) and returns a benign
/// placeholder, and [`Scm::sample`] turns the recorded fault into a
/// [`CausalError::Scm`] as soon as the equation returns.
pub struct Row<'a> {
    values: &'a HashMap<String, Value>,
    fault: &'a Cell<Option<String>>,
}

impl Row<'_> {
    fn record_fault(&self, reason: String) {
        // Keep the first fault; later reads of the poisoned row are noise.
        let first = self.fault.take().unwrap_or(reason);
        self.fault.set(Some(first));
    }

    /// Parent value by name.
    pub fn get(&self, name: &str) -> &Value {
        match self.values.get(name) {
            Some(v) => v,
            None => {
                self.record_fault(format!(
                    "structural equation read undeclared parent `{name}`"
                ));
                &FAULT_FALLBACK
            }
        }
    }

    /// Categorical parent as `&str`.
    pub fn str(&self, name: &str) -> &str {
        match self.get(name).as_str() {
            Some(s) => s,
            None => {
                self.record_fault(format!("parent `{name}` is not categorical"));
                ""
            }
        }
    }

    /// Numeric parent as `f64` (bools as 0/1).
    pub fn num(&self, name: &str) -> f64 {
        match self.get(name).as_f64() {
            Some(x) => x,
            None => {
                self.record_fault(format!("parent `{name}` is not numeric"));
                0.0
            }
        }
    }

    /// Boolean parent.
    pub fn flag(&self, name: &str) -> bool {
        matches!(self.get(name), Value::Bool(true))
    }
}

/// A structural equation: given parent values and the RNG, produce a value.
pub type Equation = Box<dyn Fn(&Row<'_>, &mut StdRng) -> Value + Send + Sync>;

struct Node {
    name: String,
    parents: Vec<String>,
    equation: Equation,
}

/// A structural causal model.
pub struct Scm {
    nodes: Vec<Node>,
    by_name: HashMap<String, usize>,
}

impl Scm {
    /// An empty model.
    pub fn new() -> Scm {
        Scm {
            nodes: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Declare a node. Parents must already be declared (this enforces a
    /// valid topological order and acyclicity by construction).
    pub fn node(mut self, name: &str, parents: &[&str], equation: Equation) -> Result<Scm> {
        if self.by_name.contains_key(name) {
            return Err(CausalError::DuplicateVariable(name.to_owned()));
        }
        for p in parents {
            if !self.by_name.contains_key(*p) {
                return Err(CausalError::Scm(format!(
                    "node `{name}` references undeclared parent `{p}` — declare parents first"
                )));
            }
        }
        self.by_name.insert(name.to_owned(), self.nodes.len());
        self.nodes.push(Node {
            name: name.to_owned(),
            parents: parents.iter().map(|s| (*s).to_owned()).collect(),
            equation,
        });
        Ok(self)
    }

    /// Exogenous categorical node with the given level weights.
    pub fn categorical(self, name: &str, levels: &[(&str, f64)]) -> Result<Scm> {
        let levels: Vec<(String, f64)> =
            levels.iter().map(|(l, w)| ((*l).to_owned(), *w)).collect();
        if levels.is_empty() {
            return Err(CausalError::Scm(format!("node `{name}` has no levels")));
        }
        self.node(
            name,
            &[],
            Box::new(move |_, rng| Value::Str(sample_weighted(&levels, rng))),
        )
    }

    /// The ground-truth causal DAG of the model.
    pub fn dag(&self) -> Dag {
        let mut g = Dag::new();
        for n in &self.nodes {
            g.ensure_node(&n.name);
        }
        for n in &self.nodes {
            for p in &n.parents {
                g.add_edge_by_name(p, &n.name)
                    .expect("SCM construction guarantees acyclicity");
            }
        }
        g
    }

    /// Variable names in declaration (topological) order.
    pub fn variables(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// Sample `n` i.i.d. rows with a seeded RNG.
    ///
    /// Fails with a typed [`CausalError::Scm`] (naming the node and the
    /// offending parent column) when an equation reads an undeclared or
    /// ill-typed parent, instead of aborting the process.
    pub fn sample(&self, n: usize, seed: u64) -> Result<DataFrame> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(n); self.nodes.len()];
        let mut current: HashMap<String, Value> = HashMap::with_capacity(self.nodes.len());
        let fault: Cell<Option<String>> = Cell::new(None);
        for _ in 0..n {
            current.clear();
            for (i, node) in self.nodes.iter().enumerate() {
                let v = (node.equation)(
                    &Row {
                        values: &current,
                        fault: &fault,
                    },
                    &mut rng,
                );
                if let Some(reason) = fault.take() {
                    return Err(CausalError::Scm(format!("node `{}`: {reason}", node.name)));
                }
                current.insert(node.name.clone(), v.clone());
                columns[i].push(v);
            }
        }
        let mut b = DataFrame::builder();
        for (node, values) in self.nodes.iter().zip(columns) {
            b = b.column(&node.name, column_from_values(&node.name, values)?);
        }
        Ok(b.build()?)
    }
}

impl Default for Scm {
    fn default() -> Self {
        Scm::new()
    }
}

/// Draw from a weighted categorical distribution.
fn sample_weighted(levels: &[(String, f64)], rng: &mut StdRng) -> String {
    let total: f64 = levels.iter().map(|(_, w)| w).sum();
    let mut x = rng.random::<f64>() * total;
    for (level, w) in levels {
        x -= w;
        if x <= 0.0 {
            return level.clone();
        }
    }
    levels.last().expect("non-empty levels").0.clone()
}

fn column_from_values(name: &str, values: Vec<Value>) -> Result<Column> {
    let kind = values
        .iter()
        .find_map(|v| v.data_type())
        .ok_or_else(|| CausalError::Scm(format!("column `{name}` is all null")))?;
    let mismatch = |v: &Value| {
        CausalError::Scm(format!(
            "column `{name}`: equation returned mixed types ({v:?} vs {kind:?})"
        ))
    };
    match kind {
        faircap_table::DataType::Int => {
            let mut out = Vec::with_capacity(values.len());
            for v in &values {
                match v {
                    Value::Int(x) => out.push(*x),
                    _ => return Err(mismatch(v)),
                }
            }
            Ok(Column::Int(out))
        }
        faircap_table::DataType::Float => {
            let mut out = Vec::with_capacity(values.len());
            for v in &values {
                match v {
                    Value::Float(x) => out.push(*x),
                    Value::Int(x) => out.push(*x as f64),
                    _ => return Err(mismatch(v)),
                }
            }
            Ok(Column::Float(out))
        }
        faircap_table::DataType::Bool => {
            let mut out = Vec::with_capacity(values.len());
            for v in &values {
                match v {
                    Value::Bool(x) => out.push(*x),
                    _ => return Err(mismatch(v)),
                }
            }
            Ok(Column::Bool(out))
        }
        faircap_table::DataType::Cat => {
            let mut out: Vec<String> = Vec::with_capacity(values.len());
            for v in &values {
                match v {
                    Value::Str(s) => out.push(s.clone()),
                    _ => return Err(mismatch(v)),
                }
            }
            Ok(Column::Cat(faircap_table::CatColumn::from_values(&out)))
        }
    }
}

/// Standard normal draw via Box–Muller (rand 0.9 core has no distributions).
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Bernoulli draw with probability `p`.
pub fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::{Mask, Pattern};

    fn toy_scm() -> Scm {
        Scm::new()
            .categorical("region", &[("north", 0.5), ("south", 0.5)])
            .unwrap()
            .node(
                "educated",
                &["region"],
                Box::new(|row, rng| {
                    let p = if row.str("region") == "north" {
                        0.7
                    } else {
                        0.3
                    };
                    Value::Bool(bernoulli(rng, p))
                }),
            )
            .unwrap()
            .node(
                "income",
                &["region", "educated"],
                Box::new(|row, rng| {
                    let base = if row.str("region") == "north" {
                        60.0
                    } else {
                        40.0
                    };
                    let boost = if row.flag("educated") { 20.0 } else { 0.0 };
                    Value::Float(base + boost + normal(rng, 0.0, 5.0))
                }),
            )
            .unwrap()
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let scm = toy_scm();
        let a = scm.sample(100, 7).unwrap();
        let b = scm.sample(100, 7).unwrap();
        let c = scm.sample(100, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dag_matches_declared_structure() {
        let g = toy_scm().dag();
        assert_eq!(g.n_nodes(), 3);
        let region = g.node("region").unwrap();
        let educated = g.node("educated").unwrap();
        let income = g.node("income").unwrap();
        assert!(g.has_edge(region, educated));
        assert!(g.has_edge(region, income));
        assert!(g.has_edge(educated, income));
    }

    #[test]
    fn undeclared_parent_rejected() {
        let r = Scm::new().node("x", &["ghost"], Box::new(|_, _| Value::Int(0)));
        assert!(matches!(r, Err(CausalError::Scm(_))));
    }

    #[test]
    fn undeclared_parent_read_is_a_typed_error() {
        // The node declares no parents but its equation reads one anyway:
        // construction can't catch it, sampling must fail cleanly.
        let scm = Scm::new()
            .node("x", &[], Box::new(|row, _| row.get("ghost").clone()))
            .unwrap();
        let err = scm.sample(10, 0).unwrap_err();
        assert!(matches!(err, CausalError::Scm(_)));
        let msg = err.to_string();
        assert!(msg.contains("ghost") && msg.contains('x'), "{msg}");
    }

    #[test]
    fn undeclared_parent_str_read_keeps_first_fault() {
        // `str()` on an undeclared parent faults twice (missing, then
        // ill-typed fallback); the first fault must survive to sample().
        let scm = Scm::new()
            .node(
                "x",
                &[],
                Box::new(|row, _| Value::Str(row.str("ghost").to_owned())),
            )
            .unwrap();
        let err = scm.sample(10, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("undeclared parent `ghost`"), "{msg}");
    }

    #[test]
    fn ill_typed_parent_read_is_a_typed_error() {
        let scm = Scm::new()
            .categorical("c", &[("a", 1.0)])
            .unwrap()
            .node(
                "y",
                &["c"],
                Box::new(|row, _| Value::Float(row.num("c") + 1.0)),
            )
            .unwrap();
        let err = scm.sample(10, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`c` is not numeric"), "{msg}");
        assert!(msg.contains("`y`"), "{msg}");
    }

    #[test]
    fn duplicate_node_rejected() {
        let r = toy_scm().categorical("region", &[("x", 1.0)]);
        assert!(matches!(r, Err(CausalError::DuplicateVariable(_))));
    }

    #[test]
    fn planted_effect_recovered_by_adjustment() {
        // Ground truth: educated adds exactly +20 to income, confounded by
        // region. The linear estimator with Z={region} must recover ≈20,
        // while the unadjusted estimate is inflated (north is both richer
        // and more educated).
        let scm = toy_scm();
        let df = scm.sample(4000, 42).unwrap();
        let treated = Pattern::of_eq(&[("educated", Value::Bool(true))])
            .coverage(&df)
            .unwrap();
        let all = Mask::ones(df.n_rows());
        let adj = crate::estimate::estimate_cate(
            crate::estimate::EstimatorKind::Linear,
            &df,
            &all,
            &treated,
            "income",
            &["region".into()],
        )
        .unwrap();
        assert!((adj.cate - 20.0).abs() < 1.0, "adjusted = {}", adj.cate);
        let naive = crate::estimate::estimate_cate(
            crate::estimate::EstimatorKind::Linear,
            &df,
            &all,
            &treated,
            "income",
            &[],
        )
        .unwrap();
        assert!(
            naive.cate > adj.cate + 2.0,
            "naive {} should exceed adjusted {}",
            naive.cate,
            adj.cate
        );
    }

    #[test]
    fn weighted_sampling_respects_proportions() {
        let scm = Scm::new()
            .categorical("c", &[("a", 0.8), ("b", 0.2)])
            .unwrap();
        let df = scm.sample(5000, 1).unwrap();
        let frac = Pattern::of_eq(&[("c", Value::from("a"))])
            .coverage(&df)
            .unwrap()
            .fraction();
        assert!((frac - 0.8).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn normal_helper_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let (m, v) = faircap_table::stats::mean_var(&xs);
        assert!((m - 5.0).abs() < 0.05, "mean = {m}");
        assert!((v - 4.0).abs() < 0.15, "var = {v}");
    }

    #[test]
    fn mixed_type_equation_rejected() {
        let scm = Scm::new()
            .node(
                "x",
                &[],
                Box::new(|_, rng| {
                    if rng.random::<f64>() < 0.5 {
                        Value::Int(1)
                    } else {
                        Value::Str("oops".into())
                    }
                }),
            )
            .unwrap();
        assert!(scm.sample(100, 0).is_err());
    }
}
