//! Conditional-independence tests over tabular data.
//!
//! The PC algorithm needs a test of `X ⊥ Y | Z` on observed data. We use the
//! G² (log-likelihood-ratio) test on contingency tables, stratified over the
//! joint values of `Z`. Numeric columns are quantile-binned first. This is
//! the standard CI test for discrete data (Spirtes–Glymour–Scheines).

use crate::error::{CausalError, Result};
use faircap_table::stats::chi2_sf;
use faircap_table::{Column, DataFrame, Mask};
use std::collections::HashMap;

/// Number of quantile bins applied to numeric columns before testing.
const NUMERIC_BINS: usize = 3;

/// Discretized view of one column: per-row level codes plus cardinality.
#[derive(Debug, Clone)]
pub struct Discretized {
    codes: Vec<u32>,
    levels: usize,
}

impl Discretized {
    /// Discretize a column: categorical/bool pass through, numeric columns
    /// are quantile-binned into three levels.
    pub fn from_column(col: &Column) -> Discretized {
        match col {
            Column::Cat(c) => Discretized {
                codes: c.codes().to_vec(),
                levels: c.cardinality(),
            },
            Column::Bool(v) => Discretized {
                codes: v.iter().map(|&b| b as u32).collect(),
                levels: 2,
            },
            Column::Int(_) | Column::Float(_) => {
                let n = col.len();
                let mut values: Vec<f64> = (0..n).map(|i| col.get_f64(i).unwrap()).collect();
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let cuts: Vec<f64> = (1..NUMERIC_BINS)
                    .map(|q| sorted[(q * n / NUMERIC_BINS).min(n.saturating_sub(1))])
                    .collect();
                let codes = values
                    .drain(..)
                    .map(|v| cuts.iter().take_while(|&&c| v >= c).count() as u32)
                    .collect();
                Discretized {
                    codes,
                    levels: NUMERIC_BINS,
                }
            }
        }
    }

    /// Level code of a row.
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels
    }
}

/// A dataset pre-discretized for CI testing.
pub struct CiData {
    columns: Vec<Discretized>,
    names: Vec<String>,
    n_rows: usize,
}

impl CiData {
    /// Discretize all (or the named subset of) columns of a frame.
    pub fn new(df: &DataFrame, names: &[String]) -> Result<CiData> {
        let mut columns = Vec::with_capacity(names.len());
        for n in names {
            columns.push(Discretized::from_column(df.column(n)?));
        }
        Ok(CiData {
            columns,
            names: names.to_vec(),
            n_rows: df.n_rows(),
        })
    }

    /// Variable names, in test index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// p-value of the G² test of `x ⊥ y | z` (variable indices), restricted
    /// to the rows of `within` (pass `Mask::ones` for the full data).
    ///
    /// Statistics and degrees of freedom are summed over the `Z` strata;
    /// strata too small to test contribute nothing. Returns `1.0` (cannot
    /// reject independence) when no stratum is testable — the conservative
    /// choice for edge deletion in PC.
    pub fn ci_test(&self, x: usize, y: usize, z: &[usize], within: &Mask) -> Result<f64> {
        if x == y {
            return Err(CausalError::Estimation("ci_test with x == y".into()));
        }
        let cx = &self.columns[x];
        let cy = &self.columns[y];
        let (rx, ry) = (cx.levels(), cy.levels());

        // Partition rows by the joint Z value.
        let mut strata: HashMap<u64, Vec<u64>> = HashMap::new();
        for row in within.iter_ones() {
            let mut key = 0u64;
            for &zi in z {
                let col = &self.columns[zi];
                key = key * col.levels() as u64 + col.code(row) as u64;
            }
            let table = strata.entry(key).or_insert_with(|| vec![0u64; rx * ry]);
            table[cx.code(row) as usize * ry + cy.code(row) as usize] += 1;
        }

        let mut stat = 0.0;
        let mut df_total = 0.0;
        for table in strata.values() {
            if let Some(r) = faircap_table::stats::g2_independence(table, rx, ry) {
                stat += r.statistic;
                df_total += r.df;
            }
        }
        if df_total == 0.0 {
            return Ok(1.0);
        }
        Ok(chi2_sf(stat, df_total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scm::{bernoulli, Scm};
    use faircap_table::Value;

    /// a → b → c chain: a ⊥̸ c marginally, a ⊥ c | b.
    fn chain_data() -> DataFrame {
        Scm::new()
            .categorical("a", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .node(
                "b",
                &["a"],
                Box::new(|row, rng| {
                    let p = if row.str("a") == "1" { 0.85 } else { 0.15 };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap()
            .node(
                "c",
                &["b"],
                Box::new(|row, rng| {
                    let p = if row.str("b") == "1" { 0.85 } else { 0.15 };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap()
            .sample(3000, 7)
            .unwrap()
    }

    fn ci(df: &DataFrame) -> CiData {
        let names: Vec<String> = df.names().to_vec();
        CiData::new(df, &names).unwrap()
    }

    #[test]
    fn chain_dependencies_detected() {
        let df = chain_data();
        let data = ci(&df);
        let all = Mask::ones(df.n_rows());
        // a, b, c are indices 0, 1, 2.
        let p_marginal = data.ci_test(0, 2, &[], &all).unwrap();
        assert!(p_marginal < 0.01, "a and c are dependent: p = {p_marginal}");
        let p_cond = data.ci_test(0, 2, &[1], &all).unwrap();
        assert!(p_cond > 0.05, "a ⊥ c | b: p = {p_cond}");
    }

    #[test]
    fn independent_variables_not_rejected() {
        let df = Scm::new()
            .categorical("x", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .categorical("y", &[("0", 0.3), ("1", 0.7)])
            .unwrap()
            .sample(3000, 9)
            .unwrap();
        let data = ci(&df);
        let p = data.ci_test(0, 1, &[], &Mask::ones(df.n_rows())).unwrap();
        assert!(p > 0.05, "independent: p = {p}");
    }

    #[test]
    fn collider_conditioning_induces_dependence() {
        // x → s ← y; x ⊥ y but x ⊥̸ y | s.
        let df = Scm::new()
            .categorical("x", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .categorical("y", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .node(
                "s",
                &["x", "y"],
                Box::new(|row, rng| {
                    let same = row.str("x") == row.str("y");
                    let p = if same { 0.9 } else { 0.1 };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap()
            .sample(3000, 13)
            .unwrap();
        let data = ci(&df);
        let all = Mask::ones(df.n_rows());
        assert!(data.ci_test(0, 1, &[], &all).unwrap() > 0.05);
        assert!(data.ci_test(0, 1, &[2], &all).unwrap() < 0.01);
    }

    #[test]
    fn numeric_columns_are_binned() {
        let df = DataFrame::builder()
            .int("x", (0..300).map(|i| i % 3).collect())
            .int("y", (0..300).map(|i| (i % 3) * 10).collect())
            .build()
            .unwrap();
        let data = ci(&df);
        let p = data.ci_test(0, 1, &[], &Mask::ones(300)).unwrap();
        assert!(p < 1e-6, "perfectly correlated: p = {p}");
    }

    #[test]
    fn untestable_returns_one() {
        // Constant column: no effective levels → p = 1.
        let df = DataFrame::builder()
            .cat("x", &["k"; 50])
            .cat(
                "y",
                &(0..50)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<_>>(),
            )
            .build()
            .unwrap();
        let data = ci(&df);
        assert_eq!(data.ci_test(0, 1, &[], &Mask::ones(50)).unwrap(), 1.0);
    }

    #[test]
    fn same_variable_rejected() {
        let df = chain_data();
        let data = ci(&df);
        assert!(data.ci_test(0, 0, &[], &Mask::ones(df.n_rows())).is_err());
    }
}
