//! Causal discovery from observational data.
//!
//! Provides the PC-stable algorithm ([`pc::pc_dag`]) over discretized data
//! with G² conditional-independence tests ([`ci::CiData`]). Used to produce
//! the "PC DAG" variant of the paper's Table 6 robustness experiment.

pub mod ci;
pub mod pc;

pub use ci::CiData;
pub use pc::{pc_dag, PcConfig};
