//! The PC-stable causal discovery algorithm.
//!
//! Produces a DAG from observational data, used by the paper's Table 6
//! ("PC DAG" robustness row):
//!
//! 1. **Skeleton** — start complete; remove the edge `x − y` whenever a
//!    conditioning set `S ⊆ adj(x) \ {y}` (or of `y`) makes them independent
//!    per the G² test. PC-stable: neighborhoods are frozen per level, making
//!    the result order-independent.
//! 2. **V-structures** — for non-adjacent `x, y` with common neighbor `z`,
//!    orient `x → z ← y` when `z` is not in the separating set.
//! 3. **Meek rules R1–R3** — propagate forced orientations (R4 only applies
//!    with background knowledge, which we do not use).
//! 4. **DAG extension** — orient remaining undirected edges in a
//!    deterministic order that avoids directed cycles.

use super::ci::CiData;
use crate::error::Result;
use crate::graph::Dag;
use faircap_table::{DataFrame, Mask};
use std::collections::{HashMap, HashSet};

/// Configuration for [`pc_dag`].
#[derive(Debug, Clone, Copy)]
pub struct PcConfig {
    /// Significance level for the CI tests (edges are *removed* when
    /// `p > alpha`). 0.05 is conventional.
    pub alpha: f64,
    /// Largest conditioning-set size examined.
    pub max_cond_size: usize,
}

impl Default for PcConfig {
    fn default() -> Self {
        PcConfig {
            alpha: 0.05,
            max_cond_size: 3,
        }
    }
}

/// Partially directed graph used internally during orientation.
struct Pdag {
    n: usize,
    /// `directed[i]` contains `j` when `i → j` is oriented.
    directed: Vec<HashSet<usize>>,
    /// Undirected edges as `(min, max)` pairs.
    undirected: HashSet<(usize, usize)>,
}

impl Pdag {
    fn new(n: usize) -> Pdag {
        Pdag {
            n,
            directed: vec![HashSet::new(); n],
            undirected: HashSet::new(),
        }
    }

    fn key(a: usize, b: usize) -> (usize, usize) {
        (a.min(b), a.max(b))
    }

    fn adjacent(&self, a: usize, b: usize) -> bool {
        self.undirected.contains(&Self::key(a, b))
            || self.directed[a].contains(&b)
            || self.directed[b].contains(&a)
    }

    fn has_undirected(&self, a: usize, b: usize) -> bool {
        self.undirected.contains(&Self::key(a, b))
    }

    /// Orient `a → b` (removing any undirected mark). Refuses orientations
    /// that contradict an existing `b → a`.
    fn orient(&mut self, a: usize, b: usize) -> bool {
        if self.directed[b].contains(&a) {
            return false;
        }
        self.undirected.remove(&Self::key(a, b));
        self.directed[a].insert(b)
    }

    /// Directed-reachability: can we walk `from ⇒ to` using oriented edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.directed[u] {
                if v == to {
                    return true;
                }
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Apply Meek rules R1–R3 until fixpoint.
    fn meek(&mut self) {
        loop {
            let mut changed = false;
            let edges: Vec<(usize, usize)> = self.undirected.iter().copied().collect();
            for (x, y) in edges {
                for (b, c) in [(x, y), (y, x)] {
                    if !self.has_undirected(b, c) {
                        continue;
                    }
                    // R1: a → b, b − c, a ∦ c  ⇒  b → c.
                    let r1 = (0..self.n)
                        .any(|a| a != c && self.directed[a].contains(&b) && !self.adjacent(a, c));
                    if r1 && self.orient(b, c) {
                        changed = true;
                        continue;
                    }
                    // R2: b → a → c with b − c  ⇒  b → c (avoid a cycle).
                    let r2 = (0..self.n)
                        .any(|a| self.directed[b].contains(&a) && self.directed[a].contains(&c));
                    if r2 && self.orient(b, c) {
                        changed = true;
                        continue;
                    }
                    // R3: b − a1, b − a2, a1 → c, a2 → c, a1 ∦ a2  ⇒  b → c.
                    let nbrs: Vec<usize> = (0..self.n)
                        .filter(|&a| self.has_undirected(b, a) && self.directed[a].contains(&c))
                        .collect();
                    let r3 = nbrs
                        .iter()
                        .enumerate()
                        .any(|(i, &a1)| nbrs[i + 1..].iter().any(|&a2| !self.adjacent(a1, a2)));
                    if r3 && self.orient(b, c) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Enumerate all `k`-subsets of `items`, invoking `f`; stops early when `f`
/// returns `true` and propagates that.
fn for_each_subset(items: &[usize], k: usize, f: &mut impl FnMut(&[usize]) -> bool) -> bool {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        buf: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if buf.len() == k {
            return f(buf);
        }
        for i in start..items.len() {
            buf.push(items[i]);
            if rec(items, k, i + 1, buf, f) {
                return true;
            }
            buf.pop();
        }
        false
    }
    rec(items, k, 0, &mut Vec::with_capacity(k), f)
}

/// Run PC-stable over the named columns of `df` and return a DAG.
pub fn pc_dag(df: &DataFrame, variables: &[String], config: PcConfig) -> Result<Dag> {
    let data = CiData::new(df, variables)?;
    let n = data.n_vars();
    let all_rows = Mask::ones(data.n_rows());

    // --- Phase 1: skeleton (PC-stable). ---
    let mut adj: Vec<HashSet<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| j != i).collect())
        .collect();
    let mut sepset: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for level in 0..=config.max_cond_size {
        // Freeze neighborhoods for this level (the "stable" part).
        let frozen = adj.clone();
        let mut removals: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for x in 0..n {
            for &y in frozen[x].iter() {
                if y < x || !adj[x].contains(&y) {
                    continue;
                }
                let mut candidates: Vec<usize> =
                    frozen[x].iter().copied().filter(|&v| v != y).collect();
                candidates.sort_unstable();
                let mut other: Vec<usize> = frozen[y].iter().copied().filter(|&v| v != x).collect();
                other.sort_unstable();
                let mut separated: Option<Vec<usize>> = None;
                for cands in [&candidates, &other] {
                    if cands.len() < level || separated.is_some() {
                        continue;
                    }
                    for_each_subset(
                        cands,
                        level,
                        &mut |s| match data.ci_test(x, y, s, &all_rows) {
                            Ok(p) if p > config.alpha => {
                                separated = Some(s.to_vec());
                                true
                            }
                            _ => false,
                        },
                    );
                }
                if let Some(s) = separated {
                    removals.push((x, y, s));
                }
            }
        }
        for (x, y, s) in removals {
            adj[x].remove(&y);
            adj[y].remove(&x);
            sepset.insert((x.min(y), x.max(y)), s);
        }
        if adj.iter().all(|a| a.len() <= level) {
            break;
        }
    }

    // --- Phase 2: v-structures. ---
    let mut g = Pdag::new(n);
    for (x, neighbors) in adj.iter().enumerate() {
        for &y in neighbors {
            if x < y {
                g.undirected.insert((x, y));
            }
        }
    }
    for z in 0..n {
        let nbrs: Vec<usize> = adj[z].iter().copied().collect();
        for (i, &x) in nbrs.iter().enumerate() {
            for &y in &nbrs[i + 1..] {
                if adj[x].contains(&y) {
                    continue; // x, y adjacent: not an unshielded triple
                }
                let s = sepset.get(&(x.min(y), x.max(y)));
                if s.map(|s| !s.contains(&z)).unwrap_or(false) {
                    g.orient(x, z);
                    g.orient(y, z);
                }
            }
        }
    }

    // --- Phase 3: Meek rules. ---
    g.meek();

    // --- Phase 4: extend to a DAG. ---
    // Orient remaining undirected edges in deterministic order, low → high
    // index unless that creates a directed cycle, re-running Meek each time.
    loop {
        let mut edges: Vec<(usize, usize)> = g.undirected.iter().copied().collect();
        if edges.is_empty() {
            break;
        }
        edges.sort_unstable();
        let (a, b) = edges[0];
        if !g.reaches(b, a) {
            g.orient(a, b);
        } else {
            g.orient(b, a);
        }
        g.meek();
    }

    // Materialize the Dag.
    let mut dag = Dag::new();
    for name in variables {
        dag.ensure_node(name);
    }
    // Deterministic edge order.
    for a in 0..n {
        let mut tos: Vec<usize> = g.directed[a].iter().copied().collect();
        tos.sort_unstable();
        for b in tos {
            // A contradictory double orientation cannot survive `orient`,
            // and cycles are prevented in phase 4; still, skip defensively.
            if dag.add_edge_by_name(&variables[a], &variables[b]).is_err() {
                continue;
            }
        }
    }
    Ok(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scm::{bernoulli, Scm};
    use faircap_table::Value;

    fn binary(dep: f64) -> impl Fn(&crate::scm::Row<'_>, &str) -> f64 {
        move |row, parent| {
            if row.str(parent) == "1" {
                dep
            } else {
                1.0 - dep
            }
        }
    }

    /// Collider x → z ← y is identifiable from observational data alone.
    #[test]
    fn recovers_collider() {
        let scm = Scm::new()
            .categorical("x", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .categorical("y", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .node(
                "z",
                &["x", "y"],
                Box::new(|row, rng| {
                    let p = match (row.str("x"), row.str("y")) {
                        ("1", "1") => 0.95,
                        ("0", "0") => 0.05,
                        _ => 0.5,
                    };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 21).unwrap();
        let vars: Vec<String> = df.names().to_vec();
        let dag = pc_dag(&df, &vars, PcConfig::default()).unwrap();
        let x = dag.node("x").unwrap();
        let y = dag.node("y").unwrap();
        let z = dag.node("z").unwrap();
        assert!(dag.has_edge(x, z), "x → z expected\n{}", dag.to_dot());
        assert!(dag.has_edge(y, z), "y → z expected\n{}", dag.to_dot());
        assert!(!dag.has_edge(x, y) && !dag.has_edge(y, x));
    }

    /// Chain a → b → c: skeleton a−b−c with no a−c edge; orientation of a
    /// chain is not identifiable (Markov equivalence), so we only check the
    /// skeleton and acyclicity.
    #[test]
    fn chain_skeleton_correct() {
        let f = binary(0.85);
        let scm = Scm::new()
            .categorical("a", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .node(
                "b",
                &["a"],
                Box::new(move |row, rng| {
                    Value::Str(
                        if bernoulli(rng, f(row, "a")) {
                            "1"
                        } else {
                            "0"
                        }
                        .into(),
                    )
                }),
            )
            .unwrap()
            .node(
                "c",
                &["b"],
                Box::new(|row, rng| {
                    let p = if row.str("b") == "1" { 0.85 } else { 0.15 };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 33).unwrap();
        let vars: Vec<String> = df.names().to_vec();
        let dag = pc_dag(&df, &vars, PcConfig::default()).unwrap();
        let a = dag.node("a").unwrap();
        let b = dag.node("b").unwrap();
        let c = dag.node("c").unwrap();
        let linked = |u, v| dag.has_edge(u, v) || dag.has_edge(v, u);
        assert!(linked(a, b), "a−b missing");
        assert!(linked(b, c), "b−c missing");
        assert!(!linked(a, c), "a−c must be absent");
        // DAG extension must produce a directed acyclic graph.
        assert_eq!(dag.topological_order().len(), 3);
    }

    #[test]
    fn independent_variables_no_edges() {
        let scm = Scm::new()
            .categorical("p", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .categorical("q", &[("0", 0.4), ("1", 0.6)])
            .unwrap()
            .categorical("r", &[("0", 0.7), ("1", 0.3)])
            .unwrap();
        let df = scm.sample(3000, 40).unwrap();
        let vars: Vec<String> = df.names().to_vec();
        let dag = pc_dag(&df, &vars, PcConfig::default()).unwrap();
        assert_eq!(dag.n_edges(), 0, "{}", dag.to_dot());
    }

    #[test]
    fn subset_enumeration() {
        let items = [1usize, 2, 3, 4];
        let mut seen = Vec::new();
        for_each_subset(&items, 2, &mut |s| {
            seen.push(s.to_vec());
            false
        });
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 3]));
        // early stop works
        let mut count = 0;
        let stopped = for_each_subset(&items, 2, &mut |_| {
            count += 1;
            count == 2
        });
        assert!(stopped);
        assert_eq!(count, 2);
    }

    #[test]
    fn result_is_always_acyclic() {
        // Denser structure; whatever PC finds, the extension must be a DAG.
        let scm = Scm::new()
            .categorical("a", &[("0", 0.5), ("1", 0.5)])
            .unwrap()
            .node(
                "b",
                &["a"],
                Box::new(|row, rng| {
                    let p = if row.str("a") == "1" { 0.8 } else { 0.2 };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap()
            .node(
                "c",
                &["a", "b"],
                Box::new(|row, rng| {
                    let mut p: f64 = 0.2;
                    if row.str("a") == "1" {
                        p += 0.3;
                    }
                    if row.str("b") == "1" {
                        p += 0.3;
                    }
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap()
            .node(
                "d",
                &["c"],
                Box::new(|row, rng| {
                    let p = if row.str("c") == "1" { 0.85 } else { 0.15 };
                    Value::Str(if bernoulli(rng, p) { "1" } else { "0" }.into())
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 55).unwrap();
        let vars: Vec<String> = df.names().to_vec();
        let dag = pc_dag(&df, &vars, PcConfig::default()).unwrap();
        assert_eq!(dag.topological_order().len(), dag.n_nodes());
    }
}
