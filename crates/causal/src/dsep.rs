//! d-separation.
//!
//! Implemented by the classical moralization criterion (Lauritzen et al.):
//! `X ⊥ Y | Z` in a DAG `G` iff `X` and `Y` are separated by `Z` in the
//! moralized ancestral graph of `X ∪ Y ∪ Z` — take the subgraph induced by
//! the ancestors of the three sets, marry all co-parents, drop directions,
//! remove `Z`, and test undirected connectivity.

use crate::graph::{Dag, NodeId};
use std::collections::{HashSet, VecDeque};

/// True iff `x` and `y` are d-separated by the conditioning set `z` in `g`.
///
/// `x`, `y` must be disjoint, non-empty node sets; `z` may overlap neither.
pub fn d_separated(g: &Dag, x: &[NodeId], y: &[NodeId], z: &[NodeId]) -> bool {
    debug_assert!(!x.is_empty() && !y.is_empty());
    debug_assert!(x.iter().all(|n| !y.contains(n)));

    // 1. Ancestral set of X ∪ Y ∪ Z (reflexive).
    let mut relevant: Vec<NodeId> = Vec::new();
    relevant.extend_from_slice(x);
    relevant.extend_from_slice(y);
    relevant.extend_from_slice(z);
    let mut anc = g.ancestors(&relevant);
    anc.extend(relevant.iter().copied());

    // 2. Moralize: undirected adjacency over `anc`, marrying co-parents.
    let n = g.n_nodes();
    let mut adj: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
    let in_anc = |id: NodeId| anc.contains(&id);
    for v in 0..n {
        if !in_anc(v) {
            continue;
        }
        let ps: Vec<NodeId> = g
            .parents(v)
            .iter()
            .copied()
            .filter(|&p| in_anc(p))
            .collect();
        for &p in &ps {
            adj[p].insert(v);
            adj[v].insert(p);
        }
        // Marry each pair of parents.
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                adj[ps[i]].insert(ps[j]);
                adj[ps[j]].insert(ps[i]);
            }
        }
    }

    // 3. Remove Z and test undirected reachability from X to Y.
    let blocked: HashSet<NodeId> = z.iter().copied().collect();
    let targets: HashSet<NodeId> = y.iter().copied().collect();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &s in x {
        if blocked.contains(&s) {
            continue;
        }
        if targets.contains(&s) {
            return false;
        }
        if seen.insert(s) {
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if blocked.contains(&v) || !seen.insert(v) {
                continue;
            }
            if targets.contains(&v) {
                return false;
            }
            queue.push_back(v);
        }
    }
    true
}

/// Convenience wrapper taking variable names.
pub fn d_separated_names(
    g: &Dag,
    x: &[&str],
    y: &[&str],
    z: &[&str],
) -> crate::error::Result<bool> {
    let resolve = |names: &[&str]| -> crate::error::Result<Vec<NodeId>> {
        names.iter().map(|n| g.node(n)).collect()
    };
    Ok(d_separated(g, &resolve(x)?, &resolve(y)?, &resolve(z)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain A -> B -> C.
    #[test]
    fn chain_blocking() {
        let g = Dag::from_edges(&[("A", "B"), ("B", "C")]).unwrap();
        assert!(!d_separated_names(&g, &["A"], &["C"], &[]).unwrap());
        assert!(d_separated_names(&g, &["A"], &["C"], &["B"]).unwrap());
    }

    /// Fork A <- B -> C.
    #[test]
    fn fork_blocking() {
        let g = Dag::from_edges(&[("B", "A"), ("B", "C")]).unwrap();
        assert!(!d_separated_names(&g, &["A"], &["C"], &[]).unwrap());
        assert!(d_separated_names(&g, &["A"], &["C"], &["B"]).unwrap());
    }

    /// Collider A -> B <- C: marginally independent, dependent given B or a
    /// descendant of B.
    #[test]
    fn collider_opens_when_conditioned() {
        let g = Dag::from_edges(&[("A", "B"), ("C", "B"), ("B", "D")]).unwrap();
        assert!(d_separated_names(&g, &["A"], &["C"], &[]).unwrap());
        assert!(!d_separated_names(&g, &["A"], &["C"], &["B"]).unwrap());
        // conditioning on the collider's descendant also opens the path
        assert!(!d_separated_names(&g, &["A"], &["C"], &["D"]).unwrap());
    }

    /// The M-graph: A <- U1 -> B <- U2 -> C. Conditioning on B opens a path
    /// between A and C (classic M-bias structure).
    #[test]
    fn m_graph() {
        let g = Dag::from_edges(&[("U1", "A"), ("U1", "B"), ("U2", "B"), ("U2", "C")]).unwrap();
        assert!(d_separated_names(&g, &["A"], &["C"], &[]).unwrap());
        assert!(!d_separated_names(&g, &["A"], &["C"], &["B"]).unwrap());
        // Adding U1 to Z re-blocks.
        assert!(d_separated_names(&g, &["A"], &["C"], &["B", "U1"]).unwrap());
    }

    /// Figure 1 of the paper: conditioning on {Education, Role} separates Age
    /// from Salary, but Education alone does not (Age -> Role -> Salary).
    #[test]
    fn paper_fig1_separations() {
        let g = Dag::from_edges(&[
            ("Ethnicity", "Role"),
            ("Gender", "Role"),
            ("Age", "Role"),
            ("Age", "Education"),
            ("Education", "Role"),
            ("Education", "Salary"),
            ("Role", "Salary"),
        ])
        .unwrap();
        assert!(!d_separated_names(&g, &["Age"], &["Salary"], &["Education"]).unwrap());
        assert!(d_separated_names(&g, &["Age"], &["Salary"], &["Education", "Role"]).unwrap());
        // Conditioning on Role alone does NOT separate Gender from Salary:
        // Role is a collider on Gender → Role ← Education → Salary, so
        // conditioning on it opens that path.
        assert!(!d_separated_names(&g, &["Gender"], &["Salary"], &["Role"]).unwrap());
        assert!(d_separated_names(&g, &["Gender"], &["Salary"], &["Role", "Education"]).unwrap());
        assert!(!d_separated_names(&g, &["Gender"], &["Salary"], &[]).unwrap());
    }

    #[test]
    fn disconnected_nodes_are_separated() {
        let mut g = Dag::new();
        g.add_node("A").unwrap();
        g.add_node("B").unwrap();
        assert!(d_separated_names(&g, &["A"], &["B"], &[]).unwrap());
    }

    #[test]
    fn set_valued_queries() {
        // A -> C <- B, A -> D, B -> E
        let g = Dag::from_edges(&[("A", "C"), ("B", "C"), ("A", "D"), ("B", "E")]).unwrap();
        // {D} vs {E}: paths only via A -> C <- B collider (blocked) → separated.
        assert!(d_separated_names(&g, &["D"], &["E"], &[]).unwrap());
        assert!(!d_separated_names(&g, &["D"], &["E"], &["C"]).unwrap());
        // blocking the open collider path again with A (or B)
        assert!(d_separated_names(&g, &["D"], &["E"], &["C", "A"]).unwrap());
    }

    #[test]
    fn conditioning_set_member_as_source_is_blocked() {
        let g = Dag::from_edges(&[("A", "B")]).unwrap();
        // degenerate but well-defined: x ⊆ z means no active path can start
        assert!(d_separated_names(&g, &["A"], &["B"], &["A"]).unwrap());
    }

    #[test]
    fn unknown_name_errors() {
        let g = Dag::from_edges(&[("A", "B")]).unwrap();
        assert!(d_separated_names(&g, &["A"], &["Z"], &[]).is_err());
    }
}
