//! High-level CATE queries for prescription rules.
//!
//! [`CateEngine`] binds a dataset, a causal DAG, and an outcome, and answers
//! "what is the CATE of intervention pattern `P_int` within subgroup mask
//! `g`?" — the quantity behind every utility in the paper (Definition 4.4).
//! Adjustment sets are derived from the DAG once per treatment-attribute set
//! and cached; full estimates are cached per `(group, intervention)` pair,
//! which the greedy phase hits repeatedly.

use crate::backdoor::find_adjustment_set_names;
use crate::error::Result;
use crate::estimate::{estimate_cate, Estimate, EstimatorKind};
use crate::graph::Dag;
use faircap_table::{DataFrame, Mask, Pattern};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Engine answering CATE queries against one dataset + DAG.
pub struct CateEngine<'a> {
    df: &'a DataFrame,
    dag: &'a Dag,
    outcome: String,
    kind: EstimatorKind,
    adjustment_cache: Mutex<HashMap<Vec<String>, Option<Vec<String>>>>,
    treated_cache: Mutex<HashMap<Pattern, Mask>>,
    estimate_cache: Mutex<HashMap<(u64, Pattern), Option<Estimate>>>,
}

impl<'a> CateEngine<'a> {
    /// Create an engine. `outcome` must be a numeric or boolean column.
    pub fn new(df: &'a DataFrame, dag: &'a Dag, outcome: &str, kind: EstimatorKind) -> Self {
        CateEngine {
            df,
            dag,
            outcome: outcome.to_owned(),
            kind,
            adjustment_cache: Mutex::new(HashMap::new()),
            treated_cache: Mutex::new(HashMap::new()),
            estimate_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The dataset the engine is bound to.
    pub fn df(&self) -> &DataFrame {
        self.df
    }

    /// The causal DAG the engine is bound to.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// The outcome attribute.
    pub fn outcome(&self) -> &str {
        &self.outcome
    }

    /// Whether an attribute has any causal path to the outcome — the paper's
    /// §5.2 optimization (i): attributes without one cannot change the CATE
    /// and are skipped during intervention mining.
    pub fn affects_outcome(&self, attr: &str) -> bool {
        match (self.dag.node(attr), self.dag.node(&self.outcome)) {
            (Ok(a), Ok(o)) => a != o && self.dag.is_reachable(a, o),
            _ => false,
        }
    }

    /// Backdoor adjustment set for a treatment-attribute set (cached).
    /// `None` when identification fails.
    pub fn adjustment_for(&self, treatment_attrs: &[String]) -> Option<Vec<String>> {
        let key: Vec<String> = treatment_attrs.to_vec();
        if let Some(hit) = self.adjustment_cache.lock().get(&key) {
            return hit.clone();
        }
        let in_dag: Vec<&str> = treatment_attrs
            .iter()
            .map(|s| s.as_str())
            .filter(|a| self.dag.has_node(a))
            .collect();
        let computed = if in_dag.is_empty() {
            None
        } else {
            find_adjustment_set_names(self.dag, &in_dag, &self.outcome).ok()
        };
        self.adjustment_cache.lock().insert(key, computed.clone());
        computed
    }

    /// Mask of rows satisfying an intervention pattern (cached).
    pub fn treated_mask(&self, intervention: &Pattern) -> Result<Mask> {
        if let Some(hit) = self.treated_cache.lock().get(intervention) {
            return Ok(hit.clone());
        }
        let m = intervention.coverage(self.df)?;
        self.treated_cache
            .lock()
            .insert(intervention.clone(), m.clone());
        Ok(m)
    }

    /// CATE of `intervention` within `group` (Definition 4.4 utilities).
    ///
    /// Returns `None` when the effect is not estimable: unidentified
    /// adjustment, insufficient overlap, or a degenerate design.
    pub fn cate(&self, group: &Mask, intervention: &Pattern) -> Option<Estimate> {
        let key = (mask_fingerprint(group), intervention.clone());
        if let Some(hit) = self.estimate_cache.lock().get(&key) {
            return *hit;
        }
        let result = self.cate_uncached(group, intervention);
        self.estimate_cache.lock().insert(key, result);
        result
    }

    fn cate_uncached(&self, group: &Mask, intervention: &Pattern) -> Option<Estimate> {
        if intervention.is_empty() {
            return None;
        }
        let attrs: Vec<String> = intervention
            .attributes()
            .into_iter()
            .map(|s| s.to_owned())
            .collect();
        let adjustment = self.adjustment_for(&attrs)?;
        let treated = self.treated_mask(intervention).ok()?;
        estimate_cate(
            self.kind,
            self.df,
            group,
            &treated,
            &self.outcome,
            &adjustment,
        )
        .ok()
    }

    /// Number of cached estimates (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.estimate_cache.lock().len()
    }
}

fn mask_fingerprint(mask: &Mask) -> u64 {
    let mut h = DefaultHasher::new();
    mask.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scm::{bernoulli, normal, Scm};
    use faircap_table::Value;

    /// region → educated → income, region → income. Planted effect: +20.
    fn fixture() -> (DataFrame, Dag) {
        let scm = Scm::new()
            .categorical("region", &[("north", 0.5), ("south", 0.5)])
            .unwrap()
            .node(
                "educated",
                &["region"],
                Box::new(|row, rng| {
                    let p = if row.str("region") == "north" { 0.7 } else { 0.3 };
                    Value::Bool(bernoulli(rng, p))
                }),
            )
            .unwrap()
            .node(
                "income",
                &["region", "educated"],
                Box::new(|row, rng| {
                    let base = if row.str("region") == "north" { 60.0 } else { 40.0 };
                    let boost = if row.flag("educated") { 20.0 } else { 0.0 };
                    Value::Float(base + boost + normal(rng, 0.0, 5.0))
                }),
            )
            .unwrap();
        let df = scm.sample(4000, 11).unwrap();
        let dag = scm.dag();
        (df, dag)
    }

    #[test]
    fn engine_recovers_planted_effect() {
        let (df, dag) = fixture();
        let engine = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        let all = Mask::ones(df.n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let est = engine.cate(&all, &p).unwrap();
        assert!((est.cate - 20.0).abs() < 1.0, "cate = {}", est.cate);
        assert!(est.is_significant(0.01));
    }

    #[test]
    fn caching_returns_identical_results() {
        let (df, dag) = fixture();
        let engine = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        let all = Mask::ones(df.n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let a = engine.cate(&all, &p);
        let before = engine.cache_len();
        let b = engine.cate(&all, &p);
        assert_eq!(a, b);
        assert_eq!(engine.cache_len(), before);
    }

    #[test]
    fn subgroup_query_differs_from_global() {
        let (df, dag) = fixture();
        let engine = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        let north = Pattern::of_eq(&[("region", Value::from("north"))])
            .coverage(&df)
            .unwrap();
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let est = engine.cate(&north, &p).unwrap();
        assert!((est.cate - 20.0).abs() < 1.5, "north cate = {}", est.cate);
        assert!(est.n_treated + est.n_control <= north.count());
    }

    #[test]
    fn empty_intervention_yields_none() {
        let (df, dag) = fixture();
        let engine = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        assert!(engine.cate(&Mask::ones(df.n_rows()), &Pattern::empty()).is_none());
    }

    #[test]
    fn affects_outcome_prunes_unconnected() {
        let (df, dag) = fixture();
        let engine = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        assert!(engine.affects_outcome("educated"));
        assert!(engine.affects_outcome("region"));
        assert!(!engine.affects_outcome("income")); // the outcome itself
        assert!(!engine.affects_outcome("not_a_column"));
    }

    #[test]
    fn unknown_treatment_attribute_yields_none() {
        let (df, dag) = fixture();
        let engine = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        let p = Pattern::of_eq(&[("ghost", Value::Int(1))]);
        assert!(engine.cate(&Mask::ones(df.n_rows()), &p).is_none());
    }

    #[test]
    fn stratified_engine_agrees_with_linear() {
        let (df, dag) = fixture();
        let lin = CateEngine::new(&df, &dag, "income", EstimatorKind::Linear);
        let strat = CateEngine::new(&df, &dag, "income", EstimatorKind::Stratified);
        let all = Mask::ones(df.n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let a = lin.cate(&all, &p).unwrap().cate;
        let b = strat.cate(&all, &p).unwrap().cate;
        assert!((a - b).abs() < 1.0, "linear {a} vs stratified {b}");
    }
}
