//! High-level CATE queries for prescription rules.
//!
//! [`CateEngine`] owns a dataset (via `Arc`), a causal DAG, and an outcome,
//! and answers "what is the CATE of intervention pattern `P_int` within
//! subgroup mask `g`?" — the quantity behind every utility in the paper
//! (Definition 4.4). The engine is **estimator-agnostic**: the estimator is
//! supplied per query (see [`Estimator`]), so one long-lived engine serves
//! repeated solves under different estimators while sharing its caches.
//!
//! Four caches persist across queries:
//!
//! * adjustment sets, derived from the DAG once per treatment-attribute set;
//! * treated-row masks, one per intervention pattern;
//! * KD-tree match indices ([`MatchIndexCache`]), one per
//!   `(subgroup, adjustment set)` — the matching estimator's standardized
//!   design and tree are built once and reused across the whole
//!   intervention sweep over that subgroup;
//! * full estimates, keyed by `(estimator, group, intervention)` — the cache
//!   the greedy phase and repeated constraint re-solves hit hardest. This
//!   one is a [`ShardedLruCache`]: lookups contend on one of its lock
//!   shards instead of a single engine-wide mutex, and its entry count can
//!   be bounded ([`CateEngine::set_estimate_cache_capacity`]) with
//!   least-recently-used eviction for long-lived serving deployments.
//!
//! Hit/miss/eviction counters ([`CateEngine::cache_stats`]) make the reuse
//! observable — in aggregate and per estimator name
//! ([`CateEngine::cache_stats_by_estimator`]), so estimator sweeps can
//! attribute cache behaviour to each estimator; the session integration
//! tests assert on them.
//!
//! The full cache state (adjustment sets, treated masks, estimates) can be
//! exported and re-imported ([`CateEngine::export_state`] /
//! [`CateEngine::import_state`]) — the substrate of
//! `PrescriptionSession::snapshot()` warm-starts.

use crate::backdoor::find_adjustment_set_names;
use crate::error::{CausalError, Result};
use crate::estimate::matching::MatchIndex;
use crate::estimate::{kernel, Estimate, EstimateCtx, Estimator, HotStats};
use crate::graph::Dag;
use faircap_obs::{Histogram, HistogramSnapshot, SpanHandle};
use faircap_table::{DataFrame, DataType, FnvHasher, Mask, Pattern, ShardedLruCache};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Estimate-cache hit/miss counters (see [`CateEngine::cache_stats`]).
///
/// Reported both in aggregate ([`CateEngine::cache_stats`]) and broken down
/// per estimator name ([`CateEngine::cache_stats_by_estimator`]), so an
/// estimator sweep can attribute its cache behaviour to each estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the estimate cache.
    pub hits: u64,
    /// Queries that had to run an estimation (or re-discover that the pair
    /// is not estimable).
    pub misses: u64,
    /// Entries currently held in the estimate cache.
    pub entries: usize,
    /// Entries evicted to respect the cache's LRU bound (0 while the cache
    /// is unbounded, the default).
    pub evictions: u64,
}

/// Number of lock shards of the estimate cache. Step-2 mining fans out
/// across worker threads that all funnel their CATE queries through one
/// engine; 16 shards keep them off each other's locks.
const ESTIMATE_CACHE_SHARDS: usize = 16;

/// Default entry bound of the match-index cache. Indices are heavy
/// (standardized design + KD-tree, O(rows·dim) floats each) and a solve
/// only sweeps a handful of subgroups at a time, so a small LRU bound
/// keeps reuse high without letting index memory grow with the sweep.
const MATCH_INDEX_CACHE_CAPACITY: usize = 32;

/// Lock shards of the match-index cache; fewer distinct keys than the
/// estimate cache, so fewer shards suffice.
const MATCH_INDEX_CACHE_SHARDS: usize = 4;

/// Session-lived cache of matching indices ([`MatchIndex`]: standardized
/// columnar design + KD-tree), keyed by `(subgroup fingerprint, adjustment
/// set)`. The matching estimator's index depends only on the subgroup rows
/// and the adjustment covariates — *not* on the intervention — so one index
/// serves the entire pattern sweep against a subgroup. LRU-bounded because
/// each index holds O(rows · dim) floats.
pub struct MatchIndexCache {
    cache: ShardedLruCache<(u64, Vec<String>), Arc<MatchIndex>>,
}

impl Default for MatchIndexCache {
    fn default() -> Self {
        Self::with_capacity(MATCH_INDEX_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for MatchIndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchIndexCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl MatchIndexCache {
    /// A cache bounded to `capacity` indices (LRU eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        MatchIndexCache {
            cache: ShardedLruCache::new(capacity, MATCH_INDEX_CACHE_SHARDS),
        }
    }

    /// Return the cached index for `(group_fp, adjustment)`, building (and
    /// caching) it on miss. Build costs are charged to `stats`
    /// (`build_ns`/`index_ns`); a hit charges nothing.
    #[allow(clippy::too_many_arguments)] // mirrors the estimator signature plus the cache key
    pub fn get_or_build(
        &self,
        group_fp: u64,
        df: &DataFrame,
        group: &Mask,
        outcome: &str,
        adjustment: &[String],
        workers: usize,
        stats: &mut HotStats,
    ) -> Result<Arc<MatchIndex>> {
        let key = (group_fp, adjustment.to_vec());
        if let Some(hit) = self.cache.get(&key) {
            return Ok(hit);
        }
        let built = Arc::new(MatchIndex::build(
            df, group, outcome, adjustment, workers, stats,
        )?);
        self.cache.insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Hit/miss/entry/eviction counters of the index cache.
    pub fn stats(&self) -> CacheStats {
        let c = self.cache.counters();
        CacheStats {
            hits: c.hits,
            misses: c.misses,
            entries: c.entries,
            evictions: c.evictions,
        }
    }
}

/// Aggregated hot-path cost accounting across every (uncached) estimate an
/// engine ran — see [`CateEngine::hot_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineHotStats {
    /// Per-stage totals summed over estimates.
    pub stats: HotStats,
    /// Number of estimation runs that contributed (cache hits excluded).
    pub estimates: u64,
}

/// Key of one cached estimate: estimator identity, subgroup fingerprint,
/// intervention pattern. The estimator name is interned per query
/// (`Arc<str>`), so evictions can attribute the departing entry back to its
/// estimator's counters; the group is a 64-bit fingerprint of the mask
/// (masks themselves live in the treated/grouping caches), which together
/// with the full `Pattern` makes the key cheap to hash and —
/// deliberately — serialization-friendly: `(name, fingerprint, pattern)`
/// round-trips through the session snapshot format.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EstimateKey {
    estimator: Arc<str>,
    group_fp: u64,
    intervention: Pattern,
}

/// Exported cache state of a [`CateEngine`] — everything a warm restart
/// needs (see [`CateEngine::export_state`]). Estimates are keyed by
/// estimator *name*, group fingerprint, and intervention pattern; `None`
/// estimates record "not estimable" answers so a warm solve does not
/// re-discover them.
#[derive(Debug, Clone, Default)]
pub struct CateEngineState {
    /// Backdoor adjustment sets per treatment-attribute set (`None` =
    /// identification failed).
    pub adjustments: Vec<(Vec<String>, Option<Vec<String>>)>,
    /// Treated-row masks per intervention pattern.
    pub treated: Vec<(Pattern, Mask)>,
    /// Cached estimates: `(estimator name, group fingerprint, intervention,
    /// estimate-or-not-estimable)`.
    pub estimates: Vec<(String, u64, Pattern, Option<Estimate>)>,
}

/// Engine answering CATE queries against one dataset + DAG.
pub struct CateEngine {
    df: Arc<DataFrame>,
    dag: Arc<Dag>,
    outcome: String,
    adjustment_cache: Mutex<HashMap<Vec<String>, Option<Vec<String>>>>,
    treated_cache: Mutex<HashMap<Pattern, Mask>>,
    /// Estimates and not-estimable verdicts, sharded and LRU-bounded.
    /// Aggregate hit/miss/eviction counters live inside the cache (per
    /// shard); the per-estimator-name breakdown lives in `per_estimator`.
    estimate_cache: ShardedLruCache<EstimateKey, Option<Estimate>>,
    per_estimator: Mutex<HashMap<String, CacheStats>>,
    /// KD-tree match indices, shared across the matching sweep.
    match_index_cache: MatchIndexCache,
    /// Hot-path cost totals across every estimation run.
    hot: Mutex<EngineHotStats>,
    /// Per-estimator-name estimate-duration histograms (nanoseconds per
    /// uncached estimation run), exposed via
    /// [`estimate_histograms`](Self::estimate_histograms) for the serving
    /// layer's `/metrics` exposition.
    estimate_hist: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for CateEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CateEngine")
            .field("outcome", &self.outcome)
            .field("n_rows", &self.df.n_rows())
            .field("cache_stats", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

impl CateEngine {
    /// Create an engine bound to a frame, a DAG, and an outcome column.
    ///
    /// Fails (rather than panicking or silently answering `None` forever)
    /// when the outcome column is missing or non-numeric.
    pub fn new(df: Arc<DataFrame>, dag: Arc<Dag>, outcome: impl Into<String>) -> Result<Self> {
        let outcome = outcome.into();
        let col = df.column(&outcome)?;
        if col.data_type() == DataType::Cat {
            return Err(CausalError::InvalidOutcome {
                column: outcome,
                reason: "categorical columns cannot be averaged; use a numeric or boolean outcome"
                    .into(),
            });
        }
        Ok(CateEngine {
            df,
            dag,
            outcome,
            adjustment_cache: Mutex::new(HashMap::new()),
            treated_cache: Mutex::new(HashMap::new()),
            estimate_cache: ShardedLruCache::unbounded(ESTIMATE_CACHE_SHARDS),
            per_estimator: Mutex::new(HashMap::new()),
            match_index_cache: MatchIndexCache::default(),
            hot: Mutex::new(EngineHotStats::default()),
            estimate_hist: Mutex::new(BTreeMap::new()),
        })
    }

    /// The dataset the engine is bound to.
    pub fn df(&self) -> &DataFrame {
        &self.df
    }

    /// The causal DAG the engine is bound to.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The outcome attribute.
    pub fn outcome(&self) -> &str {
        &self.outcome
    }

    /// Bind an estimator for a batch of queries; the returned view shares
    /// this engine's caches. The estimator's name is interned once here, so
    /// the per-query hot path builds its cache key without allocating for
    /// the name.
    pub fn with_estimator<'a>(&'a self, estimator: &'a dyn Estimator) -> CateQuery<'a> {
        CateQuery {
            engine: self,
            estimator,
            name: Arc::from(estimator.name()),
            span: None,
        }
    }

    /// Whether an attribute has any causal path to the outcome — the paper's
    /// §5.2 optimization (i): attributes without one cannot change the CATE
    /// and are skipped during intervention mining.
    pub fn affects_outcome(&self, attr: &str) -> bool {
        match (self.dag.node(attr), self.dag.node(&self.outcome)) {
            (Ok(a), Ok(o)) => a != o && self.dag.is_reachable(a, o),
            _ => false,
        }
    }

    /// Backdoor adjustment set for a treatment-attribute set (cached).
    /// `None` when identification fails.
    pub fn adjustment_for(&self, treatment_attrs: &[String]) -> Option<Vec<String>> {
        let key: Vec<String> = treatment_attrs.to_vec();
        if let Some(hit) = self.adjustment_cache.lock().get(&key) {
            return hit.clone();
        }
        let in_dag: Vec<&str> = treatment_attrs
            .iter()
            .map(|s| s.as_str())
            .filter(|a| self.dag.has_node(a))
            .collect();
        let computed = if in_dag.is_empty() {
            None
        } else {
            find_adjustment_set_names(&self.dag, &in_dag, &self.outcome).ok()
        };
        self.adjustment_cache.lock().insert(key, computed.clone());
        computed
    }

    /// Mask of rows satisfying an intervention pattern (cached).
    pub fn treated_mask(&self, intervention: &Pattern) -> Result<Mask> {
        if let Some(hit) = self.treated_cache.lock().get(intervention) {
            return Ok(hit.clone());
        }
        let m = intervention.coverage(&self.df)?;
        self.treated_cache
            .lock()
            .insert(intervention.clone(), m.clone());
        Ok(m)
    }

    /// Bump one estimator's counter slot, allocating its key on first use.
    fn bump(&self, name: &str, f: impl FnOnce(&mut CacheStats)) {
        let mut per = self.per_estimator.lock();
        match per.get_mut(name) {
            Some(slot) => f(slot),
            None => f(per.entry(name.to_owned()).or_default()),
        }
    }

    /// Account evicted entries back to their estimators' counters.
    fn absorb_evictions(&self, evicted: Vec<(EstimateKey, Option<Estimate>)>) {
        if evicted.is_empty() {
            return;
        }
        let mut per = self.per_estimator.lock();
        for (key, _) in evicted {
            if let Some(slot) = per.get_mut(key.estimator.as_ref()) {
                slot.entries = slot.entries.saturating_sub(1);
                slot.evictions += 1;
            }
        }
    }

    /// CATE of `intervention` within `group` under `estimator`
    /// (Definition 4.4 utilities).
    ///
    /// Returns `None` when the effect is not estimable: unidentified
    /// adjustment, insufficient overlap, or a degenerate design. Both
    /// estimable and non-estimable answers are cached per
    /// `(estimator, group, intervention)`.
    pub fn cate(
        &self,
        group: &Mask,
        intervention: &Pattern,
        estimator: &dyn Estimator,
    ) -> Option<Estimate> {
        self.cate_with_name(
            group,
            intervention,
            &Arc::from(estimator.name()),
            estimator,
            None,
        )
    }

    /// [`cate`](Self::cate) with a pre-interned estimator name —
    /// [`CateQuery`] resolves the `Arc<str>` once per solve so the
    /// per-query key build only clones a pointer. When `span` is set (a
    /// traced solve) every query emits a child span: `estimate_hit:<name>`
    /// for a cache lookup answered from the estimate cache,
    /// `estimate:<name>` covering the actual estimation on a miss.
    fn cate_with_name(
        &self,
        group: &Mask,
        intervention: &Pattern,
        name: &Arc<str>,
        estimator: &dyn Estimator,
        span: Option<&SpanHandle>,
    ) -> Option<Estimate> {
        let key = EstimateKey {
            estimator: Arc::clone(name),
            group_fp: mask_fingerprint(group),
            intervention: intervention.clone(),
        };
        if let Some(hit) = self.estimate_cache.get(&key) {
            self.bump(name, |s| s.hits += 1);
            if let Some(h) = span {
                h.child(format!("estimate_hit:{name}")).finish();
            }
            return hit;
        }
        let result = {
            let _estimate_span = span.map(|h| h.child(format!("estimate:{name}")));
            self.cate_uncached(group, key.group_fp, intervention, estimator)
        };
        // A racing duplicate query may have inserted the same key first;
        // `replaced` distinguishes that (same value — estimation is
        // deterministic), so per-estimator entry counts stay exact.
        let inserted = self.estimate_cache.insert(key, result);
        self.bump(name, |s| {
            s.misses += 1;
            if !inserted.replaced {
                s.entries += 1;
            }
        });
        self.absorb_evictions(inserted.evicted);
        result
    }

    fn cate_uncached(
        &self,
        group: &Mask,
        group_fp: u64,
        intervention: &Pattern,
        estimator: &dyn Estimator,
    ) -> Option<Estimate> {
        if intervention.is_empty() {
            return None;
        }
        let attrs: Vec<String> = intervention
            .attributes()
            .into_iter()
            .map(|s| s.to_owned())
            .collect();
        let adjustment = self.adjustment_for(&attrs)?;
        let treated = self.treated_mask(intervention).ok()?;
        let mut ctx = EstimateCtx {
            workers: kernel::auto_workers(group.count()),
            stats: HotStats::default(),
            index_cache: Some((&self.match_index_cache, group_fp)),
        };
        let t0 = Instant::now();
        let result = estimator
            .estimate_with_ctx(
                &mut ctx,
                &self.df,
                group,
                &treated,
                &self.outcome,
                &adjustment,
            )
            .ok();
        let total = t0.elapsed().as_nanos() as u64;
        let mut stats = ctx.stats;
        stats.solve_ns = total.saturating_sub(stats.build_ns.saturating_add(stats.index_ns));
        let mut hot = self.hot.lock();
        hot.stats.absorb(&stats);
        hot.estimates += 1;
        drop(hot);
        self.estimate_duration_hist(estimator.name()).record(total);
        result
    }

    /// The estimate-duration histogram of one estimator name, created on
    /// first use. The `Arc` keeps recording lock-free once resolved.
    fn estimate_duration_hist(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.estimate_hist.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Per-estimator estimate-duration histograms (nanoseconds per
    /// uncached estimation), snapshotted in estimator-name order.
    /// Estimators never run on this engine are absent.
    pub fn estimate_histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.estimate_hist
            .lock()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Number of cached estimates (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.estimate_cache.len()
    }

    /// Aggregated hot-path cost accounting — per-stage nanoseconds, executor
    /// task counts, and KD-tree visit totals — across every estimation run
    /// this engine performed (cache hits excluded).
    pub fn hot_stats(&self) -> EngineHotStats {
        *self.hot.lock()
    }

    /// The KD-tree match-index cache (for direct reuse or inspection).
    pub fn match_index_cache(&self) -> &MatchIndexCache {
        &self.match_index_cache
    }

    /// Hit/miss counters of the match-index cache.
    pub fn match_index_cache_stats(&self) -> CacheStats {
        self.match_index_cache.stats()
    }

    /// Bound the estimate cache to at most `capacity` entries, evicting
    /// least-recently-used estimates immediately if it is over the bound.
    /// The engine starts unbounded (`usize::MAX`).
    pub fn set_estimate_cache_capacity(&self, capacity: usize) {
        let evicted = self.estimate_cache.set_capacity(capacity);
        self.absorb_evictions(evicted);
    }

    /// The estimate cache's configured entry bound.
    pub fn estimate_cache_capacity(&self) -> usize {
        self.estimate_cache.capacity()
    }

    /// Estimate-cache hit/miss counters since the engine was built,
    /// aggregated over all estimators.
    ///
    /// `misses` counts actual estimation work; a solve that adds no misses
    /// performed no redundant CATE estimation. Use
    /// [`cache_stats_by_estimator`](Self::cache_stats_by_estimator) for the
    /// per-estimator breakdown.
    ///
    /// # Examples
    ///
    /// ```
    /// use faircap_causal::{CateEngine, Dag, EstimatorKind};
    /// use faircap_table::{DataFrame, Mask, Pattern, Value};
    /// use std::sync::Arc;
    ///
    /// let df = DataFrame::builder()
    ///     .cat("t", &["y", "y", "y", "y", "y", "y", "n", "n", "n", "n", "n", "n"])
    ///     .float("o", vec![7.0, 8.0, 7.5, 8.5, 7.0, 8.0, 1.0, 2.0, 1.5, 2.5, 1.0, 2.0])
    ///     .build()
    ///     .unwrap();
    /// let dag = Dag::parse_edge_list("t -> o").unwrap();
    /// let engine = CateEngine::new(Arc::new(df), Arc::new(dag), "o").unwrap();
    ///
    /// let all = Mask::ones(engine.df().n_rows());
    /// let p = Pattern::of_eq(&[("t", Value::from("y"))]);
    /// engine.cate(&all, &p, &EstimatorKind::Linear); // miss: runs the estimation
    /// engine.cate(&all, &p, &EstimatorKind::Linear); // hit: served from cache
    ///
    /// let stats = engine.cache_stats();
    /// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    /// let per = engine.cache_stats_by_estimator();
    /// assert_eq!(per["linear"].misses, 1);
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        let c = self.estimate_cache.counters();
        CacheStats {
            hits: c.hits,
            misses: c.misses,
            entries: c.entries,
            evictions: c.evictions,
        }
    }

    /// Estimate-cache counters broken down by [`Estimator::name`], in
    /// name order.
    ///
    /// Estimators that were never queried on this engine are absent. The
    /// per-name `hits`/`misses`/`entries` sum to the aggregate
    /// [`cache_stats`](Self::cache_stats) (entries may transiently differ
    /// under concurrent insertion, since the aggregate recounts the cache).
    pub fn cache_stats_by_estimator(&self) -> BTreeMap<String, CacheStats> {
        self.per_estimator
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Estimate-cache counters for one estimator name; zeros if the
    /// estimator was never queried on this engine.
    pub fn cache_stats_for(&self, name: &str) -> CacheStats {
        self.per_estimator
            .lock()
            .get(name)
            .copied()
            .unwrap_or_default()
    }

    /// Export every cache the engine has warmed — adjustment sets, treated
    /// masks, and estimates — for persistence. The inverse of
    /// [`import_state`](Self::import_state).
    pub fn export_state(&self) -> CateEngineState {
        let adjustments = self
            .adjustment_cache
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let treated = self
            .treated_cache
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut estimates = Vec::with_capacity(self.estimate_cache.len());
        self.estimate_cache.for_each(|key, est| {
            estimates.push((
                key.estimator.to_string(),
                key.group_fp,
                key.intervention.clone(),
                *est,
            ));
        });
        CateEngineState {
            adjustments,
            treated,
            estimates,
        }
    }

    /// Warm the engine's caches from a previously exported state. Imported
    /// entries count toward per-estimator `entries` but not hits or misses;
    /// if the estimate cache is bounded and the import overflows it, the
    /// overflow is evicted LRU-first (imports are applied in order, so
    /// later records survive).
    pub fn import_state(&self, state: CateEngineState) {
        self.adjustment_cache.lock().extend(state.adjustments);
        self.treated_cache.lock().extend(state.treated);
        for (name, group_fp, intervention, est) in state.estimates {
            let key = EstimateKey {
                estimator: Arc::from(name.as_str()),
                group_fp,
                intervention,
            };
            let inserted = self.estimate_cache.insert(key, est);
            if !inserted.replaced {
                self.bump(&name, |s| s.entries += 1);
            }
            self.absorb_evictions(inserted.evicted);
        }
    }
}

/// A [`CateEngine`] bound to one estimator — the view the mining and greedy
/// phases consume. Cheap to construct per solve (it interns the estimator
/// name once); all caches live on the engine and are shared across views.
#[derive(Clone)]
pub struct CateQuery<'a> {
    engine: &'a CateEngine,
    estimator: &'a dyn Estimator,
    name: Arc<str>,
    /// Parent span of a traced solve; when set, every query emits
    /// estimate/estimate-hit child spans under it.
    span: Option<SpanHandle>,
}

impl<'a> CateQuery<'a> {
    /// The underlying engine.
    pub fn engine(&self) -> &'a CateEngine {
        self.engine
    }

    /// Attach a tracing parent: estimate spans of subsequent queries nest
    /// under `span`. `None` (the default) traces nothing and costs one
    /// branch per query.
    pub fn with_span(mut self, span: Option<SpanHandle>) -> CateQuery<'a> {
        self.span = span;
        self
    }

    /// The bound estimator.
    pub fn estimator(&self) -> &'a dyn Estimator {
        self.estimator
    }

    /// The dataset the engine is bound to.
    pub fn df(&self) -> &'a DataFrame {
        self.engine.df()
    }

    /// See [`CateEngine::affects_outcome`].
    pub fn affects_outcome(&self, attr: &str) -> bool {
        self.engine.affects_outcome(attr)
    }

    /// See [`CateEngine::cate`].
    pub fn cate(&self, group: &Mask, intervention: &Pattern) -> Option<Estimate> {
        self.engine.cate_with_name(
            group,
            intervention,
            &self.name,
            self.estimator,
            self.span.as_ref(),
        )
    }
}

/// Deterministic 64-bit fingerprint of a mask's bits: FNV-1a over the
/// mask's length and little-endian bit words. The snapshot format persists
/// these fingerprints, so the function must be stable across processes,
/// platforms, *and Rust toolchain versions* — which rules out
/// `DefaultHasher` (deterministic only within one compiler release) in
/// favour of the in-repo [`FnvHasher`].
fn mask_fingerprint(mask: &Mask) -> u64 {
    let mut h = FnvHasher::new();
    h.write_u64_stable(mask.len() as u64);
    for &word in mask.as_words() {
        h.write_u64_stable(word);
    }
    h.finish64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EstimatorKind;
    use crate::scm::{bernoulli, normal, Scm};
    use faircap_table::Value;

    /// region → educated → income, region → income. Planted effect: +20.
    fn fixture() -> (Arc<DataFrame>, Arc<Dag>) {
        let scm = Scm::new()
            .categorical("region", &[("north", 0.5), ("south", 0.5)])
            .unwrap()
            .node(
                "educated",
                &["region"],
                Box::new(|row, rng| {
                    let p = if row.str("region") == "north" {
                        0.7
                    } else {
                        0.3
                    };
                    Value::Bool(bernoulli(rng, p))
                }),
            )
            .unwrap()
            .node(
                "income",
                &["region", "educated"],
                Box::new(|row, rng| {
                    let base = if row.str("region") == "north" {
                        60.0
                    } else {
                        40.0
                    };
                    let boost = if row.flag("educated") { 20.0 } else { 0.0 };
                    Value::Float(base + boost + normal(rng, 0.0, 5.0))
                }),
            )
            .unwrap();
        let df = Arc::new(scm.sample(4000, 11).unwrap());
        let dag = Arc::new(scm.dag());
        (df, dag)
    }

    fn engine() -> CateEngine {
        let (df, dag) = fixture();
        CateEngine::new(df, dag, "income").unwrap()
    }

    #[test]
    fn engine_recovers_planted_effect() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let est = engine.cate(&all, &p, &EstimatorKind::Linear).unwrap();
        assert!((est.cate - 20.0).abs() < 1.0, "cate = {}", est.cate);
        assert!(est.is_significant(0.01));
    }

    #[test]
    fn caching_returns_identical_results_and_counts_hits() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let a = engine.cate(&all, &p, &EstimatorKind::Linear);
        let before = engine.cache_stats();
        assert_eq!(before.hits, 0);
        assert_eq!(before.misses, 1);
        let b = engine.cate(&all, &p, &EstimatorKind::Linear);
        assert_eq!(a, b);
        let after = engine.cache_stats();
        assert_eq!(after.hits, 1);
        assert_eq!(after.misses, 1);
        assert_eq!(after.entries, before.entries);
    }

    #[test]
    fn distinct_estimators_cache_separately() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        engine.cate(&all, &p, &EstimatorKind::Linear);
        engine.cate(&all, &p, &EstimatorKind::Stratified);
        assert_eq!(engine.cache_stats().misses, 2);
        assert_eq!(engine.cache_len(), 2);
        // Re-querying either is a hit.
        engine.cate(&all, &p, &EstimatorKind::Stratified);
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn per_estimator_stats_attribute_counters() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        engine.cate(&all, &p, &EstimatorKind::Linear);
        engine.cate(&all, &p, &EstimatorKind::Linear);
        engine.cate(&all, &p, &EstimatorKind::Stratified);
        let per = engine.cache_stats_by_estimator();
        assert_eq!(
            per["linear"],
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1,
                evictions: 0,
            }
        );
        assert_eq!(
            per["stratified"],
            CacheStats {
                hits: 0,
                misses: 1,
                entries: 1,
                evictions: 0,
            }
        );
        // Never-queried estimators report zeros and are absent from the map.
        assert!(!per.contains_key("aipw"));
        assert_eq!(engine.cache_stats_for("aipw"), CacheStats::default());
        // The breakdown sums to the aggregate counters.
        let agg = engine.cache_stats();
        assert_eq!(per.values().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(per.values().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert_eq!(per.values().map(|s| s.entries).sum::<usize>(), agg.entries);
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let engine = engine();
        engine.set_estimate_cache_capacity(2);
        let all = Mask::ones(engine.df().n_rows());
        let north = Pattern::of_eq(&[("region", Value::from("north"))])
            .coverage(engine.df())
            .unwrap();
        let south = Pattern::of_eq(&[("region", Value::from("south"))])
            .coverage(engine.df())
            .unwrap();
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        for group in [&all, &north, &south, &all, &north] {
            engine.cate(group, &p, &EstimatorKind::Linear);
        }
        let stats = engine.cache_stats();
        assert!(
            stats.entries <= 2,
            "bounded cache held {} entries",
            stats.entries
        );
        assert!(stats.evictions >= 3, "evictions {}", stats.evictions);
        // The per-estimator breakdown tracks the evictions too.
        let linear = engine.cache_stats_for("linear");
        assert_eq!(linear.evictions, stats.evictions);
        assert_eq!(linear.entries, stats.entries);
    }

    #[test]
    fn export_import_round_trips_state() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let original = engine.cate(&all, &p, &EstimatorKind::Linear);
        // Also cache a not-estimable verdict.
        let ghost = Pattern::of_eq(&[("ghost", Value::Int(1))]);
        assert!(engine.cate(&all, &ghost, &EstimatorKind::Linear).is_none());
        let state = engine.export_state();
        assert_eq!(state.estimates.len(), 2);
        assert!(!state.adjustments.is_empty());
        assert!(!state.treated.is_empty());

        let (df, dag) = fixture();
        let fresh = CateEngine::new(df, dag, "income").unwrap();
        fresh.import_state(state);
        assert_eq!(fresh.cache_stats().misses, 0);
        let warm = fresh.cate(&all, &p, &EstimatorKind::Linear);
        assert_eq!(warm, original);
        assert!(fresh.cate(&all, &ghost, &EstimatorKind::Linear).is_none());
        let stats = fresh.cache_stats();
        assert_eq!(stats.misses, 0, "warm queries must all hit");
        assert_eq!(stats.hits, 2);
        assert_eq!(fresh.cache_stats_for("linear").entries, 2);
    }

    #[test]
    fn aipw_and_matching_engines_recover_planted_effect() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        for kind in [EstimatorKind::Aipw, EstimatorKind::Matching] {
            let est = engine.cate(&all, &p, &kind).unwrap();
            assert!(
                (est.cate - 20.0).abs() < 1.5,
                "{kind:?} cate = {}",
                est.cate
            );
            assert!(est.is_significant(0.01), "{kind:?} p = {}", est.p_value);
        }
    }

    #[test]
    fn subgroup_query_differs_from_global() {
        let engine = engine();
        let north = Pattern::of_eq(&[("region", Value::from("north"))])
            .coverage(engine.df())
            .unwrap();
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let est = engine.cate(&north, &p, &EstimatorKind::Linear).unwrap();
        assert!((est.cate - 20.0).abs() < 1.5, "north cate = {}", est.cate);
        assert!(est.n_treated + est.n_control <= north.count());
    }

    #[test]
    fn empty_intervention_yields_none() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        assert!(engine
            .cate(&all, &Pattern::empty(), &EstimatorKind::Linear)
            .is_none());
    }

    #[test]
    fn affects_outcome_prunes_unconnected() {
        let engine = engine();
        assert!(engine.affects_outcome("educated"));
        assert!(engine.affects_outcome("region"));
        assert!(!engine.affects_outcome("income")); // the outcome itself
        assert!(!engine.affects_outcome("not_a_column"));
    }

    #[test]
    fn unknown_treatment_attribute_yields_none() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("ghost", Value::Int(1))]);
        assert!(engine.cate(&all, &p, &EstimatorKind::Linear).is_none());
    }

    #[test]
    fn stratified_engine_agrees_with_linear() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let a = engine.cate(&all, &p, &EstimatorKind::Linear).unwrap().cate;
        let b = engine
            .cate(&all, &p, &EstimatorKind::Stratified)
            .unwrap()
            .cate;
        assert!((a - b).abs() < 1.0, "linear {a} vs stratified {b}");
    }

    #[test]
    fn missing_outcome_is_a_typed_error() {
        let (df, dag) = fixture();
        let err = CateEngine::new(df, dag, "no_such_column").unwrap_err();
        assert!(matches!(
            err,
            CausalError::Table(faircap_table::TableError::UnknownColumn(_))
        ));
        assert!(err.to_string().contains("no_such_column"));
    }

    #[test]
    fn categorical_outcome_is_a_typed_error() {
        let (df, dag) = fixture();
        let err = CateEngine::new(df, dag, "region").unwrap_err();
        assert!(matches!(err, CausalError::InvalidOutcome { .. }));
        assert!(err.to_string().contains("region"));
    }

    #[test]
    fn query_view_shares_caches() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let q = engine.with_estimator(&EstimatorKind::Linear);
        let a = q.cate(&all, &p);
        let b = engine.cate(&all, &p, &EstimatorKind::Linear);
        assert_eq!(a, b);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
