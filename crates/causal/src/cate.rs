//! High-level CATE queries for prescription rules.
//!
//! [`CateEngine`] owns a dataset (via `Arc`), a causal DAG, and an outcome,
//! and answers "what is the CATE of intervention pattern `P_int` within
//! subgroup mask `g`?" — the quantity behind every utility in the paper
//! (Definition 4.4). The engine is **estimator-agnostic**: the estimator is
//! supplied per query (see [`Estimator`]), so one long-lived engine serves
//! repeated solves under different estimators while sharing its caches.
//!
//! Three caches persist across queries:
//!
//! * adjustment sets, derived from the DAG once per treatment-attribute set;
//! * treated-row masks, one per intervention pattern;
//! * full estimates, keyed by `(estimator, group, intervention)` — the cache
//!   the greedy phase and repeated constraint re-solves hit hardest.
//!
//! Hit/miss counters ([`CateEngine::cache_stats`]) make the reuse
//! observable — in aggregate and per estimator name
//! ([`CateEngine::cache_stats_by_estimator`]), so estimator sweeps can
//! attribute cache behaviour to each estimator; the session integration
//! tests assert on them.

use crate::backdoor::find_adjustment_set_names;
use crate::error::{CausalError, Result};
use crate::estimate::{Estimate, Estimator};
use crate::graph::Dag;
use faircap_table::{DataFrame, DataType, Mask, Pattern};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Estimate-cache hit/miss counters (see [`CateEngine::cache_stats`]).
///
/// Reported both in aggregate ([`CateEngine::cache_stats`]) and broken down
/// per estimator name ([`CateEngine::cache_stats_by_estimator`]), so an
/// estimator sweep can attribute its cache behaviour to each estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the estimate cache.
    pub hits: u64,
    /// Queries that had to run an estimation (or re-discover that the pair
    /// is not estimable).
    pub misses: u64,
    /// Entries currently held in the estimate cache.
    pub entries: usize,
}

/// Cached estimates of one `(estimator, group)` scope, per intervention.
type PatternEstimates = HashMap<Pattern, Option<Estimate>>;

/// Estimates plus the per-estimator counters, under one lock so the cache
/// hit path takes a single mutex acquisition.
#[derive(Default)]
struct EstimateCache {
    estimates: HashMap<(u64, u64), PatternEstimates>,
    per_estimator: HashMap<String, CacheStats>,
}

impl EstimateCache {
    /// Update one estimator's counter slot, allocating its key on first use.
    fn bump(&mut self, name: &str, f: impl FnOnce(&mut CacheStats)) {
        match self.per_estimator.get_mut(name) {
            Some(slot) => f(slot),
            None => f(self.per_estimator.entry(name.to_owned()).or_default()),
        }
    }
}

/// Engine answering CATE queries against one dataset + DAG.
pub struct CateEngine {
    df: Arc<DataFrame>,
    dag: Arc<Dag>,
    outcome: String,
    adjustment_cache: Mutex<HashMap<Vec<String>, Option<Vec<String>>>>,
    treated_cache: Mutex<HashMap<Pattern, Mask>>,
    // Two-level keying keeps cache *hits* allocation-free: the outer key
    // (estimator-name hash, group-mask fingerprint) is `Copy`, and the
    // inner lookup borrows the query's `Pattern`; only a miss clones the
    // pattern for insertion.
    // Holds both the estimates and their per-estimator-name counters;
    // hits look the name up by `&str` (no allocation) inside the same
    // critical section as the estimate lookup.
    estimate_cache: Mutex<EstimateCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for CateEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CateEngine")
            .field("outcome", &self.outcome)
            .field("n_rows", &self.df.n_rows())
            .field("cache_stats", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

impl CateEngine {
    /// Create an engine bound to a frame, a DAG, and an outcome column.
    ///
    /// Fails (rather than panicking or silently answering `None` forever)
    /// when the outcome column is missing or non-numeric.
    pub fn new(df: Arc<DataFrame>, dag: Arc<Dag>, outcome: impl Into<String>) -> Result<Self> {
        let outcome = outcome.into();
        let col = df.column(&outcome)?;
        if col.data_type() == DataType::Cat {
            return Err(CausalError::InvalidOutcome {
                column: outcome,
                reason: "categorical columns cannot be averaged; use a numeric or boolean outcome"
                    .into(),
            });
        }
        Ok(CateEngine {
            df,
            dag,
            outcome,
            adjustment_cache: Mutex::new(HashMap::new()),
            treated_cache: Mutex::new(HashMap::new()),
            estimate_cache: Mutex::new(EstimateCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The dataset the engine is bound to.
    pub fn df(&self) -> &DataFrame {
        &self.df
    }

    /// The causal DAG the engine is bound to.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The outcome attribute.
    pub fn outcome(&self) -> &str {
        &self.outcome
    }

    /// Bind an estimator for a batch of queries; the returned view shares
    /// this engine's caches.
    pub fn with_estimator<'a>(&'a self, estimator: &'a dyn Estimator) -> CateQuery<'a> {
        CateQuery {
            engine: self,
            estimator,
        }
    }

    /// Whether an attribute has any causal path to the outcome — the paper's
    /// §5.2 optimization (i): attributes without one cannot change the CATE
    /// and are skipped during intervention mining.
    pub fn affects_outcome(&self, attr: &str) -> bool {
        match (self.dag.node(attr), self.dag.node(&self.outcome)) {
            (Ok(a), Ok(o)) => a != o && self.dag.is_reachable(a, o),
            _ => false,
        }
    }

    /// Backdoor adjustment set for a treatment-attribute set (cached).
    /// `None` when identification fails.
    pub fn adjustment_for(&self, treatment_attrs: &[String]) -> Option<Vec<String>> {
        let key: Vec<String> = treatment_attrs.to_vec();
        if let Some(hit) = self.adjustment_cache.lock().get(&key) {
            return hit.clone();
        }
        let in_dag: Vec<&str> = treatment_attrs
            .iter()
            .map(|s| s.as_str())
            .filter(|a| self.dag.has_node(a))
            .collect();
        let computed = if in_dag.is_empty() {
            None
        } else {
            find_adjustment_set_names(&self.dag, &in_dag, &self.outcome).ok()
        };
        self.adjustment_cache.lock().insert(key, computed.clone());
        computed
    }

    /// Mask of rows satisfying an intervention pattern (cached).
    pub fn treated_mask(&self, intervention: &Pattern) -> Result<Mask> {
        if let Some(hit) = self.treated_cache.lock().get(intervention) {
            return Ok(hit.clone());
        }
        let m = intervention.coverage(&self.df)?;
        self.treated_cache
            .lock()
            .insert(intervention.clone(), m.clone());
        Ok(m)
    }

    /// CATE of `intervention` within `group` under `estimator`
    /// (Definition 4.4 utilities).
    ///
    /// Returns `None` when the effect is not estimable: unidentified
    /// adjustment, insufficient overlap, or a degenerate design. Both
    /// estimable and non-estimable answers are cached per
    /// `(estimator, group, intervention)`.
    pub fn cate(
        &self,
        group: &Mask,
        intervention: &Pattern,
        estimator: &dyn Estimator,
    ) -> Option<Estimate> {
        let name = estimator.name();
        let scope = (str_fingerprint(name), mask_fingerprint(group));
        {
            let mut cache = self.estimate_cache.lock();
            let cache = &mut *cache;
            if let Some(hit) = cache
                .estimates
                .get(&scope)
                .and_then(|per_pattern| per_pattern.get(intervention))
                .copied()
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cache.bump(name, |s| s.hits += 1);
                return hit;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.cate_uncached(group, intervention, estimator);
        let mut cache = self.estimate_cache.lock();
        cache.bump(name, |s| s.misses += 1);
        let inserted = cache
            .estimates
            .entry(scope)
            .or_default()
            .insert(intervention.clone(), result)
            .is_none();
        if inserted {
            cache.bump(name, |s| s.entries += 1);
        }
        result
    }

    fn cate_uncached(
        &self,
        group: &Mask,
        intervention: &Pattern,
        estimator: &dyn Estimator,
    ) -> Option<Estimate> {
        if intervention.is_empty() {
            return None;
        }
        let attrs: Vec<String> = intervention
            .attributes()
            .into_iter()
            .map(|s| s.to_owned())
            .collect();
        let adjustment = self.adjustment_for(&attrs)?;
        let treated = self.treated_mask(intervention).ok()?;
        estimator
            .estimate(&self.df, group, &treated, &self.outcome, &adjustment)
            .ok()
    }

    /// Number of cached estimates (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.estimate_cache
            .lock()
            .estimates
            .values()
            .map(PatternEstimates::len)
            .sum()
    }

    /// Estimate-cache hit/miss counters since the engine was built,
    /// aggregated over all estimators.
    ///
    /// `misses` counts actual estimation work; a solve that adds no misses
    /// performed no redundant CATE estimation. Use
    /// [`cache_stats_by_estimator`](Self::cache_stats_by_estimator) for the
    /// per-estimator breakdown.
    ///
    /// # Examples
    ///
    /// ```
    /// use faircap_causal::{CateEngine, Dag, EstimatorKind};
    /// use faircap_table::{DataFrame, Mask, Pattern, Value};
    /// use std::sync::Arc;
    ///
    /// let df = DataFrame::builder()
    ///     .cat("t", &["y", "y", "y", "y", "y", "y", "n", "n", "n", "n", "n", "n"])
    ///     .float("o", vec![7.0, 8.0, 7.5, 8.5, 7.0, 8.0, 1.0, 2.0, 1.5, 2.5, 1.0, 2.0])
    ///     .build()
    ///     .unwrap();
    /// let dag = Dag::parse_edge_list("t -> o").unwrap();
    /// let engine = CateEngine::new(Arc::new(df), Arc::new(dag), "o").unwrap();
    ///
    /// let all = Mask::ones(engine.df().n_rows());
    /// let p = Pattern::of_eq(&[("t", Value::from("y"))]);
    /// engine.cate(&all, &p, &EstimatorKind::Linear); // miss: runs the estimation
    /// engine.cate(&all, &p, &EstimatorKind::Linear); // hit: served from cache
    ///
    /// let stats = engine.cache_stats();
    /// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    /// let per = engine.cache_stats_by_estimator();
    /// assert_eq!(per["linear"].misses, 1);
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache_len(),
        }
    }

    /// Estimate-cache counters broken down by [`Estimator::name`], in
    /// name order.
    ///
    /// Estimators that were never queried on this engine are absent. The
    /// per-name `hits`/`misses`/`entries` sum to the aggregate
    /// [`cache_stats`](Self::cache_stats) (entries may transiently differ
    /// under concurrent insertion, since the aggregate recounts the cache).
    pub fn cache_stats_by_estimator(&self) -> BTreeMap<String, CacheStats> {
        self.estimate_cache
            .lock()
            .per_estimator
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Estimate-cache counters for one estimator name; zeros if the
    /// estimator was never queried on this engine.
    pub fn cache_stats_for(&self, name: &str) -> CacheStats {
        self.estimate_cache
            .lock()
            .per_estimator
            .get(name)
            .copied()
            .unwrap_or_default()
    }
}

/// A [`CateEngine`] bound to one estimator — the view the mining and greedy
/// phases consume. Cheap to construct per solve; all caches live on the
/// engine and are shared across views.
#[derive(Clone, Copy)]
pub struct CateQuery<'a> {
    engine: &'a CateEngine,
    estimator: &'a dyn Estimator,
}

impl<'a> CateQuery<'a> {
    /// The underlying engine.
    pub fn engine(&self) -> &'a CateEngine {
        self.engine
    }

    /// The bound estimator.
    pub fn estimator(&self) -> &'a dyn Estimator {
        self.estimator
    }

    /// The dataset the engine is bound to.
    pub fn df(&self) -> &'a DataFrame {
        self.engine.df()
    }

    /// See [`CateEngine::affects_outcome`].
    pub fn affects_outcome(&self, attr: &str) -> bool {
        self.engine.affects_outcome(attr)
    }

    /// See [`CateEngine::cate`].
    pub fn cate(&self, group: &Mask, intervention: &Pattern) -> Option<Estimate> {
        self.engine.cate(group, intervention, self.estimator)
    }
}

fn mask_fingerprint(mask: &Mask) -> u64 {
    let mut h = DefaultHasher::new();
    mask.hash(&mut h);
    h.finish()
}

fn str_fingerprint(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EstimatorKind;
    use crate::scm::{bernoulli, normal, Scm};
    use faircap_table::Value;

    /// region → educated → income, region → income. Planted effect: +20.
    fn fixture() -> (Arc<DataFrame>, Arc<Dag>) {
        let scm = Scm::new()
            .categorical("region", &[("north", 0.5), ("south", 0.5)])
            .unwrap()
            .node(
                "educated",
                &["region"],
                Box::new(|row, rng| {
                    let p = if row.str("region") == "north" {
                        0.7
                    } else {
                        0.3
                    };
                    Value::Bool(bernoulli(rng, p))
                }),
            )
            .unwrap()
            .node(
                "income",
                &["region", "educated"],
                Box::new(|row, rng| {
                    let base = if row.str("region") == "north" {
                        60.0
                    } else {
                        40.0
                    };
                    let boost = if row.flag("educated") { 20.0 } else { 0.0 };
                    Value::Float(base + boost + normal(rng, 0.0, 5.0))
                }),
            )
            .unwrap();
        let df = Arc::new(scm.sample(4000, 11).unwrap());
        let dag = Arc::new(scm.dag());
        (df, dag)
    }

    fn engine() -> CateEngine {
        let (df, dag) = fixture();
        CateEngine::new(df, dag, "income").unwrap()
    }

    #[test]
    fn engine_recovers_planted_effect() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let est = engine.cate(&all, &p, &EstimatorKind::Linear).unwrap();
        assert!((est.cate - 20.0).abs() < 1.0, "cate = {}", est.cate);
        assert!(est.is_significant(0.01));
    }

    #[test]
    fn caching_returns_identical_results_and_counts_hits() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let a = engine.cate(&all, &p, &EstimatorKind::Linear);
        let before = engine.cache_stats();
        assert_eq!(before.hits, 0);
        assert_eq!(before.misses, 1);
        let b = engine.cate(&all, &p, &EstimatorKind::Linear);
        assert_eq!(a, b);
        let after = engine.cache_stats();
        assert_eq!(after.hits, 1);
        assert_eq!(after.misses, 1);
        assert_eq!(after.entries, before.entries);
    }

    #[test]
    fn distinct_estimators_cache_separately() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        engine.cate(&all, &p, &EstimatorKind::Linear);
        engine.cate(&all, &p, &EstimatorKind::Stratified);
        assert_eq!(engine.cache_stats().misses, 2);
        assert_eq!(engine.cache_len(), 2);
        // Re-querying either is a hit.
        engine.cate(&all, &p, &EstimatorKind::Stratified);
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn per_estimator_stats_attribute_counters() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        engine.cate(&all, &p, &EstimatorKind::Linear);
        engine.cate(&all, &p, &EstimatorKind::Linear);
        engine.cate(&all, &p, &EstimatorKind::Stratified);
        let per = engine.cache_stats_by_estimator();
        assert_eq!(
            per["linear"],
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        assert_eq!(
            per["stratified"],
            CacheStats {
                hits: 0,
                misses: 1,
                entries: 1
            }
        );
        // Never-queried estimators report zeros and are absent from the map.
        assert!(!per.contains_key("aipw"));
        assert_eq!(engine.cache_stats_for("aipw"), CacheStats::default());
        // The breakdown sums to the aggregate counters.
        let agg = engine.cache_stats();
        assert_eq!(per.values().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(per.values().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert_eq!(per.values().map(|s| s.entries).sum::<usize>(), agg.entries);
    }

    #[test]
    fn aipw_and_matching_engines_recover_planted_effect() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        for kind in [EstimatorKind::Aipw, EstimatorKind::Matching] {
            let est = engine.cate(&all, &p, &kind).unwrap();
            assert!(
                (est.cate - 20.0).abs() < 1.5,
                "{kind:?} cate = {}",
                est.cate
            );
            assert!(est.is_significant(0.01), "{kind:?} p = {}", est.p_value);
        }
    }

    #[test]
    fn subgroup_query_differs_from_global() {
        let engine = engine();
        let north = Pattern::of_eq(&[("region", Value::from("north"))])
            .coverage(engine.df())
            .unwrap();
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let est = engine.cate(&north, &p, &EstimatorKind::Linear).unwrap();
        assert!((est.cate - 20.0).abs() < 1.5, "north cate = {}", est.cate);
        assert!(est.n_treated + est.n_control <= north.count());
    }

    #[test]
    fn empty_intervention_yields_none() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        assert!(engine
            .cate(&all, &Pattern::empty(), &EstimatorKind::Linear)
            .is_none());
    }

    #[test]
    fn affects_outcome_prunes_unconnected() {
        let engine = engine();
        assert!(engine.affects_outcome("educated"));
        assert!(engine.affects_outcome("region"));
        assert!(!engine.affects_outcome("income")); // the outcome itself
        assert!(!engine.affects_outcome("not_a_column"));
    }

    #[test]
    fn unknown_treatment_attribute_yields_none() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("ghost", Value::Int(1))]);
        assert!(engine.cate(&all, &p, &EstimatorKind::Linear).is_none());
    }

    #[test]
    fn stratified_engine_agrees_with_linear() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let a = engine.cate(&all, &p, &EstimatorKind::Linear).unwrap().cate;
        let b = engine
            .cate(&all, &p, &EstimatorKind::Stratified)
            .unwrap()
            .cate;
        assert!((a - b).abs() < 1.0, "linear {a} vs stratified {b}");
    }

    #[test]
    fn missing_outcome_is_a_typed_error() {
        let (df, dag) = fixture();
        let err = CateEngine::new(df, dag, "no_such_column").unwrap_err();
        assert!(matches!(
            err,
            CausalError::Table(faircap_table::TableError::UnknownColumn(_))
        ));
        assert!(err.to_string().contains("no_such_column"));
    }

    #[test]
    fn categorical_outcome_is_a_typed_error() {
        let (df, dag) = fixture();
        let err = CateEngine::new(df, dag, "region").unwrap_err();
        assert!(matches!(err, CausalError::InvalidOutcome { .. }));
        assert!(err.to_string().contains("region"));
    }

    #[test]
    fn query_view_shares_caches() {
        let engine = engine();
        let all = Mask::ones(engine.df().n_rows());
        let p = Pattern::of_eq(&[("educated", Value::Bool(true))]);
        let q = engine.with_estimator(&EstimatorKind::Linear);
        let a = q.cate(&all, &p);
        let b = engine.cate(&all, &p, &EstimatorKind::Linear);
        assert_eq!(a, b);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
