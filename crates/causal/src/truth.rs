//! Ground-truth comparison helpers for estimator validation.
//!
//! Synthetic scenarios (the `faircap-scenario` crate) plant *known* causal
//! effects; this module provides the arithmetic for judging whether an
//! [`Estimate`] recovered the planted value — and for proving that a
//! deliberately unadjusted estimate did **not**. The acceptance rule is
//! CI-stable: a recovery passes when the absolute error is inside
//! `abs_tol + z_tol · std_err`, so the criterion tightens with sample size
//! instead of relying on a hand-tuned constant that flakes across seeds.

use crate::estimate::Estimate;

/// The comparison of one estimate against a planted ground-truth effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recovery {
    /// The estimator's point estimate.
    pub estimate: f64,
    /// The planted ground-truth CATE.
    pub truth: f64,
    /// `|estimate − truth|`.
    pub abs_error: f64,
    /// The estimate's reported standard error.
    pub std_err: f64,
    /// Error in standard-error units (`abs_error / std_err`; infinite when
    /// the estimator reported zero variance but missed the truth).
    pub z: f64,
}

impl Recovery {
    /// Compare an estimate to a planted effect.
    pub fn of(est: &Estimate, truth: f64) -> Recovery {
        let abs_error = (est.cate - truth).abs();
        let z = if est.std_err > 0.0 {
            abs_error / est.std_err
        } else if abs_error == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        Recovery {
            estimate: est.cate,
            truth,
            abs_error,
            std_err: est.std_err,
            z,
        }
    }

    /// Whether the estimate recovered the truth: the absolute error is
    /// within `abs_tol + z_tol · std_err`. `abs_tol` absorbs small-sample
    /// and discretization slack; the `z_tol` term scales with the
    /// estimator's own uncertainty, keeping the check stable across seeds.
    pub fn within(&self, abs_tol: f64, z_tol: f64) -> bool {
        self.abs_error <= abs_tol + z_tol * self.std_err
    }

    /// Whether the estimate is *provably biased* away from the truth: the
    /// error exceeds `min_bias` **and** sits more than `z_min` standard
    /// errors from the planted value, so sampling noise cannot explain it.
    /// Used to assert that skipping backdoor adjustment on a confounded
    /// scenario actually hurts.
    pub fn biased(&self, min_bias: f64, z_min: f64) -> bool {
        self.abs_error >= min_bias && self.z >= z_min
    }
}

impl std::fmt::Display for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "estimate {:.4} vs truth {:.4} (|err| {:.4}, se {:.4}, z {:.2})",
            self.estimate, self.truth, self.abs_error, self.std_err, self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cate: f64, std_err: f64) -> Estimate {
        Estimate {
            cate,
            std_err,
            t_stat: 0.0,
            p_value: 0.5,
            n_treated: 100,
            n_control: 100,
        }
    }

    #[test]
    fn exact_recovery_passes() {
        let r = Recovery::of(&est(10.0, 0.1), 10.0);
        assert_eq!(r.abs_error, 0.0);
        assert!(r.within(0.0, 0.0));
        assert!(!r.biased(0.0, 1.0));
    }

    #[test]
    fn tolerance_combines_absolute_and_se_slack() {
        let r = Recovery::of(&est(10.5, 0.2), 10.0);
        assert!(!r.within(0.1, 1.0), "0.1 + 0.2 < 0.5");
        assert!(r.within(0.1, 2.0), "0.1 + 0.4 ≥ 0.5");
        assert!(r.within(0.5, 0.0));
    }

    #[test]
    fn bias_requires_both_magnitude_and_significance() {
        // Large error, many SEs away: provably biased.
        assert!(Recovery::of(&est(15.0, 0.5), 10.0).biased(2.0, 4.0));
        // Large error explainable by a huge SE: not provable.
        assert!(!Recovery::of(&est(15.0, 10.0), 10.0).biased(2.0, 4.0));
        // Significant but tiny error: not the bias we look for.
        assert!(!Recovery::of(&est(10.1, 0.01), 10.0).biased(2.0, 4.0));
    }

    #[test]
    fn zero_variance_estimates_handled() {
        let hit = Recovery::of(&est(10.0, 0.0), 10.0);
        assert_eq!(hit.z, 0.0);
        assert!(hit.within(0.0, 0.0));
        let miss = Recovery::of(&est(11.0, 0.0), 10.0);
        assert!(miss.z.is_infinite());
        assert!(!miss.within(0.5, 100.0));
        assert!(miss.biased(0.5, 4.0));
    }

    #[test]
    fn display_is_readable() {
        let s = Recovery::of(&est(10.5, 0.2), 10.0).to_string();
        assert!(s.contains("10.5") && s.contains("truth"), "{s}");
    }
}
