//! The work-stealing executor: deterministic fan-out for hot paths.
//!
//! The paper's §5.2 optimization (ii) parallelizes intervention mining
//! across grouping patterns. A static chunking (each worker gets a
//! contiguous `1/W`-th of the groups) stalls the whole solve on the
//! slowest chunk — grouping patterns vary wildly in lattice size, so one
//! expensive group serializes its neighbours. [`run_work_stealing`]
//! replaces that with self-scheduling over a shared atomic work index:
//! every worker claims the next unclaimed task the moment it finishes its
//! current one, so imbalance is bounded by a single task rather than a
//! chunk.
//!
//! Output stays deterministic: each task writes into its own index slot,
//! so the collected results are in task order regardless of which worker
//! ran what when — the property the serial-equals-parallel ruleset tests
//! rely on.
//!
//! The executor lives in the causal crate (re-exported as
//! `faircap_core::exec`) so the estimator hot path can fan out too: the
//! columnar design/X'X kernels in [`crate::estimate::kernel`] and the
//! KD-tree matching query batches split one huge-group estimate into task
//! units through the same scheduler. Per-solve [`ExecStats`] (task count,
//! steal count, per-worker task distribution, busy/wall utilization) are
//! surfaced on the solve report, making scheduling behaviour observable
//! per request.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count (lowest
/// priority is `std::thread::available_parallelism`; highest is an
/// explicit per-call choice such as the solve request's `workers` field).
pub const WORKERS_ENV: &str = "FAIRCAP_WORKERS";

/// Scheduling statistics of one executor run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Worker threads spawned.
    pub workers: usize,
    /// Task units executed (one per grouping pattern in Step 2).
    pub tasks: usize,
    /// Tasks a worker claimed outside its notional static chunk — how much
    /// work the dynamic schedule moved relative to static chunking. Zero
    /// means static chunking would have balanced equally well.
    pub steals: u64,
    /// Tasks executed per worker, indexed by worker id.
    pub tasks_per_worker: Vec<usize>,
    /// Sum of per-worker busy time.
    pub busy: Duration,
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
}

impl ExecStats {
    /// Mean worker utilization in `[0, 1]`: busy time over `workers × wall`.
    /// 1.0 means no worker ever idled waiting for the others.
    pub fn utilization(&self) -> f64 {
        let denom = self.workers as f64 * self.wall.as_secs_f64();
        if denom > 0.0 {
            (self.busy.as_secs_f64() / denom).min(1.0)
        } else {
            1.0
        }
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tasks / {} workers, {} steals, {:.0}% utilization",
            self.tasks,
            self.workers,
            self.steals,
            self.utilization() * 100.0
        )
    }
}

/// Resolve the effective Step-2 worker count: the request's explicit
/// choice, else the `FAIRCAP_WORKERS` environment variable, else
/// `available_parallelism` (with a fallback of 4). Always at least 1.
pub fn resolve_workers(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var(WORKERS_ENV).ok().and_then(|s| s.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Run `n_tasks` task units on `workers` threads with work stealing,
/// returning results in task order plus the run's [`ExecStats`].
///
/// Workers claim tasks from a shared atomic cursor; a task claimed by a
/// worker other than its notional static-chunk owner counts as a steal.
/// With `workers <= 1` (or fewer than two tasks) the tasks run serially on
/// the calling thread.
pub fn run_work_stealing<T, F>(n_tasks: usize, workers: usize, task: F) -> (Vec<T>, ExecStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_tasks.max(1));
    let started = Instant::now();
    if workers <= 1 {
        let results: Vec<T> = (0..n_tasks).map(&task).collect();
        let wall = started.elapsed();
        return (
            results,
            ExecStats {
                workers: 1,
                tasks: n_tasks,
                steals: 0,
                tasks_per_worker: vec![n_tasks],
                busy: wall,
                wall,
            },
        );
    }

    // Static-chunk owner of task `i` — the worker that would have run it
    // under the old contiguous chunking; used only for steal accounting.
    let chunk = n_tasks.div_ceil(workers);
    let cursor = AtomicUsize::new(0);
    type WorkerOut<T> = (Vec<(usize, T)>, u64, Duration);
    let mut worker_outs: Vec<WorkerOut<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                let task = &task;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let mut local = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        if i / chunk != w {
                            steals += 1;
                        }
                        local.push((i, task(i)));
                    }
                    (local, steals, t0.elapsed())
                })
            })
            .collect();
        for handle in handles {
            worker_outs.push(handle.join().expect("executor worker panicked"));
        }
    });
    let wall = started.elapsed();

    let mut stats = ExecStats {
        workers,
        tasks: n_tasks,
        steals: 0,
        tasks_per_worker: vec![0; workers],
        busy: Duration::ZERO,
        wall,
    };
    // One slot per task keeps the output order deterministic regardless of
    // thread scheduling.
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    for (w, (local, steals, busy)) in worker_outs.into_iter().enumerate() {
        stats.tasks_per_worker[w] = local.len();
        stats.steals += steals;
        stats.busy += busy;
        for (i, value) in local {
            slots[i] = Some(value);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every claimed task produces a result"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn output_order_is_task_order() {
        for workers in [1, 2, 3, 8] {
            let (out, stats) = run_work_stealing(37, workers, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(stats.tasks, 37);
            assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 37);
            assert_eq!(stats.workers, workers.min(37));
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let (_, stats) = run_work_stealing(1000, 8, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.tasks, 1000);
    }

    #[test]
    fn uneven_tasks_get_rebalanced() {
        // Task 0 is enormously slower; the other workers must absorb the
        // rest of the queue while worker 0 is stuck on it.
        let (out, stats) = run_work_stealing(64, 4, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(40));
            }
            i
        });
        assert_eq!(out.len(), 64);
        // Worker 0 claimed task 0 first and slept; under static chunking it
        // would also have run tasks 1..16. Dynamic scheduling moves those
        // to the other workers, which shows up as steals.
        assert!(
            stats.steals > 0,
            "slow first task must force steals, stats: {stats}"
        );
        // Whichever worker drew the slow task ran almost nothing else.
        assert!(*stats.tasks_per_worker.iter().min().unwrap() < 16);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let (out, stats) = run_work_stealing(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 1);
        let (out, stats) = run_work_stealing(1, 4, |i| i + 10);
        assert_eq!(out, vec![10]);
        assert_eq!(stats.tasks, 1);
        assert_eq!(stats.workers, 1, "one task needs one worker");
    }

    #[test]
    fn utilization_is_a_fraction() {
        let (_, stats) = run_work_stealing(100, 4, |i| i);
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
        assert!(stats.to_string().contains("steals"));
    }

    #[test]
    fn resolve_workers_priority() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert!(resolve_workers(None) >= 1);
        // Zero is not a valid worker count; fall through to defaults.
        assert!(resolve_workers(Some(0)) >= 1);
    }
}
